"""Benchmark of the design-choice ablation (remapping / encryption / re-randomization)."""

from repro.experiments import ExperimentScale
from repro.experiments.ablation import format_ablation, run_ablation


def test_bench_ablation(benchmark):
    scale = ExperimentScale(branch_count=6_000, warmup_branches=600, seed=21)
    result = benchmark.pedantic(lambda: run_ablation(scale), rounds=1, iterations=1)
    print("\nAblation — contribution of each STBPU mechanism:")
    print(format_ablation(result))
    assert result.row("unprotected").spectre_v2_rate > 0.9
    assert result.row("full STBPU").spectre_v2_rate == 0.0
