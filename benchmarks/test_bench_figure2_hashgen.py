"""Benchmark regenerating Figure 2: the R1 remapping-function construction."""

from repro.experiments import format_figure2, run_figure2


def test_bench_figure2_remap_generation(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure2(attempts_per_function=6, uniformity_samples=2_000,
                            avalanche_samples=40),
        rounds=1, iterations=1,
    )
    print("\nFigure 2 — R1 remapping function construction:")
    print(format_figure2(result))
    assert result.reference_single_cycle
    assert result.reference_critical_path <= 45
