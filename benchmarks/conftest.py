"""Benchmark-suite configuration.

The benchmarks regenerate the paper's tables and figures at a reduced but
representative scale and print the resulting rows/series, so running
``pytest benchmarks/ --benchmark-only`` both times the harness and leaves the
reproduced numbers in the captured output.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.experiments import ExperimentScale  # noqa: E402


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Scale used by the figure benchmarks (small enough for minutes-long runs)."""
    return ExperimentScale(branch_count=8_000, warmup_branches=800, seed=21)
