"""Benchmark of the executable attack simulations (the Section VI narrative):
every attack against the unprotected BPU vs the same attack against STBPU."""

from repro.bpu.protections import make_unprotected_baseline
from repro.core.stbpu import make_stbpu_skl
from repro.security.attacks import (
    BTBEvictionSideChannel,
    BTBReuseSideChannel,
    PHTReuseSideChannel,
    SpectreRSBInjection,
    SpectreV2Injection,
    TransientTrojanAttack,
)

_ATTACKS = [
    (BTBReuseSideChannel, dict(trials=80)),
    (PHTReuseSideChannel, dict(secret_bits=64)),
    (SpectreV2Injection, dict(attempts=120)),
    (SpectreRSBInjection, dict(attempts=120)),
    (TransientTrojanAttack, dict(trials=80)),
    (BTBEvictionSideChannel, dict(trials=30)),
]


def _run_all():
    outcomes = []
    for attack_class, kwargs in _ATTACKS:
        unprotected = attack_class(make_unprotected_baseline(), seed=9).run(**kwargs)
        protected = attack_class(make_stbpu_skl(seed=9), seed=9).run(**kwargs)
        outcomes.append((unprotected, protected))
    return outcomes


def test_bench_attack_suite(benchmark):
    outcomes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print("\nCollision-based attacks: unprotected BPU vs STBPU")
    print(f"{'attack':38s} {'unprotected':>12s} {'stbpu':>8s}")
    for unprotected, protected in outcomes:
        print(f"{unprotected.name:38s} {unprotected.success_metric:12.3f} "
              f"{protected.success_metric:8.3f}")
        assert unprotected.success_metric >= protected.success_metric
