"""Benchmarks regenerating Table I, Table II, Table IV and the Section VI-A.5
threshold numbers."""

from repro.experiments import (
    format_thresholds,
    run_table1,
    run_table2,
    run_table4,
    run_thresholds,
)


def test_bench_table1_attack_surface(benchmark):
    rows = benchmark(run_table1)
    assert len(rows) == 12
    print("\nTable I — collision-based attack surface:")
    for row in rows:
        print(f"  {row['structure']:>3s} {row['collision']:<15s} {row['locus']:<4s} "
              f"possible={row['possible']:<3s} mitigation={row['mitigation']}")


def test_bench_table2_remap_io(benchmark):
    rows = benchmark(run_table2)
    assert {row["function"] for row in rows} == {"R1", "R2", "R3", "R4", "Rt", "Rp"}
    print("\nTable II — remapping function I/O bits (baseline vs STBPU):")
    for row in rows:
        print(f"  {row['function']:>2s}: baseline {row['baseline_input_bits']:>3d} bits -> "
              f"STBPU {row['stbpu_input_bits']:>3d} bits -> {row['output']}")


def test_bench_table4_simulation_config(benchmark):
    table = benchmark(run_table4)
    assert table["btb_entries"] == 4096
    print("\nTable IV — simulated core configuration:")
    for key, value in table.items():
        print(f"  {key}: {value}")


def test_bench_section6_thresholds(benchmark):
    report = benchmark(run_thresholds)
    print("\nSection VI-A.5 / VII-A — attack complexities and thresholds:")
    print(format_thresholds(report))
    assert report.misprediction_threshold_r005 > 0
