"""Benchmark regenerating Figure 6: performance under aggressive re-randomization."""

from repro.experiments import ExperimentScale, format_figure6, run_figure6


def test_bench_figure6_rerandomization_sweep(benchmark):
    scale = ExperimentScale(branch_count=5_000, warmup_branches=500, seed=21,
                            workload_limit=2)
    result = benchmark.pedantic(
        lambda: run_figure6(scale, r_values=(0.05, 0.005, 0.0005, 0.00005)),
        rounds=1, iterations=1,
    )
    print("\nFigure 6 — TAGE-SC-L 64KB STBPU under shrinking re-randomization thresholds:")
    print(format_figure6(result))
    print("paper: accuracy stays >= ~95% of unprotected until thresholds reach a few "
          "hundred events, then BPU training collapses")
    relaxed = result.points[0]
    assert relaxed.normalized_direction_accuracy > 0.9
    # Re-randomization frequency must grow monotonically as r shrinks.
    rates = [point.rerandomizations_per_kilo_branch for point in result.points]
    assert rates == sorted(rates)
