"""Benchmark regenerating Figure 5: SMT workload-pair evaluation of the ST designs."""

from repro.experiments import ExperimentScale, format_figure5, run_figure5

PAIR_SUBSET = (
    ("503.bwaves", "549.fotonik3d"),
    ("548.exchange2", "505.mcf"),
    ("519.lbm", "557.xz"),
    ("541.leela", "508.namd"),
)


def test_bench_figure5_smt_pairs(benchmark):
    scale = ExperimentScale(branch_count=5_000, warmup_branches=500, seed=21)
    result = benchmark.pedantic(
        lambda: run_figure5(scale, pairs=PAIR_SUBSET,
                            predictors=["SKLCond", "TAGE_SC_L_8KB"]),
        rounds=1, iterations=1,
    )
    print("\nFigure 5 — ST designs vs unprotected counterparts (SMT pairs):")
    print(format_figure5(result))
    print("paper averages: direction reduction 1.3-3.8%, target reduction 0.4-3.7%, "
          "normalized Hmean IPC 0.951-1.009")
    for predictor in result.predictors():
        assert 0.8 < result.average_normalized_hmean_ipc(predictor) < 1.15
