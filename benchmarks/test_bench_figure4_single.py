"""Benchmark regenerating Figure 4: single-workload prediction-rate reductions
and normalized IPC for the four ST designs."""

from repro.experiments import ExperimentScale, format_figure4, run_figure4

WORKLOAD_SUBSET = ("549.fotonik3d", "505.mcf", "541.leela", "503.bwaves", "557.xz")


def test_bench_figure4_single_workloads(benchmark):
    scale = ExperimentScale(branch_count=6_000, warmup_branches=600, seed=21)
    result = benchmark.pedantic(
        lambda: run_figure4(scale, workloads=WORKLOAD_SUBSET),
        rounds=1, iterations=1,
    )
    print("\nFigure 4 — ST designs vs unprotected counterparts (single workload):")
    print(format_figure4(result))
    print("paper averages: direction reduction <= 1.1%, target reduction <= 1.8%, "
          "normalized IPC 0.969-1.066")
    for predictor in result.predictors():
        assert abs(result.average_direction_reduction(predictor)) < 0.06
        assert 0.85 < result.average_normalized_ipc(predictor) < 1.15
