"""Benchmark regenerating Figure 3: OAE accuracy of the five protection models.

The full figure covers all 35 workloads; the benchmark uses a representative
subset (SPEC compute-bound, SPEC branch-heavy, and three system-interaction
heavy applications) so it completes in minutes while preserving the ordering
the paper reports: baseline ≥ STBPU > conservative > µcode protections.
"""

from repro.experiments import format_figure3, run_figure3

REPRESENTATIVE_WORKLOADS = [
    "505.mcf", "503.bwaves", "541.leela", "523.xalancbmk",
    "apache2_prefork_c128", "mysql_64con_50s", "chrome-1jetstream",
]


def test_bench_figure3_oae_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_figure3(bench_scale, workloads=REPRESENTATIVE_WORKLOADS),
        rounds=1, iterations=1,
    )
    print("\nFigure 3 — OAE accuracy normalized to the unprotected baseline:")
    print(format_figure3(result))
    averages = result.averages()
    print("\npaper averages: STBPU 0.99, conservative 0.88, ucode2 0.82, ucode1 0.77")
    assert averages["ST_SKLCond"] > averages["ucode_protection_1"]
    assert averages["ST_SKLCond"] > averages["ucode_protection_2"]
    assert averages["ST_SKLCond"] > 0.96
