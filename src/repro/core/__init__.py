"""STBPU core: secret tokens, keyed remapping, encryption, monitoring, OS policy."""

from repro.core.secret_token import (
    TOKEN_BITS,
    TOKEN_HALF_BITS,
    SecretToken,
    SecretTokenRegister,
    TokenGenerator,
)
from repro.core.remapping import (
    TABLE_II,
    RemapFunctionSpec,
    STMappingProvider,
    keyed_remap,
    mix64,
)
from repro.core.encryption import XorTargetCodec, cross_token_decode
from repro.core.monitoring import (
    DEFAULT_MONITOR_CONFIG,
    MonitorConfig,
    MonitorCounters,
    RerandomizationMonitor,
    thresholds_for_difficulty,
)
from repro.core.stbpu import (
    KERNEL_CONTEXT_ID,
    STBPU,
    STBPUStats,
    make_stbpu_perceptron,
    make_stbpu_skl,
    make_stbpu_tage,
    make_unprotected_perceptron,
    make_unprotected_tage,
)
from repro.core.os_interface import ProcessDescriptor, STBPUOperatingSystem

__all__ = [
    "TOKEN_BITS",
    "TOKEN_HALF_BITS",
    "SecretToken",
    "SecretTokenRegister",
    "TokenGenerator",
    "TABLE_II",
    "RemapFunctionSpec",
    "STMappingProvider",
    "keyed_remap",
    "mix64",
    "XorTargetCodec",
    "cross_token_decode",
    "DEFAULT_MONITOR_CONFIG",
    "MonitorConfig",
    "MonitorCounters",
    "RerandomizationMonitor",
    "thresholds_for_difficulty",
    "KERNEL_CONTEXT_ID",
    "STBPU",
    "STBPUStats",
    "make_stbpu_perceptron",
    "make_stbpu_skl",
    "make_stbpu_tage",
    "make_unprotected_perceptron",
    "make_unprotected_tage",
    "ProcessDescriptor",
    "STBPUOperatingSystem",
]
