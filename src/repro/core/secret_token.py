"""Secret tokens (STs) and their hardware register model.

Each software entity that requires isolation is assigned a 64-bit random
secret token, divided into two 32-bit halves (paper Section IV-B):

* ``psi`` (ψ) keys the remapping functions ``R1..R4, Rt, Rp`` so branch
  virtual addresses map to different BPU entries for different entities, and
* ``phi`` (ϕ) XOR-encrypts the 32-bit target slices stored in the BTB and RSB.

Tokens live in a per-hardware-thread special-purpose register that only
privileged software may read or write; re-randomization fetches a fresh value
from an on-chip random number generator (modelled here by a seeded PRNG so
experiments are reproducible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

TOKEN_HALF_BITS = 32
TOKEN_HALF_MASK = (1 << TOKEN_HALF_BITS) - 1
TOKEN_BITS = 64
TOKEN_MASK = (1 << TOKEN_BITS) - 1


@dataclass(frozen=True, slots=True)
class SecretToken:
    """An immutable 64-bit secret token value."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & TOKEN_MASK)

    @property
    def psi(self) -> int:
        """The ψ half: key for the remapping functions."""
        return (self.value >> TOKEN_HALF_BITS) & TOKEN_HALF_MASK

    @property
    def phi(self) -> int:
        """The ϕ half: key for stored-target encryption."""
        return self.value & TOKEN_HALF_MASK

    @classmethod
    def from_halves(cls, psi: int, phi: int) -> "SecretToken":
        return cls(((psi & TOKEN_HALF_MASK) << TOKEN_HALF_BITS) | (phi & TOKEN_HALF_MASK))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SecretToken(psi=0x{self.psi:08x}, phi=0x{self.phi:08x})"


class TokenGenerator:
    """Deterministic stand-in for the on-chip digital random number generator.

    The paper assumes re-randomization fetches values from a low-latency
    in-chip DRNG.  For reproducible experiments we draw from a seeded PRNG;
    the only property the design relies on is uniformity of fresh tokens.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.generated_count = 0

    def next_token(self) -> SecretToken:
        self.generated_count += 1
        return SecretToken(self._rng.getrandbits(TOKEN_BITS))


class SecretTokenRegister:
    """The per-hardware-thread ST register.

    Unprivileged code can neither read nor write the register; in this model
    that is expressed by the register being reachable only through the
    :class:`~repro.core.os_interface.STBPUOperatingSystem` and the STBPU
    hardware itself.
    """

    def __init__(self, generator: TokenGenerator):
        self._generator = generator
        self._token = generator.next_token()
        self.rerandomization_count = 0

    @property
    def token(self) -> SecretToken:
        return self._token

    def load(self, token: SecretToken) -> None:
        """Privileged write: restore a process's token on a context switch."""
        self._token = token

    def rerandomize(self) -> SecretToken:
        """Replace the current token with a fresh random value and return it."""
        self._token = self._generator.next_token()
        self.rerandomization_count += 1
        return self._token
