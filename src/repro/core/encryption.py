"""Stored-target encryption with the ϕ token half.

Every 32-bit target slice written to the BTB or RSB is XORed with the current
process's ϕ before storage and XORed again on the way out (paper
Section IV-B, function 5 in Figure 1).  If a cross-entity collision does
occur, the victim decrypts the attacker's planted target with a *different*
ϕ, so speculative execution is steered to an effectively random address
instead of the attacker's gadget.

The paper deliberately chooses plain XOR over lightweight block ciphers
(PRINCE-64, Feistel networks): the attacker never observes ciphertext, only
collisions, and automatic ST re-randomization caps how many observations can
be accumulated, so a stronger cipher would add front-end latency without
adding security (Section V).
"""

from __future__ import annotations

from repro.bpu.mapping import TargetCodec
from repro.core.secret_token import SecretToken
from repro.trace.branch import STORED_TARGET_MASK


class XorTargetCodec(TargetCodec):
    """XOR-encrypts stored targets with the active token's ϕ half.

    Like :class:`~repro.core.remapping.STMappingProvider`, the codec holds a
    mutable token reference swapped by the STBPU layer; entries written under
    an old ϕ decrypt to garbage afterwards, which is exactly the intended
    effect of re-randomization.
    """

    token_dependent = True

    def __init__(self, token: SecretToken):
        self._token = token

    @property
    def token(self) -> SecretToken:
        return self._token

    def set_token(self, token: SecretToken) -> None:
        self._token = token

    def encode(self, target: int) -> int:
        return (target ^ self._token.phi) & STORED_TARGET_MASK

    def decode(self, stored: int) -> int:
        return (stored ^ self._token.phi) & STORED_TARGET_MASK

    def vector_encode(self, targets):
        import numpy as np

        if type(self) is not XorTargetCodec:
            return None
        # phi is 32 bits, so XOR-then-mask equals mask-then-XOR exactly.
        return (targets ^ np.uint64(self._token.phi)) & np.uint64(STORED_TARGET_MASK)


def cross_token_decode(stored_by: SecretToken, decoded_with: SecretToken, target: int) -> int:
    """Model a cross-entity reuse: a target stored under one ϕ decoded with another.

    This helper is used by the security analysis and the attack simulations to
    show that the victim observes ``target ⊕ ϕ_a ⊕ ϕ_v`` — a value the
    attacker cannot steer toward a chosen gadget address without knowing both
    tokens.
    """
    stored = (target ^ stored_by.phi) & STORED_TARGET_MASK
    return (stored ^ decoded_with.phi) & STORED_TARGET_MASK
