"""The STBPU hardware layer: token-customised predictors with auto re-randomization.

``STBPU`` wraps a :class:`~repro.bpu.composite.CompositeBPU` that was built
with an :class:`~repro.core.remapping.STMappingProvider` and an
:class:`~repro.core.encryption.XorTargetCodec`.  The wrapper owns:

* the per-hardware-thread ST register,
* the per-process token table (maintained for it by the OS model, which loads
  the right token on every context switch), and
* the monitoring MSRs that trigger automatic re-randomization.

Because the wrapped predictor's logic is untouched — only its mapping provider
and codec read the active token — this layer can protect the SKLCond baseline,
TAGE-SC-L, or the Perceptron predictor identically, which reproduces the
paper's claim of predictor-agnosticism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import AccessResult, BranchPredictorModel, StructureSizes
from repro.bpu.composite import CompositeBPU
from repro.bpu.pht import SKLConditionalPredictor
from repro.bpu.perceptron import DEFAULT_PERCEPTRON, PerceptronConfig, PerceptronPredictor
from repro.bpu.tage import TAGE_SC_L_8KB, TAGE_SC_L_64KB, TAGEConfig, TAGEPredictor
from repro.core.encryption import XorTargetCodec
from repro.core.monitoring import DEFAULT_MONITOR_CONFIG, MonitorConfig, RerandomizationMonitor
from repro.core.remapping import STMappingProvider
from repro.core.secret_token import SecretToken, SecretTokenRegister, TokenGenerator
from repro.trace.branch import BranchRecord, PrivilegeMode


#: Context identifier used for kernel-mode execution.  The kernel is a
#: software entity of its own and therefore gets its own ST.
KERNEL_CONTEXT_ID = -1


@dataclass(slots=True)
class STBPUStats:
    """STBPU-specific counters (on top of the generic predictor stats)."""

    rerandomizations: int = 0
    token_loads: int = 0
    contexts_seen: set[int] = field(default_factory=set)


class STBPU(BranchPredictorModel):
    """Secret-token branch prediction unit.

    Args:
        inner: Composite predictor built around ``mapping`` and ``codec``.
        mapping: The ST-keyed mapping provider installed in ``inner``.
        codec: The ϕ-keyed target codec installed in ``inner``.
        token_generator: Source of fresh random tokens.
        monitor_config: Re-randomization thresholds.
        shared_token_groups: Optional mapping from context id to a sharing
            group label; contexts in the same group receive the same ST
            (selective history sharing, paper Section IV-A).
    """

    def __init__(
        self,
        inner: CompositeBPU,
        mapping: STMappingProvider,
        codec: XorTargetCodec,
        token_generator: TokenGenerator | None = None,
        monitor_config: MonitorConfig = DEFAULT_MONITOR_CONFIG,
        shared_token_groups: dict[int, str] | None = None,
        name: str | None = None,
    ):
        self.inner = inner
        self.mapping = mapping
        self.codec = codec
        self.generator = token_generator if token_generator is not None else TokenGenerator()
        self.register = SecretTokenRegister(self.generator)
        self.monitor = RerandomizationMonitor(monitor_config)
        self.shared_token_groups = dict(shared_token_groups or {})
        self.name = name if name is not None else f"ST_{inner.direction.name}"
        self.stats = STBPUStats()
        self._context_tokens: dict[int, SecretToken] = {}
        self._group_tokens: dict[str, SecretToken] = {}
        self._current_context: int = 0
        self._install_token(self._token_for_context(0))

    # ------------------------------------------------------------------ tokens

    def _token_for_context(self, context_id: int) -> SecretToken:
        group = self.shared_token_groups.get(context_id)
        if group is not None:
            if group not in self._group_tokens:
                self._group_tokens[group] = self.generator.next_token()
            token = self._group_tokens[group]
            self._context_tokens[context_id] = token
            return token
        if context_id not in self._context_tokens:
            self._context_tokens[context_id] = self.generator.next_token()
        return self._context_tokens[context_id]

    def _install_token(self, token: SecretToken) -> None:
        self.register.load(token)
        self.mapping.set_token(token)
        self.codec.set_token(token)
        self.stats.token_loads += 1

    def current_token(self) -> SecretToken:
        """The token currently loaded in the hardware register (privileged view)."""
        return self.register.token

    def token_of(self, context_id: int) -> SecretToken:
        """Privileged lookup of a context's token (used by OS model and tests)."""
        return self._token_for_context(context_id)

    def rerandomize_current(self) -> SecretToken:
        """Re-randomize the running context's ST (hardware-triggered or OS-forced)."""
        fresh = self.register.rerandomize()
        context = self._current_context
        group = self.shared_token_groups.get(context)
        if group is not None:
            self._group_tokens[group] = fresh
            for ctx, ctx_group in self.shared_token_groups.items():
                if ctx_group == group:
                    self._context_tokens[ctx] = fresh
        else:
            self._context_tokens[context] = fresh
        self.mapping.set_token(fresh)
        self.codec.set_token(fresh)
        self.stats.rerandomizations += 1
        return fresh

    # ------------------------------------------------------------------ access

    def access(self, branch: BranchRecord) -> AccessResult:
        if branch.mode is PrivilegeMode.KERNEL:
            context = KERNEL_CONTEXT_ID
        else:
            context = branch.context_id
        if context != self._current_context:
            # Mode switches within a trace arrive as branch records with a
            # different privilege mode; make sure the right token is active.
            self._current_context = context
            self._install_token(self._token_for_context(context))
        self.stats.contexts_seen.add(context)

        result = self.inner.access_with_events(branch)
        if self.monitor.observe(branch, result):
            self.rerandomize_current()
        return result

    # Identical to access(); bound directly so the per-branch hot path skips
    # the base-class forwarding indirection.
    access_with_events = access

    # ------------------------------------------------------------------- hooks

    def on_context_switch(self, context_id: int) -> None:
        """OS context switch: save nothing (tokens are in the table), load the new ST."""
        self._current_context = context_id
        self._install_token(self._token_for_context(context_id))

    def on_mode_switch(self, mode: PrivilegeMode, context_id: int) -> None:
        if mode is PrivilegeMode.KERNEL:
            self._current_context = KERNEL_CONTEXT_ID
            self._install_token(self._token_for_context(KERNEL_CONTEXT_ID))
        else:
            self._current_context = context_id
            self._install_token(self._token_for_context(context_id))

    def on_interrupt(self, context_id: int) -> None:
        # Interrupt handlers run in the kernel context.
        self.on_mode_switch(PrivilegeMode.KERNEL, context_id)

    def protection_stats(self) -> dict[str, int]:
        return {
            "rerandomizations": self.stats.rerandomizations,
            "token_loads": self.stats.token_loads,
            "contexts_seen": len(self.stats.contexts_seen),
        }

    def vector_kernel(self):
        from repro.sim import vector

        return vector.stbpu_kernel(self)

    def reset(self) -> None:
        self.inner.reset()
        self.monitor.reset()
        self._context_tokens.clear()
        self._group_tokens.clear()
        self._current_context = 0
        # Fresh stats are installed *before* the initial token so that the
        # install is counted, exactly as in __init__: a reset model and a
        # freshly built one both report token_loads == 1.
        self.stats = STBPUStats()
        self._install_token(self._token_for_context(0))


# --------------------------------------------------------------------- factories

def _build(direction_factory, name: str, sizes: StructureSizes | None,
           monitor_config: MonitorConfig, seed: int,
           shared_token_groups: dict[int, str] | None) -> STBPU:
    sizes = sizes if sizes is not None else StructureSizes()
    generator = TokenGenerator(seed)
    initial = generator.next_token()
    mapping = STMappingProvider(initial, sizes)
    codec = XorTargetCodec(initial)
    direction = direction_factory(sizes, mapping)
    inner = CompositeBPU(direction, sizes=sizes, mapping=mapping, codec=codec, name=f"{name}-inner")
    return STBPU(
        inner,
        mapping,
        codec,
        token_generator=generator,
        monitor_config=monitor_config,
        shared_token_groups=shared_token_groups,
        name=name,
    )


def make_stbpu_skl(
    sizes: StructureSizes | None = None,
    monitor_config: MonitorConfig | None = None,
    seed: int = 0,
    shared_token_groups: dict[int, str] | None = None,
) -> STBPU:
    """STBPU applied to the Skylake-style baseline (paper: ``ST_SKLCond``).

    The SKLCond model has no separate direction-misprediction register, which
    the paper identifies as the reason it re-randomizes more often under SMT.
    """
    config = monitor_config if monitor_config is not None else MonitorConfig(
        misprediction_threshold=DEFAULT_MONITOR_CONFIG.misprediction_threshold,
        eviction_threshold=DEFAULT_MONITOR_CONFIG.eviction_threshold,
        direction_misprediction_threshold=None,
    )
    return _build(
        lambda sizes_, mapping: SKLConditionalPredictor(sizes_, mapping),
        "ST_SKLCond", sizes, config, seed, shared_token_groups,
    )


def make_stbpu_tage(
    config: TAGEConfig = TAGE_SC_L_64KB,
    sizes: StructureSizes | None = None,
    monitor_config: MonitorConfig = DEFAULT_MONITOR_CONFIG,
    seed: int = 0,
    shared_token_groups: dict[int, str] | None = None,
) -> STBPU:
    """STBPU applied to TAGE-SC-L (paper: ``ST_TAGE_SC_L_8KB`` / ``..._64KB``)."""
    return _build(
        lambda sizes_, mapping: TAGEPredictor(config, mapping, sizes_),
        f"ST_{config.name}", sizes, monitor_config, seed, shared_token_groups,
    )


def make_stbpu_perceptron(
    config: PerceptronConfig = DEFAULT_PERCEPTRON,
    sizes: StructureSizes | None = None,
    monitor_config: MonitorConfig = DEFAULT_MONITOR_CONFIG,
    seed: int = 0,
    shared_token_groups: dict[int, str] | None = None,
) -> STBPU:
    """STBPU applied to the Perceptron predictor (paper: ``ST_PerceptronBP``)."""
    return _build(
        lambda sizes_, mapping: PerceptronPredictor(config, mapping, sizes_),
        "ST_PerceptronBP", sizes, monitor_config, seed, shared_token_groups,
    )


def make_unprotected_tage(
    config: TAGEConfig = TAGE_SC_L_64KB, sizes: StructureSizes | None = None
) -> CompositeBPU:
    """Unprotected TAGE-SC-L composite (normalization baseline for Figures 4-6)."""
    sizes = sizes if sizes is not None else StructureSizes()
    direction = TAGEPredictor(config, None, sizes)
    return CompositeBPU(direction, sizes=sizes, name=config.name)


def make_unprotected_perceptron(
    config: PerceptronConfig = DEFAULT_PERCEPTRON, sizes: StructureSizes | None = None
) -> CompositeBPU:
    """Unprotected Perceptron composite (normalization baseline for Figures 4-6)."""
    sizes = sizes if sizes is not None else StructureSizes()
    direction = PerceptronPredictor(config, None, sizes)
    return CompositeBPU(direction, sizes=sizes, name=config.name)
