"""Operating-system responsibilities in the STBPU design.

The paper delegates several policy decisions to trusted system software
(Section IV-A):

* assigning a fresh ST to every software entity requiring isolation,
* treating the ST as part of the saved process context (reloading it on
  context and mode switches),
* programming the re-randomization thresholds (derived from the attack
  difficulty factor ``r``), possibly differently for especially sensitive
  processes, and
* selectively sharing an ST between processes that execute the same program
  image (e.g. prefork server workers) so that useful branch history is not
  thrown away.

``STBPUOperatingSystem`` models that policy layer on top of one or more
:class:`~repro.core.stbpu.STBPU` hardware instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.monitoring import MonitorConfig, thresholds_for_difficulty
from repro.core.secret_token import SecretToken
from repro.core.stbpu import KERNEL_CONTEXT_ID, STBPU
from repro.trace.branch import PrivilegeMode


@dataclass(slots=True)
class ProcessDescriptor:
    """OS bookkeeping for one software entity using the STBPU."""

    context_id: int
    name: str = ""
    sharing_group: str | None = None
    sensitive: bool = False


class STBPUOperatingSystem:
    """Trusted software layer managing secret tokens and thresholds.

    Args:
        hardware: The STBPU instance (one hardware thread) this OS manages.
        default_r: Attack difficulty factor used to derive default thresholds.
        attack_complexity_mispredictions: Lowest misprediction complexity C of
            any considered attack (from the security analysis).
        attack_complexity_evictions: Lowest eviction complexity C.
    """

    def __init__(
        self,
        hardware: STBPU,
        default_r: float = 0.05,
        attack_complexity_mispredictions: float = 8.38e5,
        attack_complexity_evictions: float = 5.3e5,
    ):
        self.hardware = hardware
        self.default_r = default_r
        self.attack_complexity_mispredictions = attack_complexity_mispredictions
        self.attack_complexity_evictions = attack_complexity_evictions
        self.processes: dict[int, ProcessDescriptor] = {}
        self._running: int | None = None
        self.set_difficulty_factor(default_r)

    # ---------------------------------------------------------------- processes

    def register_process(
        self,
        context_id: int,
        name: str = "",
        sharing_group: str | None = None,
        sensitive: bool = False,
    ) -> ProcessDescriptor:
        """Create OS state for a process and assign (or share) its ST."""
        if context_id == KERNEL_CONTEXT_ID:
            raise ValueError("the kernel context is managed implicitly")
        descriptor = ProcessDescriptor(
            context_id=context_id, name=name, sharing_group=sharing_group, sensitive=sensitive
        )
        self.processes[context_id] = descriptor
        if sharing_group is not None:
            self.hardware.shared_token_groups[context_id] = sharing_group
        # Touch the token table so the token exists from registration time.
        self.hardware.token_of(context_id)
        return descriptor

    def share_tokens(self, context_ids: list[int], group: str) -> None:
        """Give several processes the same ST (same program image, paper IV-A)."""
        for context_id in context_ids:
            if context_id in self.processes:
                self.processes[context_id].sharing_group = group
            self.hardware.shared_token_groups[context_id] = group

    # ------------------------------------------------------------------ policy

    def set_difficulty_factor(self, r: float, sensitive_scale: float = 0.1) -> MonitorConfig:
        """Program thresholds from the attack difficulty factor ``Γ = r·C``.

        ``sensitive_scale`` further tightens thresholds for processes marked
        sensitive (the OS may go as far as threshold 1, which effectively
        disables prediction for that process).
        """
        self.default_r = r
        config = thresholds_for_difficulty(
            self.attack_complexity_mispredictions,
            self.attack_complexity_evictions,
            r=r,
            separate_direction_register=(
                self.hardware.monitor.config.direction_misprediction_threshold is not None
            ),
        )
        self.hardware.monitor.set_config(config)
        self._sensitive_scale = sensitive_scale
        return config

    def config_for_process(self, context_id: int) -> MonitorConfig:
        """Thresholds that apply while ``context_id`` is running."""
        descriptor = self.processes.get(context_id)
        base = self.hardware.monitor.config
        if descriptor is None or not descriptor.sensitive:
            return base
        scale = getattr(self, "_sensitive_scale", 0.1)
        return MonitorConfig(
            misprediction_threshold=max(1, int(base.misprediction_threshold * scale)),
            eviction_threshold=max(1, int(base.eviction_threshold * scale)),
            direction_misprediction_threshold=(
                max(1, int(base.direction_misprediction_threshold * scale))
                if base.direction_misprediction_threshold is not None
                else None
            ),
        )

    # ----------------------------------------------------------------- switches

    def context_switch(self, context_id: int) -> None:
        """Dispatch a context switch: reload the ST and per-process thresholds."""
        self._running = context_id
        self.hardware.monitor.set_config(self.config_for_process(context_id))
        self.hardware.on_context_switch(context_id)

    def enter_kernel(self, from_context: int) -> None:
        self.hardware.on_mode_switch(PrivilegeMode.KERNEL, from_context)

    def exit_kernel(self, to_context: int) -> None:
        self.hardware.on_mode_switch(PrivilegeMode.USER, to_context)

    def interrupt(self, context_id: int) -> None:
        self.hardware.on_interrupt(context_id)

    # ----------------------------------------------------------------- queries

    def token_of(self, context_id: int) -> SecretToken:
        """Privileged read of a process's ST (for context save/restore)."""
        return self.hardware.token_of(context_id)

    @property
    def running_context(self) -> int | None:
        return self._running
