"""Event-monitoring MSRs and the ST re-randomization policy.

STBPU adds model-specific registers that hold OS-programmed thresholds and
down-counters for two hardware events that every collision-construction
attack must trigger in bulk (paper Sections IV-B and VI):

* branch mispredictions (wrong direction of a conditional branch or wrong
  target of any branch), and
* BTB evictions.

Counters start at their thresholds and decrement when the corresponding event
is observed; when a counter reaches zero the current process's ST is
re-randomized and the counter reloads.  The TAGE-based STBPU models
additionally dedicate a separate threshold register to direction
(TAGE-table) mispredictions so that ordinary conditional-branch noise does not
burn the main counter — the paper calls this out as the reason the
ST_SKLCond model re-randomizes more often in SMT mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import AccessResult
from repro.trace.branch import BranchRecord, BranchType


@dataclass(frozen=True, slots=True)
class MonitorConfig:
    """Threshold configuration loaded into the monitoring MSRs.

    Attributes:
        misprediction_threshold: Events before re-randomization for the
            misprediction counter.
        eviction_threshold: Events before re-randomization for the BTB
            eviction counter.
        direction_misprediction_threshold: Optional separate threshold for
            conditional-direction mispredictions (TAGE models).  When
            ``None`` direction mispredictions decrement the main counter.
    """

    misprediction_threshold: int
    eviction_threshold: int
    direction_misprediction_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.misprediction_threshold <= 0 or self.eviction_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if (
            self.direction_misprediction_threshold is not None
            and self.direction_misprediction_threshold <= 0
        ):
            raise ValueError("direction threshold must be positive when provided")


#: Default thresholds derived in Section VII-A for r = 0.05:
#: mispredictions 4.15e4, evictions 2.65e4.
DEFAULT_MONITOR_CONFIG = MonitorConfig(
    misprediction_threshold=41_500,
    eviction_threshold=26_500,
    direction_misprediction_threshold=41_500,
)


@dataclass(slots=True)
class MonitorCounters:
    """Current values of the down-counters (one set per hardware thread)."""

    mispredictions_remaining: int = 0
    evictions_remaining: int = 0
    direction_remaining: int = 0


class RerandomizationMonitor:
    """Implements the decrement-and-fire policy over the monitored events."""

    def __init__(self, config: MonitorConfig = DEFAULT_MONITOR_CONFIG):
        self.config = config
        self.counters = MonitorCounters()
        self.reset()

    def reload(self) -> None:
        """Reset every counter to its threshold (done after each firing)."""
        self.counters.mispredictions_remaining = self.config.misprediction_threshold
        self.counters.evictions_remaining = self.config.eviction_threshold
        if self.config.direction_misprediction_threshold is not None:
            self.counters.direction_remaining = self.config.direction_misprediction_threshold
        else:
            self.counters.direction_remaining = self.config.misprediction_threshold

    def reset(self) -> None:
        """Return the monitor to its power-on state.

        Unlike :meth:`reload` — which only refills the down-counters and is
        what the hardware does after each firing — ``reset`` also clears the
        cumulative observation counters (``fired_count``,
        ``observed_mispredictions``, ``observed_evictions``) so state cannot
        leak across replays when a model instance is reused.
        """
        self.fired_count = 0
        self.observed_mispredictions = 0
        self.observed_evictions = 0
        self.reload()

    def set_config(self, config: MonitorConfig) -> None:
        """Privileged update of the thresholds (OS writes the MSRs)."""
        self.config = config
        self.reload()

    def observe(self, branch: BranchRecord, result: AccessResult) -> bool:
        """Feed one access outcome into the counters.

        Returns:
            ``True`` when a counter exhausted and the ST must be re-randomized.
        """
        fire = False
        counters = self.counters

        if result.btb_eviction:
            self.observed_evictions += 1
            remaining = counters.evictions_remaining - 1
            counters.evictions_remaining = remaining
            if remaining <= 0:
                fire = True

        if result.mispredicted:
            self.observed_mispredictions += 1
            direction_only = (
                self.config.direction_misprediction_threshold is not None
                and not result.direction_correct
                and branch.branch_type is BranchType.CONDITIONAL
            )
            if direction_only:
                remaining = counters.direction_remaining - 1
                counters.direction_remaining = remaining
                if remaining <= 0:
                    fire = True
            else:
                remaining = counters.mispredictions_remaining - 1
                counters.mispredictions_remaining = remaining
                if remaining <= 0:
                    fire = True

        if fire:
            self.fired_count += 1
            self.reload()
        return fire


def thresholds_for_difficulty(
    attack_complexity_mispredictions: float,
    attack_complexity_evictions: float,
    r: float = 0.05,
    separate_direction_register: bool = True,
) -> MonitorConfig:
    """Derive a :class:`MonitorConfig` from attack complexities and the difficulty factor r.

    The paper defines the re-randomization threshold as ``Γ = r · C`` where C
    is the smallest number of mispredictions/evictions any known attack must
    trigger for a 50% success probability (Section VII-A).

    Args:
        attack_complexity_mispredictions: C for misprediction-bounded attacks.
        attack_complexity_evictions: C for eviction-bounded attacks.
        r: Attack difficulty factor (0.05 is the paper's default).
        separate_direction_register: Whether the model has the extra
            TAGE-style direction-misprediction register.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    misprediction_threshold = max(1, int(attack_complexity_mispredictions * r))
    eviction_threshold = max(1, int(attack_complexity_evictions * r))
    return MonitorConfig(
        misprediction_threshold=misprediction_threshold,
        eviction_threshold=eviction_threshold,
        direction_misprediction_threshold=(
            misprediction_threshold if separate_direction_register else None
        ),
    )
