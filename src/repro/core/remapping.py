"""STBPU keyed remapping functions ``R1..R4, Rt, Rp``.

The baseline BPU locates entries through deterministic compression functions
of a *truncated* branch address.  STBPU replaces them with keyed remappings
that (a) consume the full 48-bit virtual address, closing the
same-address-space collision channel, and (b) mix in the per-process ψ token
so entries of different software entities live at unrelated locations
(paper Section IV-B, Table II).

The hardware realisation is a layered network of S-boxes, P-boxes and
compression boxes found by the generator in :mod:`repro.hashgen`.  For the
functional model we need the same *statistical* behaviour — uniform,
avalanching, key-dependent outputs — at Python speed, so the remappings here
are built from an integer mixing core (two rounds of xor-shift-multiply,
the SplitMix64 finalizer) keyed by ψ.  The hashgen package demonstrates that
an equivalent single-cycle gate-level construction exists and validates it
against the same uniformity and avalanche criteria.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.mapping import BTBLookupKey, MappingProvider
from repro.core.secret_token import SecretToken
from repro.trace.branch import VIRTUAL_ADDRESS_MASK

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-avalanching 64-bit mixer."""
    value &= _MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def keyed_remap(psi: int, *inputs: int, output_bits: int, domain: int) -> int:
    """Core keyed remapping: reduce ``inputs`` to ``output_bits`` bits under key ψ.

    The construction absorbs every input with a distinct odd multiplier and
    applies one SplitMix64 finalizing round, which is enough to give the
    uniformity and avalanche behaviour the design requires (validated by the
    property tests and by :mod:`repro.hashgen`'s metrics) while staying cheap
    enough to run millions of times per simulation.

    Args:
        psi: 32-bit remapping key (the ψ half of the secret token).
        inputs: Arbitrary integers (branch address, BHB, GHR, table number...).
        output_bits: Width of the result.
        domain: Distinct constant per remapping function so R1..R4 produce
            independent outputs even for identical inputs.
    """
    if output_bits <= 0:
        raise ValueError("output_bits must be positive")
    state = ((psi << 17) ^ (domain * 0x9E3779B97F4A7C15)) & _MASK64
    for position, value in enumerate(inputs):
        state ^= ((value & _MASK64) + (position + 1) * 0xD1B54A32D192ED03) * 0xFF51AFD7ED558CCD
        state &= _MASK64
        state = ((state << 13) | (state >> 51)) & _MASK64
    return mix64(state) & ((1 << output_bits) - 1)


@dataclass(frozen=True, slots=True)
class RemapFunctionSpec:
    """One row of the paper's Table II: input/output bit budget of a remapping."""

    label: str
    baseline_input_bits: int
    stbpu_input_bits: int
    output_bits: int
    output_description: str

    @property
    def compression_ratio(self) -> float:
        return self.stbpu_input_bits / self.output_bits


#: Table II of the paper: I/O bits for baseline and STBPU remapping functions.
TABLE_II: dict[str, RemapFunctionSpec] = {
    "R1": RemapFunctionSpec("R1", baseline_input_bits=32, stbpu_input_bits=32 + 48,
                            output_bits=9 + 8 + 5, output_description="9 ind, 8 tag, 5 offs"),
    "R2": RemapFunctionSpec("R2", baseline_input_bits=58, stbpu_input_bits=32 + 58,
                            output_bits=8, output_description="8 tag"),
    "R3": RemapFunctionSpec("R3", baseline_input_bits=32, stbpu_input_bits=32 + 48,
                            output_bits=14, output_description="14 ind"),
    "R4": RemapFunctionSpec("R4", baseline_input_bits=18 + 32, stbpu_input_bits=32 + 16 + 48,
                            output_bits=14, output_description="14 ind"),
    "Rt": RemapFunctionSpec("Rt", baseline_input_bits=48, stbpu_input_bits=32 + 48,
                            output_bits=25, output_description="10/13 ind, 8/12 tag"),
    "Rp": RemapFunctionSpec("Rp", baseline_input_bits=48, stbpu_input_bits=32 + 48,
                            output_bits=10, output_description="10 ind"),
}

# Domain-separation constants, one per remapping function.
_DOMAIN_R1 = 1
_DOMAIN_R2 = 2
_DOMAIN_R3 = 3
_DOMAIN_R4 = 4
_DOMAIN_RT_INDEX = 5
_DOMAIN_RT_TAG = 6
_DOMAIN_RP = 7


class STMappingProvider(MappingProvider):
    """Mapping provider whose outputs depend on the current secret token.

    The provider holds a mutable reference to the active token; the STBPU
    hardware layer swaps it on context switches and re-randomizations, and
    every subsequent lookup immediately uses the new mapping (old entries
    simply become unreachable, which is how re-randomization "discards"
    history without flushing anything).
    """

    #: Entry bound for the per-instance memoisation of address-only remappings.
    _CACHE_LIMIT = 1 << 18

    def __init__(self, token: SecretToken, sizes: StructureSizes | None = None):
        super().__init__(sizes)
        self._token = token
        # Hot branch addresses repeat millions of times per simulation while ψ
        # changes only on re-randomization, so address-only remappings are
        # memoised per (ψ, ip).  History-dependent remappings are not cached.
        self._mode1_cache: dict[tuple[int, int], BTBLookupKey] = {}
        self._pht1_cache: dict[tuple[int, int], int] = {}

    @property
    def token(self) -> SecretToken:
        return self._token

    def set_token(self, token: SecretToken) -> None:
        self._token = token

    # -------------------------------------------------------- remapping R1..R4

    def btb_mode1(self, ip: int) -> BTBLookupKey:
        """R1: full 48-bit address + ψ → 9-bit index, 8-bit tag, 5-bit offset."""
        sizes = self.sizes
        psi = self._token.psi
        ip &= VIRTUAL_ADDRESS_MASK
        cache_key = (psi, ip)
        cached = self._mode1_cache.get(cache_key)
        if cached is not None:
            return cached
        total_bits = sizes.btb_index_bits + sizes.btb_tag_bits + sizes.btb_offset_bits
        digest = keyed_remap(psi, ip, output_bits=total_bits, domain=_DOMAIN_R1)
        offset = digest & ((1 << sizes.btb_offset_bits) - 1)
        digest >>= sizes.btb_offset_bits
        tag = digest & ((1 << sizes.btb_tag_bits) - 1)
        digest >>= sizes.btb_tag_bits
        index = digest & (sizes.btb_sets - 1)
        key = BTBLookupKey(index=index, tag=tag, offset=offset)
        if len(self._mode1_cache) >= self._CACHE_LIMIT:
            self._mode1_cache.clear()
        self._mode1_cache[cache_key] = key
        return key

    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        """R1 index/offset combined with R2: ψ + BHB → tag for indirect lookups."""
        sizes = self.sizes
        psi = self._token.psi
        base = self.btb_mode1(ip)
        tag = keyed_remap(psi, ip, bhb, output_bits=sizes.btb_tag_bits, domain=_DOMAIN_R2)
        index = keyed_remap(psi, ip, bhb, output_bits=sizes.btb_index_bits, domain=_DOMAIN_R2 + 16)
        return BTBLookupKey(index=index & (sizes.btb_sets - 1), tag=tag, offset=base.offset)

    def pht_index_1level(self, ip: int) -> int:
        """R3: ψ + 48-bit address → 14-bit PHT index."""
        psi = self._token.psi
        ip &= VIRTUAL_ADDRESS_MASK
        cache_key = (psi, ip)
        cached = self._pht1_cache.get(cache_key)
        if cached is not None:
            return cached
        index = keyed_remap(
            psi, ip, output_bits=self.sizes.pht_index_bits, domain=_DOMAIN_R3,
        ) & (self.sizes.pht_entries - 1)
        if len(self._pht1_cache) >= self._CACHE_LIMIT:
            self._pht1_cache.clear()
        self._pht1_cache[cache_key] = index
        return index

    def pht_index_2level(self, ip: int, ghr: int) -> int:
        """R4: ψ + GHR + 48-bit address → 14-bit PHT index."""
        return keyed_remap(
            self._token.psi, ip & VIRTUAL_ADDRESS_MASK, ghr,
            output_bits=self.sizes.pht_index_bits, domain=_DOMAIN_R4,
        ) & (self.sizes.pht_entries - 1)

    # ------------------------------------------------------------- Rt and Rp

    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        """Rt (index part): ψ + address + folded geometric history → table index."""
        return keyed_remap(
            self._token.psi, ip & VIRTUAL_ADDRESS_MASK, folded_history, table,
            output_bits=index_bits, domain=_DOMAIN_RT_INDEX,
        )

    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        """Rt (tag part): ψ + address + folded history → partial tag."""
        return keyed_remap(
            self._token.psi, ip & VIRTUAL_ADDRESS_MASK, folded_history, table,
            output_bits=tag_bits, domain=_DOMAIN_RT_TAG,
        )

    def perceptron_index(self, ip: int, table_size: int) -> int:
        """Rp: ψ + address → perceptron row."""
        bits = max(1, (table_size - 1).bit_length())
        return keyed_remap(
            self._token.psi, ip & VIRTUAL_ADDRESS_MASK,
            output_bits=bits, domain=_DOMAIN_RP,
        ) % table_size

    def vector_maps(self):
        if type(self) is not STMappingProvider:
            return None
        return _STVectorMaps(self)


def mix64_array(values: "object") -> "object":
    """Array form of :func:`mix64` (uint64 arithmetic wraps like the masked ints)."""
    import numpy as np

    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def keyed_remap_array(psi: int, *inputs: "object", output_bits: int,
                      domain: int) -> "object":
    """Array form of :func:`keyed_remap`; each input is a uint64 ndarray."""
    import numpy as np

    state0 = ((psi << 17) ^ (domain * 0x9E3779B97F4A7C15)) & _MASK64
    state = None
    for position, value in enumerate(inputs):
        absorbed = (value + np.uint64((position + 1) * 0xD1B54A32D192ED03 & _MASK64)
                    ) * np.uint64(0xFF51AFD7ED558CCD)
        state = (np.uint64(state0) ^ absorbed) if state is None else (state ^ absorbed)
        state = (state << np.uint64(13)) | (state >> np.uint64(51))
    if state is None:  # pragma: no cover - remappings always absorb inputs
        state = np.uint64(state0)
    return mix64_array(state) & np.uint64((1 << output_bits) - 1)


class _STVectorMaps:
    """NumPy mirror of :class:`STMappingProvider`.

    Reads the live token at call time, so the kernels' epoch chunking — one
    chunk per constant-ψ run — sees exactly the key the scalar path would.
    """

    token_dependent = True

    def __init__(self, provider: STMappingProvider):
        self.provider = provider
        self.sizes = provider.sizes

    def pht1(self, ips, contexts=None):
        import numpy as np

        sizes = self.sizes
        index = keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK),
            output_bits=sizes.pht_index_bits, domain=_DOMAIN_R3,
        )
        return index & np.uint64(sizes.pht_entries - 1)

    def pht2(self, ips, ghrs, contexts=None):
        import numpy as np

        sizes = self.sizes
        index = keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK), ghrs,
            output_bits=sizes.pht_index_bits, domain=_DOMAIN_R4,
        )
        return index & np.uint64(sizes.pht_entries - 1)

    def btb1(self, ips, contexts=None):
        import numpy as np

        sizes = self.sizes
        total_bits = sizes.btb_index_bits + sizes.btb_tag_bits + sizes.btb_offset_bits
        digest = keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK),
            output_bits=total_bits, domain=_DOMAIN_R1,
        )
        offset_bits = np.uint64(sizes.btb_offset_bits)
        key_mask = np.uint64((1 << (sizes.btb_tag_bits + sizes.btb_offset_bits)) - 1)
        # The digest's low tag+offset bits are the match key verbatim (offset
        # low, tag above it — the same packing the scalar key uses).
        key = digest & key_mask
        index = (digest >> (offset_bits + np.uint64(sizes.btb_tag_bits))
                 ) & np.uint64(sizes.btb_sets - 1)
        return index, key

    def btb2(self, ips, bhbs, contexts=None):
        import numpy as np

        sizes = self.sizes
        psi = self.provider._token.psi
        masked = ips & np.uint64(VIRTUAL_ADDRESS_MASK)
        _, base_key = self.btb1(ips)
        offset_bits = np.uint64(sizes.btb_offset_bits)
        offset = base_key & np.uint64((1 << sizes.btb_offset_bits) - 1)
        tag = keyed_remap_array(psi, masked, bhbs,
                                output_bits=sizes.btb_tag_bits, domain=_DOMAIN_R2)
        index = keyed_remap_array(psi, masked, bhbs,
                                  output_bits=sizes.btb_index_bits,
                                  domain=_DOMAIN_R2 + 16)
        return index & np.uint64(sizes.btb_sets - 1), (tag << offset_bits) | offset

    def tage_indices(self, ips, folded, table, index_bits, contexts=None):
        import numpy as np

        tables = np.asarray(table, dtype=np.uint64)
        if tables.shape != np.shape(ips):
            tables = np.full(np.shape(ips), tables, dtype=np.uint64)
        return keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK),
            folded, tables,
            output_bits=index_bits, domain=_DOMAIN_RT_INDEX,
        )

    def tage_tags(self, ips, folded, table, tag_bits, contexts=None):
        import numpy as np

        tables = np.asarray(table, dtype=np.uint64)
        if tables.shape != np.shape(ips):
            tables = np.full(np.shape(ips), tables, dtype=np.uint64)
        return keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK),
            folded, tables,
            output_bits=tag_bits, domain=_DOMAIN_RT_TAG,
        )

    def perceptron_rows(self, ips, table_size, contexts=None):
        import numpy as np

        bits = max(1, (table_size - 1).bit_length())
        rows = keyed_remap_array(
            self.provider._token.psi, ips & np.uint64(VIRTUAL_ADDRESS_MASK),
            output_bits=bits, domain=_DOMAIN_RP,
        )
        return rows % np.uint64(table_size)
