"""``python -m repro bench`` — replay-throughput benchmark with tracked history.

The bench times the engine on three representative grids — the Figure 3
(models × workloads) trace grid, a cycle-approximate CPU grid, and an SMT
co-run grid — and writes the timings, per-grid branch throughput, and the
speedups against the recorded baselines to a ``BENCH_<n>.json`` artifact
(``BENCH_6.json`` for the current format).  Committing one artifact per PR
tracks the perf trajectory of the hot path over time.

Two baselines are recorded per grid: wall-clock seconds of the pre-columnar
engine (PR 1's per-item replay loop) and branches/s of the PR-2 columnar fast
path (from ``BENCH_2.json``), both measured serially on the reference
container.  A ``speedup`` of 2.0 therefore means "twice as fast as the engine
before the columnar fast path", and ``speedup_vs_fast_path`` isolates what
the vector backend adds on top.  Traces are generated (and memoised) before
the clock starts, so the measurement covers replay, not synthetic trace
construction.

Each timing also records a SHA-256 of the grid's serialized
:class:`~repro.engine.results.ResultFrame`, tying every perf point to the
exact results it produced — a bench run that got faster by producing
different numbers is immediately visible.  The full-mode SHAs are unchanged
since ``BENCH_2.json``: the vector backend replays bit-identically.

Artifact entries are keyed ``<grid>.<mode>`` and *merged* into an existing
artifact of the same format, so one file can carry both the full-mode record
and the quick-mode numbers CI regresses against: ``--check PREV.json`` fails
the command (exit ≠ 0) when any matching grid's branches/s drops more than
20% below the recorded value.

Since format 5 the report also measures the content-addressed result store
(:mod:`repro.store`): the figure3 grid is run twice against a fresh on-disk
store — a cold run that computes and writes every record, then a warm run
that must execute zero jobs — and the artifact records the store's hit/miss
counters plus a ``warm_vs_cold_seconds`` entry, so the perf trajectory
captures caching wins next to replay-speed wins.

Since format 6 the report also carries a ``predictors`` block: every registry
model replays the same trace under the forced ``vector`` backend, and the
artifact records each model's branches/s, its kernel class
(:func:`repro.sim.vector.kernel_status`), and ``gap_vs_vector`` — the
composite reference kernel's throughput divided by the model's.  That ratio
is the number the TAGE/Perceptron guarded kernels are closing; ``--check``
gates on the per-model branches/s exactly like it gates on the grids.

Since format 7 the report also measures the async serving tier
(:mod:`repro.store.jobs` behind ``repro serve``): a batch of distinct
scenarios is pushed through a real HTTP server twice — serialized (one job
worker, the old global-lock behaviour) and concurrent (several workers) —
and the ``serve`` block records jobs/s for both lanes plus the concurrency
speedup and an envelope-equality verdict.  ``--check`` gates on both lanes'
jobs/s.

Each grid entry additionally carries a ``phases`` block — per-phase seconds
(partition/dispatch/execute/merge, from :mod:`repro.obs` span tracing of the
timed serial run) — so a perf regression names the phase, not just the grid.
The tracer never feeds the result frame: ``result_sha256`` is unchanged by
tracing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    Option,
    SimulationGrid,
    register_experiment,
    resolve_workloads,
    trace_cache_stats,
)
from repro.experiments.figure3 import figure3_grid
from repro.obs.spans import SpanTracer, phase_seconds
from repro.sim import fastpath
from repro.store import DiskStore
from repro.trace.workloads import GEM5_SMT_PAIRS

#: Format/sequence number of the artifact this module writes.
BENCH_SEQUENCE = 7

#: Default artifact path.
DEFAULT_OUTPUT = f"BENCH_{BENCH_SEQUENCE}.json"

#: Fractional branches/s drop versus the recorded artifact that fails a
#: ``--check`` run.
CHECK_TOLERANCE = 0.20

#: Pre-change (PR 1, per-item replay loop) wall-clock seconds for each bench
#: grid, measured serially on the reference container.  These are the
#: denominators of the reported speedups; re-measure them only when the grid
#: definitions below change.
PR1_BASELINE_SECONDS: dict[str, float] = {
    "figure3.full": 18.50,
    "cpu.full": 3.48,
    "smt.full": 3.32,
    "figure3.quick": 1.96,
    "cpu.quick": 0.38,
    "smt.quick": 0.36,
}

#: PR-2 columnar fast-path branches/s (from ``BENCH_2.json``, full mode on the
#: reference container): the denominator of ``speedup_vs_fast_path``.
PR2_BASELINE_BRANCHES_PER_SECOND: dict[str, float] = {
    "figure3.full": 98_971.1,
    "cpu.full": 86_792.0,
    "smt.full": 92_949.5,
}

#: Registry model whose vector kernel is the ``gap_vs_vector`` denominator in
#: the ``predictors`` block: the SKL composite, whose fully-array kernel the
#: other predictor families chase.
PREDICTOR_REFERENCE_MODEL = "baseline"

#: Serial timing repetitions per model in the predictors block; the block
#: records the best run, which damps scheduler noise on the short per-model
#: replays.
PREDICTOR_REPS = 3

#: Job-worker count of the concurrent lane in the ``serve`` block (the
#: serialized lane always runs one worker — the pre-format-7 behaviour of a
#: global execution lock).
SERVE_CONCURRENT_WORKERS = 4


@dataclass(slots=True)
class BenchTiming:
    """One timed grid: size, wall-clock, throughput, and baseline comparisons."""

    name: str
    mode: str
    jobs: int
    branches: int
    seconds: float
    result_sha256: str
    baseline_seconds: float | None = None
    fast_path_branches_per_second: float | None = None
    parallel_seconds: float | None = None
    parallel_matches_serial: bool | None = None
    parallel_workers: int | None = None
    phases: dict[str, float] | None = None

    @property
    def key(self) -> str:
        """Artifact key: grid and mode (``figure3.full``)."""
        return f"{self.name}.{self.mode}"

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.seconds if self.seconds else 0.0

    @property
    def speedup(self) -> float | None:
        if self.baseline_seconds is None or not self.seconds:
            return None
        return self.baseline_seconds / self.seconds

    @property
    def speedup_vs_fast_path(self) -> float | None:
        if self.fast_path_branches_per_second is None or not self.seconds:
            return None
        return self.branches_per_second / self.fast_path_branches_per_second

    @property
    def parallel_speedup(self) -> float | None:
        if self.parallel_seconds is None or not self.parallel_seconds:
            return None
        return self.seconds / self.parallel_seconds

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "mode": self.mode,
            "jobs": self.jobs,
            "branches": self.branches,
            "seconds": round(self.seconds, 4),
            "branches_per_second": round(self.branches_per_second, 1),
            "result_sha256": self.result_sha256,
        }
        if self.baseline_seconds is not None:
            payload["baseline_seconds"] = self.baseline_seconds
            payload["speedup"] = round(self.speedup, 3)
        if self.fast_path_branches_per_second is not None:
            payload["fast_path_branches_per_second"] = self.fast_path_branches_per_second
            payload["speedup_vs_fast_path"] = round(self.speedup_vs_fast_path, 3)
        if self.parallel_seconds is not None:
            payload["parallel_seconds"] = round(self.parallel_seconds, 4)
            payload["parallel_matches_serial"] = self.parallel_matches_serial
            payload["parallel_workers"] = self.parallel_workers
            payload["parallel_speedup"] = round(self.parallel_speedup, 3)
        if self.phases is not None:
            payload["phases"] = {
                name: round(seconds, 4)
                for name, seconds in self.phases.items()
            }
        return payload


@dataclass(slots=True)
class BenchReport:
    """All timings of one bench invocation."""

    mode: str
    backend: str = ""
    timings: list[BenchTiming] = field(default_factory=list)
    trace_cache: dict[str, int] = field(default_factory=dict)
    store: dict = field(default_factory=dict)
    predictors: dict = field(default_factory=dict)
    serve: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def to_dict(self) -> dict:
        return {
            "format": BENCH_SEQUENCE,
            "mode": self.mode,
            "backend": self.backend,
            "total_seconds": round(self.total_seconds, 4),
            "trace_cache": dict(self.trace_cache),
            # Keyed by mode so a quick refresh merged into a full artifact
            # never clobbers the full-mode store measurement (same rule as
            # the per-`<grid>.<mode>` benches entries).
            "store": {self.mode: dict(self.store)} if self.store else {},
            "predictors": (
                {self.mode: dict(self.predictors)} if self.predictors else {}),
            "serve": {self.mode: dict(self.serve)} if self.serve else {},
            "benches": {timing.key: timing.to_dict() for timing in self.timings},
        }


def bench_grids(quick: bool = False) -> dict[str, SimulationGrid]:
    """The representative grids the bench times.

    ``quick`` shrinks trace lengths and grid extents for CI smoke runs; the
    full mode matches the scale the recorded baselines were measured at.
    Changing these definitions invalidates the recorded baselines.
    """
    if quick:
        branch_count, warmup = 4_000, 400
        figure3_limit, cpu_workloads, smt_pairs = 4, 2, 1
    else:
        branch_count, warmup = 20_000, 2_000
        figure3_limit, cpu_workloads, smt_pairs = 8, 4, 2

    def scale(limit: int | None = None) -> ExperimentScale:
        return ExperimentScale(
            branch_count=branch_count, warmup_branches=warmup, seed=7,
            workload_limit=limit,
        )

    singles = resolve_workloads(None)
    return {
        "figure3": figure3_grid(scale(figure3_limit)),
        "cpu": SimulationGrid(
            kind="cpu", models=("baseline", "ST_SKLCond"),
            workloads=singles[:cpu_workloads], scale=scale(),
        ),
        "smt": SimulationGrid(
            kind="smt", models=("baseline", "ST_SKLCond"),
            workloads=list(GEM5_SMT_PAIRS[:smt_pairs]), scale=scale(),
        ),
    }


def _frame_sha256(frame) -> str:
    return hashlib.sha256(frame.to_json().encode("utf-8")).hexdigest()


def measure_store(quick: bool = False) -> dict:
    """Time the figure3 grid cold and warm against a fresh on-disk store.

    The cold run computes and writes every record (store overhead included);
    the warm run must resolve every job from the store and execute zero
    simulations.  Counters, both wall-clocks and the resulting speedup land
    in the artifact's ``store`` block — the caching analogue of the replay
    ``speedup`` column.
    """
    grid = bench_grids(quick)["figure3"]
    jobs = grid.jobs()
    EngineRunner._prewarm_traces(jobs)  # measure the store, not trace synthesis
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = DiskStore(tmp)
        cold_runner = EngineRunner(store=store)
        started = time.perf_counter()
        cold_frame = cold_runner.run_jobs(jobs)
        cold_seconds = time.perf_counter() - started
        warm_runner = EngineRunner(store=store)
        started = time.perf_counter()
        warm_frame = warm_runner.run_jobs(jobs)
        warm_seconds = time.perf_counter() - started
        stats = store.stats()
        return {
            "grid": "figure3",
            "jobs": len(jobs),
            "hits": stats["hits"],
            "misses": stats["misses"],
            "writes": stats["writes"],
            "warm_jobs_executed": warm_runner.last_executed,
            "warm_matches_cold": warm_frame.to_json() == cold_frame.to_json(),
            "warm_vs_cold_seconds": {
                "cold": round(cold_seconds, 4),
                "warm": round(warm_seconds, 4),
                "speedup": round(cold_seconds / warm_seconds, 1)
                if warm_seconds else None,
            },
        }


def measure_predictors(quick: bool = False) -> dict:
    """Per-model vector-backend throughput versus the composite kernel.

    Every registry model — the TAGE and Perceptron families, the ablation
    facades, and the composite itself — replays the same trace under the
    forced ``vector`` backend, serially, best of :data:`PREDICTOR_REPS`
    repetitions.  The block records each model's branches/s, its kernel
    class (``kernel`` / ``guarded`` / ``fallback``, see
    :func:`repro.sim.vector.kernel_status`), and ``gap_vs_vector``: the
    reference composite kernel's throughput divided by the model's.  The
    composite reads 1.0 by construction; the guarded TAGE/Perceptron
    steppers are chasing it from above.
    """
    from repro.engine.registry import build_model, list_models
    from repro.sim import vector

    branch_count, warmup = (4_000, 400) if quick else (20_000, 2_000)
    scale = ExperimentScale(
        branch_count=branch_count, warmup_branches=warmup, seed=7)
    workload = "505.mcf"
    models: dict[str, dict] = {}
    with fastpath.forced_backend("vector"):
        for name in sorted(list_models()):
            jobs = SimulationGrid(kind="trace", models=(name,),
                                  workloads=(workload,), scale=scale).jobs()
            branches = EngineRunner._prewarm_traces(jobs)
            best: float | None = None
            for _ in range(PREDICTOR_REPS):
                started = time.perf_counter()
                EngineRunner(workers=1).run_jobs(jobs)
                seconds = time.perf_counter() - started
                best = seconds if best is None else min(best, seconds)
            models[name] = {
                "vector": vector.kernel_status(build_model(name, seed=0)),
                "branches": branches,
                "branches_per_second": round(branches / best, 1) if best else 0.0,
            }
    reference = models[PREDICTOR_REFERENCE_MODEL]["branches_per_second"]
    for entry in models.values():
        bps = entry["branches_per_second"]
        entry["gap_vs_vector"] = round(reference / bps, 2) if bps else None
    return {
        "workload": workload,
        "reference": PREDICTOR_REFERENCE_MODEL,
        "reps": PREDICTOR_REPS,
        "models": models,
    }


def _serve_scenarios(quick: bool = False) -> list[dict]:
    """Distinct single-cell scenarios for the serving bench (seed-varied so
    every submission is a genuine miss, never a single-flight dedup)."""
    count, branch_count, warmup = (6, 2_000, 200) if quick else (12, 8_000, 800)
    return [
        {
            "schema": "repro.scenario/v1",
            "name": f"bench-serve-{index}",
            "kind": "trace",
            "models": ["baseline"],
            "workloads": ["505.mcf"],
            "scale": {"branch_count": branch_count,
                      "warmup_branches": warmup, "seed": 100 + index},
        }
        for index in range(count)
    ]


def measure_serve(quick: bool = False) -> dict:
    """Jobs/s of the async serving tier, concurrent versus serialized.

    The same batch of distinct scenarios is pushed through a real HTTP
    server (async POSTs via :class:`repro.client.ReproClient`, then polled
    to terminal) twice: once with a single job worker — equivalent to the
    pre-format-7 global execution lock — and once with
    :data:`SERVE_CONCURRENT_WORKERS`.  Traces are prewarmed so the clock
    measures queueing + execution + serving, not synthetic trace
    construction; both lanes must produce identical envelopes.
    """
    import threading

    from repro.client import ReproClient
    from repro.engine.scenario import parse_scenario
    from repro.store.memory import MemoryStore
    from repro.store.serve import make_server

    scenarios = _serve_scenarios(quick)
    EngineRunner._prewarm_traces([
        job for data in scenarios for job in parse_scenario(data).jobs()])

    def lane(workers: int) -> tuple[dict, list, list[str]]:
        server = make_server(port=0, store=MemoryStore(), workers=workers,
                             queue_depth=max(32, 2 * len(scenarios)))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        client = ReproClient(f"http://{host}:{port}", poll_interval=0.02)
        try:
            started = time.perf_counter()
            submitted = [client.submit(data) for data in scenarios]
            states = [client.wait(entry.fingerprint, timeout=600)["state"]
                      for entry in submitted]
            seconds = time.perf_counter() - started
            envelopes = [client.result(entry.fingerprint)[0]
                         for entry in submitted]
            block = {
                "workers": workers,
                "seconds": round(seconds, 4),
                "jobs_per_second": round(len(scenarios) / seconds, 2)
                if seconds else 0.0,
            }
            return block, envelopes, states
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()  # type: ignore[attr-defined]

    serialized, serial_envelopes, serial_states = lane(1)
    concurrent, concurrent_envelopes, concurrent_states = lane(
        SERVE_CONCURRENT_WORKERS)
    speedup = (serialized["seconds"] / concurrent["seconds"]
               if concurrent["seconds"] else None)
    return {
        "scenarios": len(scenarios),
        "serialized": serialized,
        "concurrent": concurrent,
        "speedup": round(speedup, 3) if speedup is not None else None,
        "all_done": (serial_states + concurrent_states).count("done")
        == 2 * len(scenarios),
        "concurrent_matches_serialized":
            concurrent_envelopes == serial_envelopes,
    }


def run_bench(quick: bool = False, workers: int = 1) -> BenchReport:
    """Time every bench grid; optionally cross-check a parallel run.

    The timed measurement is always serial so numbers stay comparable across
    machines and worker counts.  With ``workers > 1`` each grid is run a
    second time on the (batched, executor-reusing) process pool and the
    serialized results are compared — the parallel timing and the match
    verdict land in the artifact.
    """
    mode = "quick" if quick else "full"
    report = BenchReport(mode=mode, backend=fastpath.backend())
    parallel_runner = EngineRunner(workers=workers) if workers > 1 else None
    for name, grid in bench_grids(quick).items():
        jobs = grid.jobs()
        branches = EngineRunner._prewarm_traces(jobs)
        runner = EngineRunner(workers=1)
        key = f"{name}.{mode}"
        # The tracer rides along on the timed run: its per-phase seconds
        # (partition/dispatch/execute/merge) land in the artifact so a perf
        # regression names the phase, not just the grid.  Span overhead is a
        # handful of clock reads per grid — noise at these run lengths.
        tracer = SpanTracer(key, name="bench")
        started = time.perf_counter()
        frame = runner.run_jobs(jobs, tracer=tracer)
        seconds = time.perf_counter() - started
        timing = BenchTiming(
            name=name,
            mode=mode,
            jobs=len(jobs),
            branches=branches,
            seconds=seconds,
            result_sha256=_frame_sha256(frame),
            baseline_seconds=PR1_BASELINE_SECONDS.get(key),
            fast_path_branches_per_second=PR2_BASELINE_BRANCHES_PER_SECOND.get(key),
            phases=phase_seconds(tracer.payload()),
        )
        if parallel_runner is not None:
            started = time.perf_counter()
            parallel_frame = parallel_runner.run_jobs(jobs)
            timing.parallel_seconds = time.perf_counter() - started
            timing.parallel_matches_serial = (
                parallel_frame.to_json() == frame.to_json()
            )
            timing.parallel_workers = workers
        report.timings.append(timing)
    if parallel_runner is not None:
        parallel_runner.close()
    report.trace_cache = trace_cache_stats()
    report.store = measure_store(quick)
    report.predictors = measure_predictors(quick)
    report.serve = measure_serve(quick)
    return report


def write_bench(report: BenchReport, path: str = DEFAULT_OUTPUT) -> None:
    """Write the artifact JSON, merging into a same-format existing artifact.

    Merging keeps one file carrying several modes (``figure3.full`` next to
    ``figure3.quick``): entries of the current run overwrite same-key
    entries, every other recorded entry is preserved.
    """
    payload = report.to_dict()
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict) and existing.get("format") == BENCH_SEQUENCE:
            benches = dict(existing.get("benches", {}))
            benches.update(payload["benches"])
            payload["benches"] = benches
            store = existing.get("store")
            if isinstance(store, dict):
                # Carry over per-mode blocks only (guards against pre-merge
                # artifacts that stored one unkeyed block).
                merged_store = {
                    mode: block for mode, block in store.items()
                    if isinstance(block, dict) and "warm_vs_cold_seconds" in block
                }
                merged_store.update(payload["store"])
                payload["store"] = merged_store
            predictors = existing.get("predictors")
            if isinstance(predictors, dict):
                merged_predictors = {
                    mode: block for mode, block in predictors.items()
                    if isinstance(block, dict) and "models" in block
                }
                merged_predictors.update(payload["predictors"])
                payload["predictors"] = merged_predictors
            serve = existing.get("serve")
            if isinstance(serve, dict):
                merged_serve = {
                    mode: block for mode, block in serve.items()
                    if isinstance(block, dict) and "serialized" in block
                }
                merged_serve.update(payload["serve"])
                payload["serve"] = merged_serve
            # total_seconds stays the total of the *current run's mode* so it
            # always describes one real invocation (the one "mode"/"backend"/
            # "trace_cache" also describe), never a cross-mode sum.
            payload["total_seconds"] = round(
                sum(entry.get("seconds", 0.0) for entry in benches.values()
                    if entry.get("mode") == report.mode), 4)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_reference(reference_path: str) -> dict:
    """Load a recorded artifact for :func:`check_regression`.

    Read the reference *before* writing the new artifact: ``--output`` and
    ``--check`` may name the same file (the in-place refresh EXPERIMENTS.md
    documents), and a gate that reads the just-merged file would compare the
    run against itself.
    """
    with open(reference_path, encoding="utf-8") as handle:
        return json.load(handle)


def check_regression(report: BenchReport, reference: dict | str,
                     tolerance: float = CHECK_TOLERANCE) -> list[str]:
    """Compare the run against a recorded artifact; return failure messages.

    ``reference`` is a path or an already-loaded artifact (see
    :func:`load_reference`).  Only grids recorded under the same
    ``<name>.<mode>`` key are compared (a quick CI run checks against the
    artifact's quick entries).  A grid fails when its branches/s drops more
    than ``tolerance`` below the recorded value.  The per-model
    ``predictors`` block is gated the same way: a model recorded under the
    run's mode fails when its vector-backend branches/s falls below the
    tolerance floor.  The ``serve`` block gates both lanes' jobs/s, so a
    serving-tier throughput regression fails CI like a kernel one.
    """
    if isinstance(reference, str):
        reference = load_reference(reference)
    recorded = reference.get("benches", {})
    failures: list[str] = []

    def gate(key: str, measured: float, entry: dict,
             field: str = "branches_per_second", unit: str = "branches/s") -> None:
        recorded_value = float(entry.get(field, 0.0))
        floor = recorded_value * (1.0 - tolerance)
        if recorded_value and measured < floor:
            drop = 1.0 - measured / recorded_value
            failures.append(
                f"{key}: {measured:,.0f} {unit} is {drop:.1%} "
                f"(tolerance {tolerance:.0%}) below the recorded "
                f"{recorded_value:,.0f} (floor {floor:,.0f})")

    for timing in report.timings:
        entry = recorded.get(timing.key)
        if entry is not None:
            gate(timing.key, timing.branches_per_second, entry)
    recorded_models = (reference.get("predictors", {})
                       .get(report.mode, {}).get("models", {}))
    for name, entry in (report.predictors.get("models") or {}).items():
        recorded_entry = recorded_models.get(name)
        if isinstance(recorded_entry, dict):
            gate(f"predictors.{report.mode}.{name}",
                 float(entry.get("branches_per_second", 0.0)), recorded_entry)
    recorded_serve = reference.get("serve", {}).get(report.mode, {})
    for lane in ("serialized", "concurrent"):
        recorded_entry = recorded_serve.get(lane)
        measured_entry = report.serve.get(lane)
        if isinstance(recorded_entry, dict) and isinstance(measured_entry, dict):
            gate(f"serve.{report.mode}.{lane}",
                 float(measured_entry.get("jobs_per_second", 0.0)),
                 recorded_entry, field="jobs_per_second", unit="jobs/s")
    return failures


def _bench_execute(params: dict, workers: int = 1, progress=None) -> BenchReport:
    # Validate the gate configuration and snapshot the reference artifact
    # before the (potentially minutes-long) timed run writes anything.
    reference_path = params.get("check")
    reference = None
    tolerance = params.get("check_tolerance")
    if reference_path:
        tolerance = CHECK_TOLERANCE if tolerance is None else float(tolerance)
        if not 0.0 < tolerance < 1.0:
            raise ValueError("check-tolerance must be in (0, 1)")
        reference = load_reference(reference_path)
    report = run_bench(quick=params["quick"], workers=workers)
    write_bench(report, params["output"] or DEFAULT_OUTPUT)
    if reference is not None:
        failures = check_regression(report, reference, tolerance)
        if failures:
            raise ValueError(
                "bench regression vs %s: %s" % (reference_path, "; ".join(failures)))
    return report


register_experiment(ExperimentSpec(
    name="bench",
    description="time representative grids and write the BENCH_*.json artifact",
    kind="bench",
    options=(
        Option("quick", action="store_true",
               help="reduced-scale smoke run (used by CI)"),
        Option("output", metavar="PATH", default=None,
               help=f"artifact path (default: {DEFAULT_OUTPUT})"),
        Option("check", metavar="PREV.json", default=None,
               help="fail (exit != 0) when branches/s drops more than "
                    f"{CHECK_TOLERANCE:.0%} below this recorded artifact's "
                    "matching grids"),
        Option("check-tolerance", type=float, default=None, metavar="FRACTION",
               help="override the --check drop tolerance (same-machine "
                    f"default: {CHECK_TOLERANCE}; CI compares against an "
                    "artifact recorded on a different machine and uses a "
                    "looser bound)"),
    ),
    execute=_bench_execute,
    formatter=lambda report: format_bench(report),
    serializer=lambda report: report.to_dict(),
    epilogue=lambda report, params: (
        f"bench artifact written to {params['output'] or DEFAULT_OUTPUT}"),
))


def format_bench(report: BenchReport) -> str:
    """Render the report as an aligned text table."""
    header = (
        f"{'bench':10s}{'jobs':>6s}{'branches':>12s}{'seconds':>10s}"
        f"{'Mbr/s':>8s}{'speedup':>9s}{'parallel':>10s}"
    )
    lines = [f"mode: {report.mode}   backend: {report.backend}", header,
             "-" * len(header)]
    for timing in report.timings:
        speedup = f"{timing.speedup:8.2f}x" if timing.speedup is not None else f"{'n/a':>9s}"
        if timing.parallel_seconds is not None:
            verdict = "ok" if timing.parallel_matches_serial else "DIFF"
            parallel = f"{timing.parallel_seconds:7.2f}s{verdict:>2s}"
        else:
            parallel = f"{'-':>10s}"
        lines.append(
            f"{timing.name:10s}{timing.jobs:6d}{timing.branches:12d}"
            f"{timing.seconds:10.3f}{timing.branches_per_second / 1e6:8.2f}"
            f"{speedup}{parallel}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'total':10s}{'':6s}{'':12s}{report.total_seconds:10.3f}")
    for timing in report.timings:
        if timing.phases:
            breakdown = "  ".join(f"{phase} {seconds:.3f}s"
                                  for phase, seconds in timing.phases.items()
                                  if phase != "job")
            lines.append(f"phases ({timing.name}): {breakdown}")
    cache = report.trace_cache
    if cache:
        lines.append(
            f"trace cache: {cache.get('size', 0)}/{cache.get('capacity', 0)} "
            f"entries, {cache.get('hits', 0)} hits / {cache.get('misses', 0)} "
            f"misses / {cache.get('evictions', 0)} evictions")
    store = report.store
    if store:
        timing = store.get("warm_vs_cold_seconds", {})
        verdict = "ok" if store.get("warm_matches_cold") else "DIFF"
        lines.append(
            f"result store ({store.get('grid')}): cold {timing.get('cold', 0.0):.3f}s "
            f"-> warm {timing.get('warm', 0.0):.3f}s "
            f"({timing.get('speedup') or 0.0}x, {store.get('hits', 0)} hits / "
            f"{store.get('misses', 0)} misses, "
            f"{store.get('warm_jobs_executed', 0)} jobs executed warm, {verdict})")
    serve = report.serve
    if serve:
        serialized = serve.get("serialized", {})
        concurrent = serve.get("concurrent", {})
        verdict = "ok" if serve.get("concurrent_matches_serialized") \
            and serve.get("all_done") else "DIFF"
        lines.append(
            f"serve ({serve.get('scenarios', 0)} scenarios): serialized "
            f"{serialized.get('jobs_per_second', 0.0):.1f} jobs/s -> "
            f"{concurrent.get('workers', 0)} workers "
            f"{concurrent.get('jobs_per_second', 0.0):.1f} jobs/s "
            f"({serve.get('speedup') or 0.0}x, {verdict})")
    predictors = report.predictors
    if predictors:
        models = predictors.get("models", {})
        width = max(len(name) for name in models)
        lines.append(
            f"predictors ({predictors.get('workload')}, vector backend, "
            f"gap vs {predictors.get('reference')}):")
        for name, entry in models.items():
            gap = entry.get("gap_vs_vector")
            gap_text = f"gap {gap:.2f}x" if gap is not None else "gap n/a"
            lines.append(
                f"  {name:{width}s}  {entry.get('vector', '?'):8s}"
                f"{entry.get('branches_per_second', 0.0) / 1e3:8.0f} Kbr/s"
                f"   {gap_text}")
    return "\n".join(lines)
