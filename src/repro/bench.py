"""``python -m repro bench`` — replay-throughput benchmark with tracked history.

The bench times the engine on three representative grids — the Figure 3
(models × workloads) trace grid, a cycle-approximate CPU grid, and an SMT
co-run grid — and writes the timings, per-grid branch throughput, and the
speedup against the recorded baseline to a ``BENCH_<n>.json`` artifact
(``BENCH_2.json`` for the current format).  Committing one artifact per PR
tracks the perf trajectory of the hot path over time.

Baseline numbers are wall-clock seconds of the same grids measured on the
pre-columnar engine (PR 1's per-item replay loop) on the reference container;
a ``speedup`` of 2.0 therefore means "twice as fast as the engine before the
columnar fast path".  Traces are generated (and memoised) before the clock
starts, so the measurement covers replay, not synthetic trace construction.

Each timing also records a SHA-256 of the grid's serialized
:class:`~repro.engine.results.ResultFrame`, tying every perf point to the
exact results it produced — a bench run that got faster by producing
different numbers is immediately visible.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    Option,
    SimulationGrid,
    register_experiment,
    resolve_workloads,
)
from repro.experiments.figure3 import figure3_grid
from repro.trace.workloads import GEM5_SMT_PAIRS

#: Format/sequence number of the artifact this module writes.
BENCH_SEQUENCE = 2

#: Default artifact path.
DEFAULT_OUTPUT = f"BENCH_{BENCH_SEQUENCE}.json"

#: Pre-change (PR 1, per-item replay loop) wall-clock seconds for each bench
#: grid, measured serially on the reference container.  These are the
#: denominators of the reported speedups; re-measure them only when the grid
#: definitions below change.
PR1_BASELINE_SECONDS: dict[str, float] = {
    "figure3.full": 18.50,
    "cpu.full": 3.48,
    "smt.full": 3.32,
    "figure3.quick": 1.96,
    "cpu.quick": 0.38,
    "smt.quick": 0.36,
}


@dataclass(slots=True)
class BenchTiming:
    """One timed grid: size, wall-clock, throughput, and baseline comparison."""

    name: str
    mode: str
    jobs: int
    branches: int
    seconds: float
    result_sha256: str
    baseline_seconds: float | None = None
    parallel_seconds: float | None = None
    parallel_matches_serial: bool | None = None

    @property
    def branches_per_second(self) -> float:
        return self.branches / self.seconds if self.seconds else 0.0

    @property
    def speedup(self) -> float | None:
        if self.baseline_seconds is None or not self.seconds:
            return None
        return self.baseline_seconds / self.seconds

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "mode": self.mode,
            "jobs": self.jobs,
            "branches": self.branches,
            "seconds": round(self.seconds, 4),
            "branches_per_second": round(self.branches_per_second, 1),
            "result_sha256": self.result_sha256,
        }
        if self.baseline_seconds is not None:
            payload["baseline_seconds"] = self.baseline_seconds
            payload["speedup"] = round(self.speedup, 3)
        if self.parallel_seconds is not None:
            payload["parallel_seconds"] = round(self.parallel_seconds, 4)
            payload["parallel_matches_serial"] = self.parallel_matches_serial
        return payload


@dataclass(slots=True)
class BenchReport:
    """All timings of one bench invocation."""

    mode: str
    timings: list[BenchTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    def to_dict(self) -> dict:
        return {
            "format": BENCH_SEQUENCE,
            "mode": self.mode,
            "total_seconds": round(self.total_seconds, 4),
            "benches": {timing.name: timing.to_dict() for timing in self.timings},
        }


def bench_grids(quick: bool = False) -> dict[str, SimulationGrid]:
    """The representative grids the bench times.

    ``quick`` shrinks trace lengths and grid extents for CI smoke runs; the
    full mode matches the scale the recorded baselines were measured at.
    Changing these definitions invalidates :data:`PR1_BASELINE_SECONDS`.
    """
    if quick:
        branch_count, warmup = 4_000, 400
        figure3_limit, cpu_workloads, smt_pairs = 4, 2, 1
    else:
        branch_count, warmup = 20_000, 2_000
        figure3_limit, cpu_workloads, smt_pairs = 8, 4, 2

    def scale(limit: int | None = None) -> ExperimentScale:
        return ExperimentScale(
            branch_count=branch_count, warmup_branches=warmup, seed=7,
            workload_limit=limit,
        )

    singles = resolve_workloads(None)
    return {
        "figure3": figure3_grid(scale(figure3_limit)),
        "cpu": SimulationGrid(
            kind="cpu", models=("baseline", "ST_SKLCond"),
            workloads=singles[:cpu_workloads], scale=scale(),
        ),
        "smt": SimulationGrid(
            kind="smt", models=("baseline", "ST_SKLCond"),
            workloads=list(GEM5_SMT_PAIRS[:smt_pairs]), scale=scale(),
        ),
    }


def _frame_sha256(frame) -> str:
    return hashlib.sha256(frame.to_json().encode("utf-8")).hexdigest()


def run_bench(quick: bool = False, workers: int = 1) -> BenchReport:
    """Time every bench grid; optionally cross-check a parallel run.

    The timed measurement is always serial so numbers stay comparable across
    machines and worker counts.  With ``workers > 1`` each grid is run a
    second time on the process pool and the serialized results are compared —
    the parallel timing and the match verdict land in the artifact.
    """
    mode = "quick" if quick else "full"
    report = BenchReport(mode=mode)
    for name, grid in bench_grids(quick).items():
        jobs = grid.jobs()
        branches = EngineRunner._prewarm_traces(jobs)
        runner = EngineRunner(workers=1)
        started = time.perf_counter()
        frame = runner.run_jobs(jobs)
        seconds = time.perf_counter() - started
        timing = BenchTiming(
            name=name,
            mode=mode,
            jobs=len(jobs),
            branches=branches,
            seconds=seconds,
            result_sha256=_frame_sha256(frame),
            baseline_seconds=PR1_BASELINE_SECONDS.get(f"{name}.{mode}"),
        )
        if workers > 1:
            started = time.perf_counter()
            parallel_frame = EngineRunner(workers=workers).run_jobs(jobs)
            timing.parallel_seconds = time.perf_counter() - started
            timing.parallel_matches_serial = (
                parallel_frame.to_json() == frame.to_json()
            )
        report.timings.append(timing)
    return report


def write_bench(report: BenchReport, path: str = DEFAULT_OUTPUT) -> None:
    """Write the artifact JSON (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def _bench_execute(params: dict, workers: int = 1, progress=None) -> BenchReport:
    report = run_bench(quick=params["quick"], workers=workers)
    write_bench(report, params["output"] or DEFAULT_OUTPUT)
    return report


register_experiment(ExperimentSpec(
    name="bench",
    description="time representative grids and write the BENCH_*.json artifact",
    kind="bench",
    options=(
        Option("quick", action="store_true",
               help="reduced-scale smoke run (used by CI)"),
        Option("output", metavar="PATH", default=None,
               help=f"artifact path (default: {DEFAULT_OUTPUT})"),
    ),
    execute=_bench_execute,
    formatter=lambda report: format_bench(report),
    serializer=lambda report: report.to_dict(),
    epilogue=lambda report, params: (
        f"bench artifact written to {params['output'] or DEFAULT_OUTPUT}"),
))


def format_bench(report: BenchReport) -> str:
    """Render the report as an aligned text table."""
    header = (
        f"{'bench':10s}{'jobs':>6s}{'branches':>12s}{'seconds':>10s}"
        f"{'Mbr/s':>8s}{'speedup':>9s}{'parallel':>10s}"
    )
    lines = [f"mode: {report.mode}", header, "-" * len(header)]
    for timing in report.timings:
        speedup = f"{timing.speedup:8.2f}x" if timing.speedup is not None else f"{'n/a':>9s}"
        if timing.parallel_seconds is not None:
            verdict = "ok" if timing.parallel_matches_serial else "DIFF"
            parallel = f"{timing.parallel_seconds:7.2f}s{verdict:>2s}"
        else:
            parallel = f"{'-':>10s}"
        lines.append(
            f"{timing.name:10s}{timing.jobs:6d}{timing.branches:12d}"
            f"{timing.seconds:10.3f}{timing.branches_per_second / 1e6:8.2f}"
            f"{speedup}{parallel}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'total':10s}{'':6s}{'':12s}{report.total_seconds:10.3f}")
    return "\n".join(lines)
