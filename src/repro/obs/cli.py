"""``repro obs`` — render metrics snapshots and stored span traces.

Three subcommands:

* ``repro obs metrics [--url URL]`` — Prometheus text: scraped from a
  running serve instance with ``--url``, otherwise the current process's
  registry (useful after an in-process run).
* ``repro obs trace <fingerprint> (--store DIR | --url URL) [--json]`` —
  one job's span tree, indented with per-span seconds and percent-of-root.
* ``repro obs top --store DIR [--limit N]`` — per-phase profile across
  every stored trace: total seconds per span name plus the slowest traces.

Store access goes through the normal store protocol (``obstrace``
namespace), so any replica sharing the store can answer for work it did
not execute.
"""

from __future__ import annotations

import argparse
import json
import urllib.request
from typing import Any

from repro.obs import metrics as obs_metrics
from repro.obs.spans import OBSTRACE_SCHEMA, format_tree, phase_seconds


def add_obs_parser(subparsers) -> None:
    """Register the ``obs`` subcommand on the main CLI's subparsers."""
    parser = subparsers.add_parser(
        "obs",
        help="observability: metrics snapshots, span traces, profiles",
        description="Render the metrics registry and persisted span traces.")
    commands = parser.add_subparsers(dest="obs_command", required=True)

    metrics_parser = commands.add_parser(
        "metrics", help="Prometheus-text snapshot of the metrics registry")
    metrics_parser.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape GET /v1/metrics of a running serve instance "
             "instead of this process's registry")
    metrics_parser.set_defaults(handler=_cmd_metrics)

    trace_parser = commands.add_parser(
        "trace", help="render one job's span tree from the store or serve")
    trace_parser.add_argument("fingerprint", help="job fingerprint")
    trace_parser.add_argument("--store", default=None, metavar="DIR",
                              help="read the obstrace record from this "
                                   "store directory")
    trace_parser.add_argument("--url", default=None, metavar="URL",
                              help="fetch via GET /v1/jobs/<fp>/trace")
    trace_parser.add_argument("--json", action="store_true", dest="as_json",
                              help="emit the raw span payload as JSON")
    trace_parser.set_defaults(handler=_cmd_trace)

    top_parser = commands.add_parser(
        "top", help="per-phase timing profile across all stored traces")
    top_parser.add_argument("--store", required=True, metavar="DIR",
                            help="store directory to profile")
    top_parser.add_argument("--limit", type=int, default=10,
                            help="slowest traces to list (default: 10)")
    top_parser.set_defaults(handler=_cmd_top)


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.url:
        text = _fetch_text(args.url.rstrip("/") + "/v1/metrics")
    else:
        text = obs_metrics.render_prometheus()
    print(text, end="" if text.endswith("\n") or not text else "\n")
    return 0


def _load_trace(args: argparse.Namespace) -> dict[str, Any]:
    if args.url:
        from repro.client import ReproClient
        return ReproClient(args.url).trace(args.fingerprint)
    if args.store:
        from repro.store.base import OBSTRACE_NAMESPACE
        from repro.store.disk import DiskStore
        payload = DiskStore(args.store).get(OBSTRACE_NAMESPACE,
                                            args.fingerprint)
        if payload is None:
            raise KeyError(
                f"no trace for {args.fingerprint!r} in {args.store!r}")
        return payload
    raise ValueError("repro obs trace needs --store DIR or --url URL")


def _cmd_trace(args: argparse.Namespace) -> int:
    payload = _load_trace(args)
    if payload.get("schema") != OBSTRACE_SCHEMA:
        raise ValueError(
            f"unexpected trace schema {payload.get('schema')!r}")
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_tree(payload))
    phases = phase_seconds(payload)
    if phases:
        print("phases: " + "  ".join(
            f"{name}={seconds:.4f}s" for name, seconds in phases.items()))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.store.base import OBSTRACE_NAMESPACE
    from repro.store.disk import DiskStore
    store = DiskStore(args.store)
    totals: dict[str, float] = {}
    traces: list[tuple[float, str, str]] = []
    count = 0
    for fingerprint in store.keys(OBSTRACE_NAMESPACE):
        payload = store.get(OBSTRACE_NAMESPACE, fingerprint)
        if not isinstance(payload, dict) or \
                payload.get("schema") != OBSTRACE_SCHEMA:
            continue
        count += 1
        root = payload.get("root", {})
        seconds = float(root.get("seconds", 0.0))
        attrs = root.get("attrs") or {}
        traces.append((seconds, fingerprint,
                       str(attrs.get("scenario", root.get("name", "?")))))
        for name, phase_total in phase_seconds(payload).items():
            totals[name] = totals.get(name, 0.0) + phase_total
    if not count:
        print(f"no traces in {args.store}")
        return 0
    grand = sum(seconds for seconds, _, _ in traces)
    print(f"{count} trace(s), {grand:.3f}s total")
    print("per-phase totals:")
    for name, seconds in sorted(totals.items(),
                                key=lambda item: (-item[1], item[0])):
        share = seconds / grand * 100 if grand > 0 else 0.0
        print(f"  {name:12s} {seconds:10.4f}s {share:5.1f}%")
    print(f"slowest traces (top {args.limit}):")
    traces.sort(key=lambda item: (-item[0], item[1]))
    for seconds, fingerprint, scenario in traces[:args.limit]:
        print(f"  {seconds:10.4f}s  {fingerprint}  {scenario}")
    return 0


def _fetch_text(url: str) -> str:
    with urllib.request.urlopen(url) as response:  # noqa: S310 (CLI tool)
        return response.read().decode("utf-8", "replace")
