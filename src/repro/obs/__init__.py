"""``repro.obs`` — unified observability: metrics, span tracing, profiling.

Two halves, both dependency-free so every layer of the stack can use them:

* :mod:`repro.obs.metrics` — a process-wide thread-safe registry of
  counters, gauges and histograms that the store, job tier, engine and
  fault injector bridge their private counters into; rendered as
  Prometheus text by serve's ``GET /v1/metrics``.
* :mod:`repro.obs.spans` — span trees with deterministic identities
  (fingerprint + tree path) and wall-clock durations that stay out of
  fingerprints and result frames; persisted as content-addressed
  ``obstrace`` store records and served by ``GET /v1/jobs/<fp>/trace``.

The ``repro obs`` CLI (:mod:`repro.obs.cli`) renders both.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    inc,
    observe,
    register_callback,
    registry,
    render_prometheus,
    set_counter,
    set_gauge,
)
from repro.obs.spans import (
    NULL_TRACER,
    OBSTRACE_SCHEMA,
    NullTracer,
    Span,
    SpanTracer,
    format_tree,
    phase_seconds,
    span_id,
    strip_durations,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OBSTRACE_SCHEMA",
    "Span",
    "SpanTracer",
    "format_tree",
    "inc",
    "observe",
    "phase_seconds",
    "register_callback",
    "registry",
    "render_prometheus",
    "set_counter",
    "set_gauge",
    "span_id",
    "strip_durations",
]
