"""Process-wide metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` per process (:func:`registry`) collects every
subsystem's counters behind a single lock — the serve tier mutates it from
many handler threads, the job tier from its worker pool, and the engine from
whichever thread drives a run.  Owners keep their private bookkeeping
(:class:`repro.store.base.StoreCounters`, the JobManager's stats, the
fault injector's per-kind counts) and *bridge* into the registry at their
existing mutation points, so nothing changes hands — the registry is a
read-side aggregation, never an execution dependency.

Design rules:

* every mutation happens under ``self._lock`` (the thread-safety lint rule
  covers ``repro.obs``);
* the lock is a strict leaf: no callback, no store or job-tier code ever
  runs while it is held — :meth:`MetricsRegistry.snapshot` evaluates
  registered gauge callbacks *before* taking the lock, so a callback may
  freely acquire its owner's lock (JobManager stats, DiskStore occupancy)
  without creating a cross-module lock cycle;
* rendering (:meth:`render_prometheus`) is deterministic: families and
  samples sort by name and label set, so two scrapes of identical state are
  byte-identical.

The module is stdlib-only and imports nothing from ``repro`` — it sits at
the bottom of the import graph so every layer can bridge into it.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

#: Default histogram bucket upper bounds, in seconds.  Chosen to straddle
#: the stack's real latencies: sub-ms store hits, ~10-100ms quick-grid
#: jobs, multi-second full scenario runs.
DEFAULT_BUCKETS: tuple[float, ...] = (0.005, 0.02, 0.1, 0.5, 2.5, 10.0)

#: Help text for the well-known series (the metric catalogue; also
#: documented in EXPERIMENTS.md).  Families not listed here render with an
#: empty HELP line unless the caller passes ``help=``.
HELP_TEXT: dict[str, str] = {
    "repro_store_hits_total": "Store reads resolved from cache.",
    "repro_store_misses_total": "Store reads that missed (absent or corrupt).",
    "repro_store_writes_total": "Store writes.",
    "repro_store_evictions_total": "Entries evicted by size/count caps.",
    "repro_store_corrupt_total": "Corrupt entries dropped on read.",
    "repro_store_retried_total": "Store writes that needed a retry.",
    "repro_store_entries": "Entries currently in the serve store.",
    "repro_store_bytes": "Bytes currently in the serve store.",
    "repro_store_op_seconds": "Store get/put latency.",
    "repro_jobs_submitted_total": "Jobs accepted by the job tier.",
    "repro_jobs_transitions_total": "Job state transitions, by target state.",
    "repro_jobs_retries_total": "Job attempts re-enqueued after a failure.",
    "repro_jobs_queue_depth": "Jobs currently queued (not yet running).",
    "repro_jobs_workers_alive": "Job-tier worker threads alive.",
    "repro_jobs_running": "Jobs currently executing.",
    "repro_jobs_seconds": "Wall-clock seconds per finished job attempt.",
    "repro_engine_jobs_executed_total": "Engine jobs actually simulated.",
    "repro_engine_jobs_cached_total": "Engine jobs served from the store.",
    "repro_trace_cache_hits_total": "Workload trace-cache hits.",
    "repro_trace_cache_misses_total": "Workload trace-cache misses.",
    "repro_trace_cache_evictions_total": "Workload trace-cache evictions.",
    "repro_trace_cache_entries": "Workload traces currently cached.",
    "repro_faults_injected_total": "Injected store faults, by kind.",
    "repro_http_requests_total": "Serve HTTP requests, by method/route/status.",
    "repro_http_request_seconds": "Serve HTTP request latency, by route.",
    "repro_obs_callback_errors_total": "Gauge callbacks that raised.",
}

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) \
        -> str:
    pairs = key + extra
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


class MetricsRegistry:
    """Thread-safe counter/gauge/histogram families with label support.

    Families are created implicitly on first touch; re-using a name with a
    different instrument type raises ``ValueError`` (a miswired bridge is a
    bug worth failing loudly on).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        # family name -> label key -> value (counters/gauges) or
        # {"counts": [per-bucket..., overflow], "sum": float} (histograms).
        self._values: dict[str, dict[_LabelKey, Any]] = {}
        self._callbacks: list[Callable[[], None]] = []

    # ------------------------------------------------------------- mutation

    def inc(self, name: str, value: float = 1.0, *,
            help: str | None = None, **labels: str) -> None:
        """Add ``value`` to a counter sample (negative deltas allowed: the
        store bridge mirrors rare hit→miss reclassifications verbatim)."""
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, "counter")
            self._types[name] = "counter"
            self._help[name] = self._help_for(name, help)
            samples = self._values.setdefault(name, {})
            samples[key] = samples.get(key, 0.0) + value

    def set_counter(self, name: str, value: float, *,
                    help: str | None = None, **labels: str) -> None:
        """Set a counter sample to an absolute value — for bridging owners
        that keep their own cumulative counts (e.g. the trace cache)."""
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, "counter")
            self._types[name] = "counter"
            self._help[name] = self._help_for(name, help)
            samples = self._values.setdefault(name, {})
            samples[key] = float(value)

    def set_gauge(self, name: str, value: float, *,
                  help: str | None = None, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, "gauge")
            self._types[name] = "gauge"
            self._help[name] = self._help_for(name, help)
            samples = self._values.setdefault(name, {})
            samples[key] = float(value)

    def observe(self, name: str, value: float, *,
                buckets: Iterable[float] | None = None,
                help: str | None = None, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._check_kind(name, "histogram")
            self._types[name] = "histogram"
            self._help[name] = self._help_for(name, help)
            bounds = self._buckets.get(name)
            if bounds is None:
                bounds = tuple(sorted(buckets)) if buckets is not None \
                    else DEFAULT_BUCKETS
                self._buckets[name] = bounds
            samples = self._values.setdefault(name, {})
            sample = samples.get(key)
            if sample is None:
                sample = {"counts": [0] * (len(bounds) + 1), "sum": 0.0}
                samples[key] = sample
            slot = len(bounds)
            for index, bound in enumerate(bounds):
                if value <= bound:
                    slot = index
                    break
            sample["counts"][slot] += 1
            sample["sum"] += value

    def _check_kind(self, name: str, kind: str) -> None:
        """Reject re-use of a family name with a different instrument type
        (a miswired bridge is a bug worth failing loudly on).  Read-only;
        callers hold the lock and then (re-)record type and help."""
        known = self._types.get(name)
        if known is not None and known != kind:
            raise ValueError(f"metric {name!r} is a {known}, not a {kind}")

    def _help_for(self, name: str, help_text: str | None) -> str:
        if help_text is not None:
            return help_text
        return self._help.get(name) or HELP_TEXT.get(name, "")

    def register_callback(self, callback: Callable[[], None]) -> None:
        """Register a zero-arg callable run by :meth:`snapshot` (outside the
        registry lock) to refresh live gauges before each read."""
        with self._lock:
            self._callbacks.append(callback)

    def reset(self) -> None:
        """Drop every sample (callbacks survive) — test isolation hook."""
        with self._lock:
            self._types.clear()
            self._help.clear()
            self._buckets.clear()
            self._values.clear()

    # ---------------------------------------------------------------- reads

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A deep copy of every family, after refreshing gauge callbacks.

        Callbacks run *outside* the lock: they may acquire their owner's
        locks and bridge values back in through the public mutators.
        """
        with self._lock:
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback()
            except Exception:
                self.inc("repro_obs_callback_errors_total")
        families: dict[str, dict[str, Any]] = {}
        with self._lock:
            for name in sorted(self._types):
                kind = self._types[name]
                samples = []
                for key in sorted(self._values[name]):
                    value = self._values[name][key]
                    if kind == "histogram":
                        value = {"counts": list(value["counts"]),
                                 "sum": value["sum"]}
                    samples.append({"labels": dict(key), "value": value})
                family: dict[str, Any] = {
                    "type": kind,
                    "help": self._help[name],
                    "samples": samples,
                }
                if kind == "histogram":
                    family["buckets"] = list(self._buckets[name])
                families[name] = family
        return families

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4), deterministically
        ordered: families by name, samples by label set."""
        lines: list[str] = []
        for name, family in self.snapshot().items():
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in family["samples"]:
                key = _label_key(sample["labels"])
                if family["type"] == "histogram":
                    value = sample["value"]
                    cumulative = 0
                    for bound, count in zip(family["buckets"],
                                            value["counts"]):
                        cumulative += count
                        labels = _render_labels(
                            key, (("le", _format_value(bound)),))
                        lines.append(
                            f"{name}_bucket{labels} {cumulative}")
                    cumulative += value["counts"][-1]
                    labels = _render_labels(key, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    lines.append(f"{name}_sum{_render_labels(key)} "
                                 f"{_format_value(value['sum'])}")
                    lines.append(f"{name}_count{_render_labels(key)} "
                                 f"{cumulative}")
                else:
                    lines.append(f"{name}{_render_labels(key)} "
                                 f"{_format_value(sample['value'])}")
        return "\n".join(lines) + ("\n" if lines else "")


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every subsystem bridges into."""
    return _REGISTRY


def inc(name: str, value: float = 1.0, **labels: str) -> None:
    _REGISTRY.inc(name, value, **labels)


def set_counter(name: str, value: float, **labels: str) -> None:
    _REGISTRY.set_counter(name, value, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    _REGISTRY.observe(name, value, **labels)


def register_callback(callback: Callable[[], None]) -> None:
    _REGISTRY.register_callback(callback)


def render_prometheus() -> str:
    return _REGISTRY.render_prometheus()
