"""Span-based structured tracing with deterministic span identities.

A :class:`SpanTracer` records one tree of timed spans per traced run.  The
*structure* of the tree — span names, nesting, order, attributes — is a
pure function of the work performed: span ids are derived from the traced
job/scenario fingerprint plus the span's path in the tree, never from
clocks, thread ids or memory addresses.  Wall-clock durations are recorded
in each node's ``seconds`` field and **nowhere else** — exactly like
``JobRecord.seconds``, they ride along for humans but stay out of
fingerprints and result frames, so :func:`strip_durations` of two traces of
the same work against equivalent store state is byte-identical (the
``obstrace`` determinism gate).

All clock access lives here: instrumented modules (the engine runner is in
the determinism lint's scope) call ``tracer.span(...)`` and never touch
``time.perf_counter`` themselves.

Tracers are single-threaded by design — one tracer follows one job through
the runner's streaming loop on the worker thread that drives it.  The
process-wide metrics registry (:mod:`repro.obs.metrics`) is the
multi-threaded half of the package.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Any, Iterator

#: Schema tag of persisted span trees (the ``obstrace`` store namespace).
OBSTRACE_SCHEMA = "repro.obstrace/v1"


class Span:
    """One node: a name, JSON-scalar attributes, seconds, and children."""

    __slots__ = ("name", "attrs", "seconds", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None,
                 seconds: float = 0.0):
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.seconds = seconds
        self.children: list[Span] = []


class SpanTracer:
    """Collects one span tree for the run addressed by ``fingerprint``.

    Use :meth:`span` as a context manager around a timed phase (the yielded
    :class:`Span` accepts late attributes, e.g. counts known only after the
    phase ran) and :meth:`add` for pre-timed leaves such as per-job records
    whose ``seconds`` the engine already measured.
    """

    def __init__(self, fingerprint: str, name: str = "run",
                 attrs: dict[str, Any] | None = None):
        self.fingerprint = fingerprint
        self._root = Span(name, attrs)
        self._stack = [self._root]
        self._started = time.perf_counter()
        self._finished: float | None = None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        node = Span(name, attrs)
        self._stack[-1].children.append(node)
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        finally:
            node.seconds = time.perf_counter() - started
            self._stack.pop()

    def add(self, name: str, seconds: float = 0.0, **attrs: Any) -> None:
        """Append a pre-timed leaf under the currently open span."""
        self._stack[-1].children.append(Span(name, attrs, seconds))

    def payload(self) -> dict[str, Any]:
        """The serializable span tree; the first call closes the root."""
        if self._finished is None:
            self._finished = time.perf_counter()
        self._root.seconds = self._finished - self._started
        return {
            "schema": OBSTRACE_SCHEMA,
            "fingerprint": self.fingerprint,
            "root": self._node_payload(self._root, self._root.name),
        }

    def _node_payload(self, node: Span, path: str) -> dict[str, Any]:
        return {
            "id": span_id(self.fingerprint, path),
            "name": node.name,
            "attrs": dict(sorted(node.attrs.items())),
            "seconds": node.seconds,
            "children": [
                self._node_payload(child, f"{path}/{index}:{child.name}")
                for index, child in enumerate(node.children)
            ],
        }


class NullTracer:
    """No-op tracer: untraced runs pay zero clock reads and no bookkeeping
    beyond one throwaway :class:`Span` per ``with`` block."""

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield Span(name, attrs)

    def add(self, name: str, seconds: float = 0.0, **attrs: Any) -> None:
        pass


#: Shared no-op tracer; ``tracer or NULL_TRACER`` is the instrumentation
#: idiom everywhere a tracer parameter is optional.
NULL_TRACER = NullTracer()


def span_id(fingerprint: str, path: str) -> str:
    """Deterministic span identity: fingerprint plus tree path, hashed."""
    digest = hashlib.sha256(f"{fingerprint}/{path}".encode()).hexdigest()
    return digest[:16]


def strip_durations(payload: Any) -> Any:
    """A deep copy of a span payload/node with every ``seconds`` removed —
    the byte-identity comparison form of a trace."""
    if isinstance(payload, dict):
        return {key: strip_durations(value)
                for key, value in payload.items() if key != "seconds"}
    if isinstance(payload, list):
        return [strip_durations(item) for item in payload]
    return payload


def phase_seconds(payload: dict[str, Any]) -> dict[str, float]:
    """Total seconds per span name across the whole tree (root excluded) —
    the per-phase breakdown bench and ``repro obs top`` report."""
    totals: dict[str, float] = {}

    def walk(node: dict[str, Any]) -> None:
        for child in node.get("children", ()):
            name = child["name"]
            totals[name] = totals.get(name, 0.0) + float(
                child.get("seconds", 0.0))
            walk(child)

    walk(payload.get("root", {}))
    return dict(sorted(totals.items()))


def format_tree(payload: dict[str, Any]) -> str:
    """Human-readable indented rendering of a span payload, with seconds
    and percent-of-root per node."""
    root = payload.get("root", {})
    total = float(root.get("seconds", 0.0)) or 0.0
    lines = [f"trace {payload.get('fingerprint', '?')} "
             f"({total:.3f}s total)"]

    def walk(node: dict[str, Any], depth: int) -> None:
        seconds = float(node.get("seconds", 0.0))
        share = f" {seconds / total * 100:5.1f}%" if total > 0 else ""
        attrs = node.get("attrs") or {}
        detail = "".join(f" {key}={value}"
                         for key, value in sorted(attrs.items()))
        lines.append(f"{'  ' * depth}{node.get('name', '?')} "
                     f"[{node.get('id', '')}] {seconds:.4f}s{share}{detail}")
        for child in node.get("children", ()):
            walk(child, depth + 1)

    if root:
        walk(root, 1)
    return "\n".join(lines)
