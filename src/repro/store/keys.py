"""Canonical fingerprints: stable content-addressed keys for cached results.

A *job fingerprint* is a SHA-256 over everything that determines a job's
result — kind, model spec (name, frozen params, display label), workload,
trace-length knobs, seeds, extra parameters — plus
:data:`RESULT_SCHEMA_VERSION`.  It deliberately excludes two things:

* the job's grid ``index`` (position in a grid is presentation, not
  identity — that is what lets a new grid reuse the overlapping half of an
  old one), and
* the replay backend (``reference``/``fast``/``vector`` are parity-tested
  byte-identical, so a record computed under any backend answers for all).

Fingerprints are hex strings, so they double as object filenames in the
on-disk store and as URL path components for ``repro serve``.

Cache invalidation is by schema version, not by deletion: bumping
:data:`RESULT_SCHEMA_VERSION` changes every fingerprint, so records written
by older code simply stop matching (and age out of a size-capped store via
LRU eviction).  Bump it whenever the simulation's numeric outputs or the
serialized record shape change meaning.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Version of the result schema folded into every fingerprint.  Bump on any
#: change that alters what a stored record means (simulator semantics, metric
#: definitions, record shape): old records then miss instead of lying.
RESULT_SCHEMA_VERSION = 1

#: Job kinds whose records are safe to cache: their outcome is a pure
#: function of the fingerprint fields.  ``table`` jobs are excluded — their
#: payloads aggregate large nested driver output whose shape is not covered
#: by the job's own parameters.
CACHEABLE_KINDS = frozenset({"trace", "cpu", "smt", "hashgen", "attack"})


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` canonically: sorted keys, compact separators.

    Tuples become lists (so tuple- and list-shaped inputs hash identically)
    and any non-JSON value falls back to ``str`` — deterministically, since
    every value reaching a fingerprint is plain data.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def fingerprint_of(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _canonical_workload(workload: Any) -> Any:
    if isinstance(workload, tuple):
        return list(workload)
    return workload


def _canonical_model(model: Any) -> Any:
    if model is None:
        return None
    return {
        "name": model.name,
        "params": [[key, value] for key, value in model.params],
        # The display label lands verbatim in the record's ``model`` column,
        # so it is part of result identity even though it never reaches the
        # simulator.
        "label": model.display_label,
    }


#: :class:`~repro.engine.grid.Job` fields *deliberately* excluded from result
#: identity.  The ``fingerprint-coverage`` lint rule enforces that every
#: other field is read by :func:`job_fingerprint_fields`, so a new field
#: cannot be serialized into records without deciding its cache identity.
#:
#: * ``index`` — position in a grid is presentation, not identity; excluding
#:   it is what lets a new grid reuse the overlapping half of an old one.
JOB_FINGERPRINT_EXEMPT = frozenset({"index"})

#: :class:`~repro.engine.scenario.Scenario` fields excluded from the
#: envelope fingerprint (same lint contract as above).
#:
#: * ``description`` — free-text documentation; it never reaches
#:   ``serialize_scenario``'s payload, so it cannot shape a cached envelope.
SCENARIO_FINGERPRINT_EXEMPT = frozenset({"description"})


def job_fingerprint_fields(job: Any) -> dict[str, Any]:
    """The canonical field mapping a job fingerprint hashes (for debugging,
    ``repro store verify`` reports, and the docs)."""
    return {
        "result_schema": RESULT_SCHEMA_VERSION,
        "kind": job.kind,
        "model": _canonical_model(job.model),
        "workload": _canonical_workload(job.workload),
        "branch_count": job.branch_count,
        "warmup_branches": job.warmup_branches,
        "seed": job.seed,
        "trace_seed": job.trace_seed,
        # Sorted so identity never depends on a producer's tuple order —
        # the same logical job must fingerprint identically from every
        # entry point (EXPERIMENTS.md documents the field as sorted).
        "params": [[key, value] for key, value in sorted(job.params)],
    }


def job_fingerprint(job: Any) -> str:
    """Stable content-address of one engine job's result."""
    return fingerprint_of(job_fingerprint_fields(job))


def scenario_fingerprint(scenario: Any) -> str:
    """Stable content-address of a whole scenario's result envelope.

    Hashes the validated :class:`~repro.engine.scenario.Scenario` fields that
    shape the envelope — including presentation fields (``name``, ``metrics``,
    ``baseline``) because they appear in the serialized payload — plus the
    scenario schema tag and :data:`RESULT_SCHEMA_VERSION`.
    """
    from repro.engine.scenario import SCENARIO_SCHEMA  # avoid an import cycle

    payload = {
        "schema": SCENARIO_SCHEMA,
        "result_schema": RESULT_SCHEMA_VERSION,
        "name": scenario.name,
        "kind": scenario.kind,
        "models": [_canonical_model(model) for model in scenario.models],
        "workloads": [_canonical_workload(w) for w in scenario.workloads],
        "attacks": list(scenario.attacks),
        "scale": {
            "branch_count": scenario.scale.branch_count,
            "warmup_branches": scenario.scale.warmup_branches,
            "seed": scenario.scale.seed,
            "workload_limit": scenario.scale.workload_limit,
        },
        "seed_policy": scenario.seed_policy,
        "params": dict(scenario.params),
        "baseline": scenario.baseline,
        "metrics": list(scenario.metrics),
    }
    return fingerprint_of(payload)
