"""In-memory result store: the test double and the ``repro serve`` default.

Payloads round-trip through canonical JSON on the way in, so a
:class:`MemoryStore` faithfully models the serialization boundary of the
on-disk store — tuples come back as lists, keys come back as strings, and a
caller mutating a retrieved payload cannot poison later hits.  An optional
``max_entries`` cap evicts least-recently-used entries, mirroring the disk
store's size cap.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any

from repro.store.base import ResultStore
from repro.store.keys import canonical_json


class MemoryStore(ResultStore):
    """Dict-backed store with LRU bounding and the shared counters.

    Reads, writes and stats lock the entry map: ``repro serve`` hits one
    instance from many handler threads, and ``move_to_end`` during another
    thread's ``stats()`` iteration would raise ``RuntimeError``.
    """

    def __init__(self, max_entries: int | None = None):
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], str] = OrderedDict()
        self._entries_lock = threading.Lock()

    def _read(self, namespace: str, fingerprint: str) -> Any | None:
        with self._entries_lock:
            encoded = self._entries.get((namespace, fingerprint))
            if encoded is None:
                return None
            self._entries.move_to_end((namespace, fingerprint))
        return json.loads(encoded)

    def _write(self, namespace: str, fingerprint: str, payload: Any) -> None:
        encoded = canonical_json(payload)
        with self._entries_lock:
            entries = self._entries
            entries[(namespace, fingerprint)] = encoded
            entries.move_to_end((namespace, fingerprint))
            if self.max_entries is not None:
                while len(entries) > self.max_entries:
                    entries.popitem(last=False)
                    self.counters.add(evictions=1)

    def contains(self, namespace: str, fingerprint: str) -> bool:
        with self._entries_lock:
            return (namespace, fingerprint) in self._entries

    def keys(self, namespace: str):
        with self._entries_lock:
            found = [fp for (ns, fp) in self._entries if ns == namespace]
        return iter(sorted(found))

    def clear(self) -> None:
        with self._entries_lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._entries_lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        namespaces: dict[str, int] = {}
        total_bytes = 0
        with self._entries_lock:
            snapshot = list(self._entries.items())
        for (namespace, _), encoded in snapshot:
            namespaces[namespace] = namespaces.get(namespace, 0) + 1
            total_bytes += len(encoded)
        return {
            "backend": "memory",
            "entries": len(snapshot),  # same view the namespace counts use
            "bytes": total_bytes,
            "namespaces": dict(sorted(namespaces.items())),
            **self.counters.to_dict(),
        }
