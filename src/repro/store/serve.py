"""``repro serve`` — a stdlib HTTP front-end over the experiment store.

The server accepts scenario files (the ``repro.scenario/v1`` format) over
POST and hands them to the async job subsystem (:mod:`repro.store.jobs`):
a bounded queue feeds supervised worker threads, each running the scenario
through the incremental runner (so overlapping scenarios share job records)
under a per-job deadline with bounded retry.  Finished envelopes are cached
under the scenario's content-addressed fingerprint and served with
strong-ETag / ``304 Not Modified`` semantics.  Being pure
:mod:`http.server`, it needs no dependency the repository does not already
have.

Endpoints (all JSON)::

    GET    /                      service info: version, config, endpoints
    GET    /healthz               liveness: queue depth, worker liveness;
                                  503 once the worker pool is dead
    GET    /v1/store/stats        live store counters and occupancy
    POST   /v1/experiments        body = scenario JSON; 200 on a cache hit,
                                  202 + job envelope otherwise
                                  (?wait=1[&timeout=s] blocks synchronously)
    GET    /v1/experiments/<fp>   cached envelope by fingerprint; ETag/304
    GET    /v1/jobs/<fp>          job state (any replica sharing the store)
    DELETE /v1/jobs/<fp>          cancel a queued job (running → 409)
    GET    /v1/jobs/<fp>/events   SSE-style chunked progress stream
    GET    /v1/jobs/<fp>/trace    completed job's span tree (obstrace)
    GET    /v1/metrics            Prometheus text: the process-wide registry

Envelope responses carry ``X-Repro-Cache: hit|miss`` (whether the envelope
was served from the store or computed for this request), ``Location`` (the
canonical GET URL) and the same ``ETag`` the GET would return.  Job
responses carry ``Location: /v1/jobs/<fp>`` and ``X-Repro-Job-State``.
A full queue answers 429 with a ``Retry-After`` hint.  Every error response
is a JSON document with an ``error`` field.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator
from urllib.parse import parse_qs, urlparse

from repro.engine.scenario import (
    SCENARIO_SCHEMA,
    Scenario,
    parse_scenario,
)
from repro.obs import metrics as obs_metrics
from repro.store.base import ENVELOPE_NAMESPACE, ResultStore, validate_key
from repro.store.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    TIMEOUT,
    JobConflict,
    JobManager,
    QueueFull,
)
from repro.store.keys import scenario_fingerprint
from repro.store.memory import MemoryStore
from repro.version import __version__

logger = logging.getLogger("repro.store.serve")

#: Schema tag of the service-info and error payloads.  v3: observability —
#: ``/v1/metrics`` + ``/v1/jobs/<fp>/trace`` endpoints, healthz gained a
#: ``store`` occupancy block.  (v2 added the async job API.)
SERVE_SCHEMA = "repro.serve/v3"

#: Largest accepted POST body.  Scenario files are a few KB; anything close
#: to this is not a scenario, and an unbounded read would let one request
#: allocate arbitrary memory or park a handler thread.
MAX_BODY_BYTES = 8 * 1024 * 1024


def envelope_bytes(envelope: dict[str, Any]) -> bytes:
    """The canonical wire form of an envelope (stable across cold/warm)."""
    return (json.dumps(envelope, indent=2, sort_keys=True) + "\n").encode("utf-8")


def envelope_etag(body: bytes) -> str:
    """Strong ETag of an envelope's canonical bytes."""
    return '"' + hashlib.sha256(body).hexdigest() + '"'


def _valid_envelope(payload: Any) -> bool:
    """Whether a store read actually returned a scenario envelope (injected
    or on-disk corruption that slips past the backend's checks fails here)."""
    return (isinstance(payload, dict)
            and payload.get("schema") == SCENARIO_SCHEMA
            and payload.get("spec") == "scenario"
            and "result" in payload)


class ExperimentService:
    """The store-backed serving core the HTTP handler delegates to.

    Thread-safe and lock-free at this layer: envelope lookups hit the store
    concurrently and execution is owned by the :class:`JobManager`'s worker
    pool — no request ever holds a lock across a simulation.
    """

    def __init__(self, store: ResultStore | None = None, workers: int = 2,
                 engine_workers: int = 1, queue_depth: int = 16,
                 job_timeout: float = 300.0, max_attempts: int = 3,
                 injector: Any | None = None, tick: float = 0.05):
        self.store = store if store is not None else MemoryStore()
        self.manager = JobManager(
            store=self.store, workers=workers, engine_workers=engine_workers,
            queue_depth=queue_depth, job_timeout=job_timeout,
            max_attempts=max_attempts, tick=tick, injector=injector)

    def close(self) -> None:
        """Wind down the job manager (service lifetime, not per request)."""
        self.manager.close()

    # ------------------------------------------------------------ envelopes

    def prepare(self, scenario_data: Any) -> tuple[Scenario, str]:
        """Validate and fingerprint a scenario (ValueError → handler 400)."""
        scenario = parse_scenario(scenario_data)
        return scenario, scenario_fingerprint(scenario)

    def cached_envelope(self, fingerprint: str) -> dict[str, Any] | None:
        """The envelope for ``fingerprint`` — from the store if it holds a
        valid one, else the job manager's in-memory copy (covers degraded
        envelope writes), else ``None``."""
        validate_key(ENVELOPE_NAMESPACE, fingerprint)
        try:
            payload = self.store.get(ENVELOPE_NAMESPACE, fingerprint)
        except OSError:
            logger.warning("envelope read failed for %s; degrading",
                           fingerprint[:16], exc_info=True)
            payload = None
        if payload is not None and not _valid_envelope(payload):
            # The backend counted a hit for bytes that are not this
            # envelope; reclassify so the counters describe what was served.
            self.store.counters.add(hits=-1, misses=1)
            logger.warning("envelope %s is corrupt; degrading to recompute",
                           fingerprint[:16])
            payload = None
        if payload is not None:
            return payload
        return self.manager.envelope_for(fingerprint)

    # ----------------------------------------------------------------- jobs

    def submit_async(self, scenario: Scenario,
                     fingerprint: str) -> tuple[dict[str, Any], bool]:
        """Enqueue (single-flight); raises :class:`QueueFull` at depth."""
        return self.manager.submit(scenario, fingerprint)

    def wait(self, fingerprint: str,
             timeout: float | None = None) -> dict[str, Any] | None:
        return self.manager.wait(fingerprint, timeout=timeout)

    def job(self, fingerprint: str) -> dict[str, Any] | None:
        validate_key(ENVELOPE_NAMESPACE, fingerprint)
        return self.manager.get(fingerprint)

    def cancel(self, fingerprint: str) -> dict[str, Any]:
        validate_key(ENVELOPE_NAMESPACE, fingerprint)
        return self.manager.cancel(fingerprint)

    def events(self, fingerprint: str):
        # Heartbeats on: the SSE writer turns them into comment frames so a
        # dead client socket is detected within one heartbeat interval even
        # when the job emits no progress.
        return self.manager.events(fingerprint, yield_heartbeats=True)

    def trace(self, fingerprint: str) -> dict[str, Any] | None:
        """The completed job's span tree, or ``None`` when unavailable."""
        validate_key(ENVELOPE_NAMESPACE, fingerprint)
        return self.manager.trace_for(fingerprint)

    # ---------------------------------------------------------------- meta

    def refresh_gauges(self,
                       stats: dict[str, Any] | None = None) -> dict[str, Any]:
        """Push queue/worker/occupancy gauges into the metrics registry.

        Counters stream in as events happen; these few point-in-time values
        are instead sampled on every scrape and health probe so the registry
        never serves a stale depth.  Returns the store occupancy block.
        """
        stats = stats if stats is not None else self.manager.stats()
        live = self.store.live_stats()
        occupancy = {
            "entries": int(live.get("entries", 0)),
            "bytes": int(live.get("bytes", 0)),
        }
        obs_metrics.set_gauge("repro_jobs_queue_depth",
                              stats["queue"]["depth"])
        obs_metrics.set_gauge("repro_jobs_workers_alive",
                              stats["workers"]["alive"])
        obs_metrics.set_gauge("repro_jobs_running", stats["workers"]["busy"])
        obs_metrics.set_gauge("repro_store_entries", occupancy["entries"])
        obs_metrics.set_gauge("repro_store_bytes", occupancy["bytes"])
        return occupancy

    def metrics_text(self) -> str:
        """Prometheus text exposition of the process-wide registry."""
        self.refresh_gauges()
        return obs_metrics.render_prometheus()

    def healthz(self) -> tuple[bool, dict[str, Any]]:
        """``(healthy, payload)`` for the liveness probe: degraded (503)
        once no worker is alive to drain the queue."""
        stats = self.manager.stats()
        occupancy = self.refresh_gauges(stats)
        healthy = bool(stats["healthy"])
        return healthy, {
            "schema": SERVE_SCHEMA,
            "status": "ok" if healthy else "degraded",
            "version": __version__,
            "queue": stats["queue"],
            "workers": stats["workers"],
            "jobs": stats["jobs"],
            "store": occupancy,
        }

    def info(self) -> dict[str, Any]:
        stats = self.manager.stats()
        return {
            "schema": SERVE_SCHEMA,
            "service": "repro.serve",
            "version": __version__,
            "endpoints": {
                "GET /": "this document",
                "GET /healthz": "liveness probe: queue depth, worker liveness",
                "GET /v1/store/stats": "store counters and occupancy",
                "POST /v1/experiments":
                    "run a repro.scenario/v1 file: 200 on cache hit, "
                    "202 + job envelope otherwise (?wait=1 to block)",
                "GET /v1/experiments/<fingerprint>": "cached envelope; ETag/304",
                "GET /v1/jobs/<fingerprint>": "job state by fingerprint",
                "DELETE /v1/jobs/<fingerprint>": "cancel a queued job",
                "GET /v1/jobs/<fingerprint>/events": "SSE progress stream",
                "GET /v1/jobs/<fingerprint>/trace":
                    "completed job's span tree (repro.obstrace/v1)",
                "GET /v1/metrics": "Prometheus text exposition (0.0.4)",
            },
            "config": {
                "workers": self.manager.workers,
                "engine_workers": self.manager.engine_workers,
                "queue_depth": self.manager.queue_depth,
                "job_timeout": self.manager.job_timeout,
                "max_attempts": self.manager.max_attempts,
            },
            "store": self.store.live_stats(),
            "jobs": stats["jobs"],
            "runs": stats["completed"],
        }


def _route_template(path: str) -> str:
    """Collapse a request path to its route template for metric labels.

    Fingerprints are unbounded, so labelling by raw path would grow the
    registry without limit; unknown paths all share one ``<other>`` label
    for the same reason.
    """
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path.startswith("/v1/experiments/"):
        return "/v1/experiments/<fp>"
    if path.startswith("/v1/jobs/"):
        if path.endswith("/events"):
            return "/v1/jobs/<fp>/events"
        if path.endswith("/trace"):
            return "/v1/jobs/<fp>/trace"
        return "/v1/jobs/<fp>"
    known = ("/", "/v1", "/healthz", "/v1/store/stats", "/v1/metrics",
             "/v1/experiments")
    return path if path in known else "<other>"


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.info("%s %s", self.address_string(), format % args)

    # ------------------------------------------------------------- plumbing

    def send_response(self, code: int, message: str | None = None) -> None:
        # Remember the status for the request-metrics label; multiplexing
        # through send_response covers every reply path (JSON, envelope,
        # 304, SSE) without touching each one.
        self._obs_status = code
        super().send_response(code, message)

    @contextmanager
    def _observed(self, method: str) -> Iterator[None]:
        """Time one request and record it in the metrics registry."""
        self._obs_status = 0
        started = time.perf_counter()
        try:
            yield
        finally:
            route = _route_template(self.path)
            obs_metrics.observe("repro_http_request_seconds",
                                time.perf_counter() - started, route=route)
            obs_metrics.inc("repro_http_requests_total", method=method,
                            route=route,
                            status=str(getattr(self, "_obs_status", 0) or 0))

    def _send_json(self, status: int, payload: Any,
                   extra_headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         extra_headers: dict[str, str] | None = None) -> None:
        self._send_json(status, {"schema": SERVE_SCHEMA, "error": message},
                        extra_headers)

    def _send_envelope(self, fingerprint: str, envelope: dict[str, Any],
                       extra_headers: dict[str, str] | None = None,
                       conditional: bool = False) -> None:
        body = envelope_bytes(envelope)
        etag = envelope_etag(body)
        # RFC 9110 defines 304 for conditional GET/HEAD only; a POST always
        # gets the full envelope (with its Location/fingerprint headers).
        if conditional and self._etag_matches(etag):
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", etag)
        self.send_header("X-Repro-Fingerprint", fingerprint)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_job(self, status: int, payload: dict[str, Any]) -> None:
        fingerprint = payload["fingerprint"]
        body = dict(payload)
        body["links"] = {
            "self": f"/v1/jobs/{fingerprint}",
            "result": f"/v1/experiments/{fingerprint}",
            "events": f"/v1/jobs/{fingerprint}/events",
        }
        self._send_json(status, body, {
            "Location": f"/v1/jobs/{fingerprint}",
            "X-Repro-Fingerprint": fingerprint,
            "X-Repro-Job-State": payload["state"],
        })

    def _etag_matches(self, etag: str) -> bool:
        candidates = self.headers.get("If-None-Match")
        if not candidates:
            return False
        if candidates.strip() == "*":
            return True
        # RFC 9110 §13.1.2: If-None-Match uses weak comparison — a proxy may
        # have weakened our strong ETag (e.g. on-the-fly gzip), so strip the
        # W/ prefix before comparing.
        entries = [entry.strip() for entry in candidates.split(",")]
        return any(
            etag == (entry[2:] if entry.startswith("W/") else entry)
            for entry in entries
        )

    def _query(self) -> dict[str, list[str]]:
        return parse_qs(urlparse(self.path).query)

    # -------------------------------------------------------------- routing

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # Same catch-all as do_POST: a store-layer failure (read-only mount,
        # disk full) must come back as a JSON 500, not a dropped connection.
        with self._observed("GET"):
            try:
                self._route_get()
            except Exception:
                logger.exception("GET %s failed", self.path)
                try:
                    self._send_error_json(500,
                                          "internal error; see server log")
                except OSError:  # pragma: no cover - client already gone
                    pass

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/v1"):
            self._send_json(200, self.service.info())
        elif path == "/healthz":
            healthy, payload = self.service.healthz()
            self._send_json(200 if healthy else 503, payload)
        elif path == "/v1/store/stats":
            self._send_json(200, self.service.store.live_stats())
        elif path == "/v1/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path.startswith("/v1/experiments/"):
            fingerprint = path[len("/v1/experiments/"):]
            try:
                envelope = self.service.cached_envelope(fingerprint)
            except ValueError as error:
                self._send_error_json(400, str(error))
                return
            if envelope is None:
                self._send_error_json(
                    404, f"no cached envelope for fingerprint {fingerprint!r}")
                return
            self._send_envelope(fingerprint, envelope,
                                {"X-Repro-Cache": "hit"}, conditional=True)
        elif path.startswith("/v1/jobs/") and path.endswith("/events"):
            fingerprint = path[len("/v1/jobs/"):-len("/events")]
            self._stream_events(fingerprint)
        elif path.startswith("/v1/jobs/") and path.endswith("/trace"):
            fingerprint = path[len("/v1/jobs/"):-len("/trace")]
            try:
                payload = self.service.trace(fingerprint)
            except ValueError as error:
                self._send_error_json(400, str(error))
                return
            if payload is None:
                self._send_error_json(
                    404, f"no trace for job {fingerprint!r}")
                return
            self._send_json(200, payload,
                            {"X-Repro-Fingerprint": fingerprint})
        elif path.startswith("/v1/jobs/"):
            fingerprint = path[len("/v1/jobs/"):]
            try:
                payload = self.service.job(fingerprint)
            except ValueError as error:
                self._send_error_json(400, str(error))
                return
            if payload is None:
                self._send_error_json(404, f"unknown job {fingerprint!r}")
                return
            self._send_job(200, payload)
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 (http.server API)
        with self._observed("DELETE"):
            try:
                self._route_delete()
            except Exception:
                logger.exception("DELETE %s failed", self.path)
                try:
                    self._send_error_json(500,
                                          "internal error; see server log")
                except OSError:  # pragma: no cover - client already gone
                    pass

    def _route_delete(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith("/v1/jobs/"):
            self._send_error_json(404, f"unknown path {path!r}")
            return
        fingerprint = path[len("/v1/jobs/"):]
        try:
            payload = self.service.cancel(fingerprint)
        except ValueError as error:
            self._send_error_json(400, str(error))
        except KeyError:
            self._send_error_json(404, f"unknown job {fingerprint!r}")
        except JobConflict as error:
            self._send_error_json(409, str(error))
        else:
            self._send_job(200, payload)

    def _stream_events(self, fingerprint: str) -> None:
        try:
            known = self.service.job(fingerprint) is not None
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        if not known:
            self._send_error_json(404, f"unknown job {fingerprint!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # The stream ends the response body; close rather than risk a
        # desynced keep-alive if the client stops reading mid-stream.
        self.close_connection = True
        try:
            for payload in self.service.events(fingerprint):
                if payload is None:
                    # Heartbeat: an SSE comment frame.  Clients ignore it;
                    # writing it raises OSError once the client is gone, so
                    # an abandoned stream releases this handler thread
                    # within one heartbeat instead of idling until the job
                    # finishes.
                    self._write_chunk(b": heartbeat\n\n")
                    continue
                data = ("data: " + json.dumps(payload, sort_keys=True)
                        + "\n\n").encode("utf-8")
                self._write_chunk(data)
            self._write_chunk(b"")
        except OSError:  # pragma: no cover - client went away mid-stream
            pass

    def _write_chunk(self, data: bytes) -> None:
        if data:
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii")
                             + data + b"\r\n")
        else:
            self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        with self._observed("POST"):
            try:
                self._route_post()
            except Exception:
                logger.exception("POST %s failed", self.path)
                try:
                    self._send_error_json(500,
                                          "internal error; see server log")
                except OSError:  # pragma: no cover - client already gone
                    pass

    def _route_post(self) -> None:
        # Drain the declared body before any reply: with keep-alive (the
        # HTTP/1.1 default) unread body bytes would be parsed as the next
        # request line, desyncing the connection on every error response.
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            # Too large to drain; reply and drop the connection instead of
            # reading an attacker-chosen number of bytes into memory.
            self.close_connection = True
            self._send_error_json(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length) if length > 0 else b""
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/experiments":
            self._send_error_json(404, f"unknown path {path!r}")
            return
        if not raw:
            self._send_error_json(400, "request body must be a scenario JSON")
            return
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"request body is not JSON: {error}")
            return
        try:
            scenario, fingerprint = self.service.prepare(data)
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        envelope = self.service.cached_envelope(fingerprint)
        if envelope is not None:
            self._send_envelope(fingerprint, envelope, {
                "X-Repro-Cache": "hit",
                "Location": f"/v1/experiments/{fingerprint}",
            })
            return
        try:
            payload, _created = self.service.submit_async(scenario, fingerprint)
        except QueueFull as error:
            self._send_error_json(429, str(error), {
                "Retry-After": f"{max(1, round(error.retry_after))}",
            })
            return
        query = self._query()
        if query.get("wait", ["0"])[0] in ("", "0", "false"):
            self._send_job(202, payload)
            return
        try:
            wait_timeout = float(query["timeout"][0]) if "timeout" in query \
                else None
        except ValueError:
            self._send_error_json(400, "timeout must be a number of seconds")
            return
        payload = self.service.wait(fingerprint, timeout=wait_timeout) or payload
        state = payload["state"]
        if state == DONE:
            envelope = self.service.cached_envelope(fingerprint)
            if envelope is None:  # pragma: no cover - done implies envelope
                self._send_error_json(
                    500, "job completed but its envelope is unavailable")
                return
            self._send_envelope(fingerprint, envelope, {
                "X-Repro-Cache": "miss",
                "Location": f"/v1/experiments/{fingerprint}",
            })
        elif state == FAILED:
            self._send_error_json(
                500, f"scenario execution failed: {payload.get('error')}")
        elif state == TIMEOUT:
            self._send_error_json(
                504, f"job exceeded its deadline: {payload.get('error')}")
        elif state == CANCELLED:
            self._send_error_json(409, "job was cancelled while waiting")
        else:
            # Client-side wait timeout: hand back the live job envelope.
            self._send_job(202, payload)


def make_server(host: str = "127.0.0.1", port: int = 8765,
                store: ResultStore | None = None,
                workers: int = 2, engine_workers: int = 1,
                queue_depth: int = 16, job_timeout: float = 300.0,
                max_attempts: int = 3,
                injector: Any | None = None) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = ExperimentService(  # type: ignore[attr-defined]
        store=store, workers=workers, engine_workers=engine_workers,
        queue_depth=queue_depth, job_timeout=job_timeout,
        max_attempts=max_attempts, injector=injector)
    return server


def serve_forever(host: str = "127.0.0.1", port: int = 8765,
                  store: ResultStore | None = None, workers: int = 2,
                  engine_workers: int = 1, queue_depth: int = 16,
                  job_timeout: float = 300.0, max_attempts: int = 3,
                  injector: Any | None = None) -> None:
    """Run the server until interrupted (the ``repro serve`` entry point)."""
    server = make_server(host=host, port=port, store=store, workers=workers,
                         engine_workers=engine_workers,
                         queue_depth=queue_depth, job_timeout=job_timeout,
                         max_attempts=max_attempts, injector=injector)
    bound_host, bound_port = server.server_address[:2]
    backend = server.service.store.stats().get("backend")  # type: ignore[attr-defined]
    print(f"repro serve {__version__} listening on "
          f"http://{bound_host}:{bound_port} (store backend: {backend}, "
          f"workers: {workers}x{engine_workers}, queue: {queue_depth}, "
          f"job timeout: {job_timeout:g}s)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.service.close()  # type: ignore[attr-defined]
        server.server_close()
