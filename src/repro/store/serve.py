"""``repro serve`` — a stdlib HTTP front-end over the experiment store.

The server accepts scenario files (the ``repro.scenario/v1`` format) over
POST, executes them through the incremental runner (so overlapping scenarios
share job records), caches the resulting ``{"schema","spec","result"}``
envelope under the scenario's content-addressed fingerprint, and serves
cached envelopes with strong-ETag / ``304 Not Modified`` semantics.  Being
pure :mod:`http.server`, it needs no dependency the repository does not
already have.

Endpoints (all JSON)::

    GET  /                      service info: version, store stats, endpoints
    GET  /healthz               liveness probe
    GET  /v1/store/stats        live store counters and occupancy
    POST /v1/experiments        body = scenario JSON; runs (or serves) it
    GET  /v1/experiments/<fp>   cached envelope by fingerprint; ETag/304

POST responses carry ``X-Repro-Cache: hit|miss`` (whether the envelope was
served from the store or computed), ``Location`` (the envelope's canonical
GET URL) and the same ``ETag`` the GET would return, so a client can POST
once and revalidate cheaply forever after.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.engine.runner import EngineRunner
from repro.engine.scenario import (
    ScenarioResult,
    parse_scenario,
    scenario_envelope,
)
from repro.store.base import ENVELOPE_NAMESPACE, ResultStore, validate_key
from repro.store.keys import canonical_json, scenario_fingerprint
from repro.store.memory import MemoryStore
from repro.version import __version__

logger = logging.getLogger("repro.store.serve")

#: Schema tag of the service-info and error payloads.
SERVE_SCHEMA = "repro.serve/v1"

#: Largest accepted POST body.  Scenario files are a few KB; anything close
#: to this is not a scenario, and an unbounded read would let one request
#: allocate arbitrary memory or park a handler thread.
MAX_BODY_BYTES = 8 * 1024 * 1024


def envelope_bytes(envelope: dict[str, Any]) -> bytes:
    """The canonical wire form of an envelope (stable across cold/warm)."""
    return (json.dumps(envelope, indent=2, sort_keys=True) + "\n").encode("utf-8")


def envelope_etag(body: bytes) -> str:
    """Strong ETag of an envelope's canonical bytes."""
    return '"' + hashlib.sha256(body).hexdigest() + '"'


class ExperimentService:
    """The store-backed execution core the HTTP handler delegates to.

    Thread-safe: lookups hit the store concurrently, while actual experiment
    execution is serialized under one lock — the engine is process-parallel
    already, and one grid at a time keeps worker-pool usage predictable.
    """

    def __init__(self, store: ResultStore | None = None, workers: int = 1):
        if workers < 1:
            # Fail at startup; deferring to the first EngineRunner would
            # surface a server config error as a 400 on every valid POST.
            raise ValueError("workers must be >= 1")
        self.store = store if store is not None else MemoryStore()
        self.workers = workers
        self.runs = 0
        self._lock = threading.Lock()
        # One long-lived runner: executions are serialized under the lock, so
        # reusing it is safe and keeps PR 4's pool/shipped-trace reuse instead
        # of paying process-pool startup per POST.
        self._runner: EngineRunner | None = None

    def _ensure_runner(self) -> EngineRunner:
        if self._runner is None:
            self._runner = EngineRunner(workers=self.workers, store=self.store)
        return self._runner

    def close(self) -> None:
        """Shut the pooled runner down (service lifetime, not per request)."""
        if self._runner is not None:
            self._runner.close()
            self._runner = None

    def cached_envelope(self, fingerprint: str) -> dict[str, Any] | None:
        """The stored envelope for ``fingerprint``, or ``None``."""
        validate_key(ENVELOPE_NAMESPACE, fingerprint)
        return self.store.get(ENVELOPE_NAMESPACE, fingerprint)

    def submit(self, scenario_data: Any) -> tuple[str, dict[str, Any], bool]:
        """Validate, fingerprint and (if needed) execute a scenario.

        Returns ``(fingerprint, envelope, cache_hit)``.  Raises
        :class:`ValueError` for invalid scenario data — the handler maps that
        to a 400.
        """
        scenario = parse_scenario(scenario_data)
        fingerprint = scenario_fingerprint(scenario)
        # Fast path without the lock so cached scenarios serve during a long
        # run; probe with contains() first to keep the miss counter honest
        # (one logical lookup, not a pre-lock miss plus an in-lock miss).
        counted_miss = False
        if self.store.contains(ENVELOPE_NAMESPACE, fingerprint):
            envelope = self.store.get(ENVELOPE_NAMESPACE, fingerprint)
            if envelope is not None:
                return fingerprint, envelope, True
            # The probe said present but the read missed (evicted or corrupt
            # in between): that get() already counted this lookup's miss.
            counted_miss = True
        with self._lock:
            envelope = None
            if not counted_miss or self.store.contains(
                    ENVELOPE_NAMESPACE, fingerprint):
                envelope = self.store.get(ENVELOPE_NAMESPACE, fingerprint)
            if envelope is not None:
                return fingerprint, envelope, True
            try:
                # Known single-flight bottleneck: the execution lock is held
                # across the whole run, so concurrent distinct POSTs queue
                # behind one simulation (ROADMAP: replace with a job queue).
                frame = self._ensure_runner().run_jobs(scenario.jobs())  # repro-lint: disable=lock-order -- single-flight by design until the job-queue rework; cached scenarios bypass the lock above
            except Exception:
                # The pooled runner may now hold a broken ProcessPoolExecutor;
                # keeping it would 500 every later POST.  Drop it so the next
                # submission rebuilds a fresh pool.
                try:
                    self.close()
                except Exception:  # pragma: no cover - shutdown best-effort
                    self._runner = None
                raise
            envelope = scenario_envelope(
                ScenarioResult(scenario=scenario, frame=frame))
            try:
                self.store.put(ENVELOPE_NAMESPACE, fingerprint, envelope)
            except (OSError, TypeError, ValueError):
                # Disk full / permissions: the computed envelope is still
                # good — serve it uncached (later GETs will 404 until a
                # healthy POST can write it back).
                logger.warning("envelope write failed for %s; serving uncached",
                               fingerprint[:16], exc_info=True)
            self.runs += 1
            # Normalize like a store round-trip (tuples → lists, keys →
            # strings) so the POST response is byte-identical to every later
            # GET — without a counted get() that would log a cache hit for
            # an envelope this request just computed.
            return fingerprint, json.loads(canonical_json(envelope)), False

    def info(self) -> dict[str, Any]:
        return {
            "schema": SERVE_SCHEMA,
            "service": "repro.serve",
            "version": __version__,
            "endpoints": {
                "GET /": "this document",
                "GET /healthz": "liveness probe",
                "GET /v1/store/stats": "store counters and occupancy",
                "POST /v1/experiments": "run (or serve) a repro.scenario/v1 file",
                "GET /v1/experiments/<fingerprint>": "cached envelope; ETag/304",
            },
            "store": self.store.live_stats(),
            "runs": self.runs,
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        logger.info("%s %s", self.address_string(), format % args)

    # ------------------------------------------------------------- plumbing

    def _send_json(self, status: int, payload: Any,
                   extra_headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"schema": SERVE_SCHEMA, "error": message})

    def _send_envelope(self, fingerprint: str, envelope: dict[str, Any],
                       extra_headers: dict[str, str] | None = None,
                       conditional: bool = False) -> None:
        body = envelope_bytes(envelope)
        etag = envelope_etag(body)
        # RFC 9110 defines 304 for conditional GET/HEAD only; a POST always
        # gets the full envelope (with its Location/fingerprint headers).
        if conditional and self._etag_matches(etag):
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", etag)
        self.send_header("X-Repro-Fingerprint", fingerprint)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _etag_matches(self, etag: str) -> bool:
        candidates = self.headers.get("If-None-Match")
        if not candidates:
            return False
        if candidates.strip() == "*":
            return True
        # RFC 9110 §13.1.2: If-None-Match uses weak comparison — a proxy may
        # have weakened our strong ETag (e.g. on-the-fly gzip), so strip the
        # W/ prefix before comparing.
        entries = [entry.strip() for entry in candidates.split(",")]
        return any(
            etag == (entry[2:] if entry.startswith("W/") else entry)
            for entry in entries
        )

    # -------------------------------------------------------------- routing

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        # Same catch-all as do_POST: a store-layer failure (read-only mount,
        # disk full) must come back as a JSON 500, not a dropped connection.
        try:
            self._route_get()
        except Exception:
            logger.exception("GET %s failed", self.path)
            try:
                self._send_error_json(500, "internal error; see server log")
            except OSError:  # pragma: no cover - client already gone
                pass

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/v1"):
            self._send_json(200, self.service.info())
        elif path == "/healthz":
            self._send_json(200, {"status": "ok", "version": __version__})
        elif path == "/v1/store/stats":
            self._send_json(200, self.service.store.live_stats())
        elif path.startswith("/v1/experiments/"):
            fingerprint = path[len("/v1/experiments/"):]
            try:
                envelope = self.service.cached_envelope(fingerprint)
            except ValueError as error:
                self._send_error_json(400, str(error))
                return
            if envelope is None:
                self._send_error_json(
                    404, f"no cached envelope for fingerprint {fingerprint!r}")
                return
            self._send_envelope(fingerprint, envelope,
                                {"X-Repro-Cache": "hit"}, conditional=True)
        else:
            self._send_error_json(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        # Drain the declared body before any reply: with keep-alive (the
        # HTTP/1.1 default) unread body bytes would be parsed as the next
        # request line, desyncing the connection on every error response.
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            # Too large to drain; reply and drop the connection instead of
            # reading an attacker-chosen number of bytes into memory.
            self.close_connection = True
            self._send_error_json(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return
        raw = self.rfile.read(length) if length > 0 else b""
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/experiments":
            self._send_error_json(404, f"unknown path {path!r}")
            return
        if not raw:
            self._send_error_json(400, "request body must be a scenario JSON")
            return
        try:
            data = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"request body is not JSON: {error}")
            return
        try:
            fingerprint, envelope, cache_hit = self.service.submit(data)
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        except Exception:
            logger.exception("scenario execution failed")
            self._send_error_json(500, "scenario execution failed; see server log")
            return
        self._send_envelope(fingerprint, envelope, {
            "X-Repro-Cache": "hit" if cache_hit else "miss",
            "Location": f"/v1/experiments/{fingerprint}",
        })


def make_server(host: str = "127.0.0.1", port: int = 8765,
                store: ResultStore | None = None,
                workers: int = 1) -> ThreadingHTTPServer:
    """Build (but do not start) the threaded HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = ExperimentService(store=store, workers=workers)  # type: ignore[attr-defined]
    return server


def serve_forever(host: str = "127.0.0.1", port: int = 8765,
                  store: ResultStore | None = None, workers: int = 1) -> None:
    """Run the server until interrupted (the ``repro serve`` entry point)."""
    server = make_server(host=host, port=port, store=store, workers=workers)
    bound_host, bound_port = server.server_address[:2]
    backend = server.service.store.stats().get("backend")  # type: ignore[attr-defined]
    print(f"repro serve {__version__} listening on http://{bound_host}:{bound_port} "
          f"(store backend: {backend}, workers: {workers})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.service.close()  # type: ignore[attr-defined]
        server.server_close()
