"""Content-addressed experiment store: cache once, serve forever.

The engine's results are deterministic and bit-identical across backends,
worker counts and start methods, which makes every job's full input a valid
cache key.  This package turns that guarantee into a persistence layer:

* :mod:`repro.store.keys` — canonical fingerprints of jobs and scenarios,
* :mod:`repro.store.base` — the namespaced get/put store protocol,
* :mod:`repro.store.memory` — the in-memory layer (tests, default server),
* :mod:`repro.store.disk` — the on-disk sharded gzip-JSON store with an
  index manifest, atomic writes, an LRU byte cap and counters,
* :mod:`repro.store.serve` — the ``repro serve`` HTTP front-end (imported
  on demand; not re-exported here to keep ``repro.store`` import-light for
  the engine runner).

The engine consumes a store through
:class:`~repro.engine.runner.EngineRunner`'s ``store`` argument: jobs whose
fingerprints resolve are merged from the store, only the missing cells
execute, and fresh records are written back.  ``REPRO_STORE`` names a default
store directory; the CLI's ``--store DIR`` / ``--no-store`` override it.
"""

from __future__ import annotations

import os

from repro.store.base import (
    ENVELOPE_NAMESPACE,
    JOB_NAMESPACE,
    JOB_STATE_NAMESPACE,
    ResultStore,
    StoreCounters,
    StoreWrapper,
)
from repro.store.disk import RECORD_SCHEMA, STORE_SCHEMA, DiskStore
from repro.store.keys import (
    CACHEABLE_KINDS,
    RESULT_SCHEMA_VERSION,
    canonical_json,
    fingerprint_of,
    job_fingerprint,
    job_fingerprint_fields,
    scenario_fingerprint,
)
from repro.store.memory import MemoryStore

#: Environment variable naming the default store directory.
STORE_ENV = "REPRO_STORE"


def default_store_path() -> str | None:
    """The ``REPRO_STORE`` directory, or ``None`` when unset/empty."""
    return os.environ.get(STORE_ENV) or None


def open_store(path: str | None = None, enabled: bool = True,
               max_bytes: int | None = None) -> DiskStore | None:
    """Resolve the store an invocation should use.

    ``enabled=False`` (the CLI's ``--no-store``) always yields ``None``;
    otherwise an explicit ``path`` wins, then ``$REPRO_STORE``, then no store.
    """
    if not enabled:
        return None
    resolved = path or default_store_path()
    if not resolved:
        return None
    return DiskStore(resolved, max_bytes=max_bytes)


__all__ = [
    "CACHEABLE_KINDS",
    "ENVELOPE_NAMESPACE",
    "JOB_NAMESPACE",
    "JOB_STATE_NAMESPACE",
    "RECORD_SCHEMA",
    "RESULT_SCHEMA_VERSION",
    "STORE_ENV",
    "STORE_SCHEMA",
    "DiskStore",
    "MemoryStore",
    "ResultStore",
    "StoreCounters",
    "StoreWrapper",
    "canonical_json",
    "default_store_path",
    "fingerprint_of",
    "job_fingerprint",
    "job_fingerprint_fields",
    "open_store",
    "scenario_fingerprint",
]
