"""The async job subsystem behind ``repro serve``: queue, workers, deadlines.

PR 5's serving tier executed every POST under one global lock — correct, but
one slow STBPU rerandomization sweep blocked the whole service.  This module
replaces the lock with a supervised job pipeline:

* a **bounded FIFO queue** (:class:`QueueFull` carries a ``Retry-After`` hint
  when depth is exceeded),
* a **job state machine** ``queued → running → done | failed | timeout |
  cancelled``, persisted as content-addressed records (namespace
  ``jobstate``) so any replica sharing the store can answer any GET,
* **worker threads** each owning a private incremental
  :class:`~repro.engine.runner.EngineRunner`,
* a **watchdog** enforcing per-job deadlines (a wedged job is recorded
  ``timeout``, its worker abandoned and replaced so throughput survives),
* **bounded exponential-backoff retry** for transient failures (broken
  pools, store I/O) — jitter comes from a :class:`random.Random` seeded by
  the job's fingerprint, so chaos runs stay reproducible,
* **single-flight dedup**: concurrent submits of one scenario fingerprint
  share a single execution; nothing holds a lock across execution.

Execution is cooperative: the runner's ``abort_check`` hook raises between
streamed records once the deadline passes or the watchdog fires, so workers
come back promptly even from injected hangs (:mod:`repro.faults`).

Job *state* transitions are persisted; progress ticks are kept in memory
only (the SSE stream reads them live) to avoid one store write per cell.
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterator

from repro.engine.results import ResultFrame
from repro.engine.runner import EngineRunner
from repro.engine.scenario import (
    Scenario,
    ScenarioResult,
    scenario_envelope,
)
from repro.obs import metrics as obs_metrics
from repro.obs.spans import OBSTRACE_SCHEMA, SpanTracer
from repro.store.base import (
    ENVELOPE_NAMESPACE,
    JOB_STATE_NAMESPACE,
    OBSTRACE_NAMESPACE,
    ResultStore,
)
from repro.store.keys import canonical_json, scenario_fingerprint

logger = logging.getLogger(__name__)

#: Versioned schema tag of persisted job state records.
JOBS_SCHEMA = "repro.job/v1"

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})

#: Exception types worth a retry: the failure is in the machinery (store
#: I/O, a crashed worker pool), not in the scenario itself.
TRANSIENT_ERRORS = (OSError, BrokenProcessPool)

#: Terminal job entries kept in memory for fast GETs before pruning (their
#: persisted ``jobstate`` records outlive the pruning).
_TERMINAL_KEEP = 256


class QueueFull(RuntimeError):
    """The bounded job queue rejected a submit; retry after a beat."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"job queue is full ({depth} queued); retry after "
            f"{retry_after:g}s")
        self.depth = depth
        self.retry_after = retry_after


class JobConflict(RuntimeError):
    """The requested transition is invalid for the job's current state."""

    def __init__(self, fingerprint: str, state: str, message: str) -> None:
        super().__init__(message)
        self.fingerprint = fingerprint
        self.state = state


class _Expired(Exception):
    """Internal control flow: the job's deadline passed (or it was aborted)."""


class _Job:
    """Mutable job entry; every mutation happens under the manager's lock."""

    __slots__ = (
        "fingerprint", "scenario", "cells", "engine_jobs", "state",
        "attempts", "max_attempts", "timeout", "deadline", "not_before",
        "error", "progress_done", "progress_total", "version", "abort",
        "envelope", "trace",
    )

    def __init__(self, fingerprint: str, scenario: Scenario,
                 timeout: float, max_attempts: int) -> None:
        self.fingerprint = fingerprint
        self.scenario = scenario
        self.engine_jobs = scenario.jobs()
        self.cells = len(self.engine_jobs)
        self.state = QUEUED
        self.attempts = 0
        self.max_attempts = max_attempts
        self.timeout = timeout
        self.deadline = 0.0
        self.not_before = 0.0
        self.error: str | None = None
        self.progress_done = 0
        self.progress_total = self.cells
        self.version = 0
        self.abort = threading.Event()
        self.envelope: dict[str, Any] | None = None
        self.trace: dict[str, Any] | None = None


class _WorkerHandle:
    """Bookkeeping for one worker thread (mutated under the manager lock)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.thread: threading.Thread | None = None
        self.fingerprint: str | None = None
        self.retired = False
        self.abandoned_at: float | None = None


class JobManager:
    """Bounded queue + supervised worker pool executing scenarios.

    The manager's :class:`threading.Condition` guards all shared state and is
    *never* held across execution, store I/O or sleeps — workers copy what
    they need under the lock and run outside it.
    """

    def __init__(self, store: ResultStore, workers: int = 2,
                 engine_workers: int = 1, queue_depth: int = 16,
                 job_timeout: float = 300.0, max_attempts: int = 3,
                 backoff_base: float = 0.1, backoff_cap: float = 30.0,
                 retry_after: float = 1.0, tick: float = 0.05,
                 abandon_grace: float = 1.0, injector: Any | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if job_timeout <= 0:
            raise ValueError("job_timeout must be > 0")
        self.store = store
        self.workers = workers
        self.engine_workers = engine_workers
        self.queue_depth = queue_depth
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_after = retry_after
        self.tick = tick
        self.abandon_grace = abandon_grace
        self.injector = injector  # repro.faults.FaultInjector | None
        self._lock = threading.Condition()
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[str] = deque()
        self._delayed: list[str] = []
        self._terminal: deque[str] = deque()
        self._handles: list[_WorkerHandle] = []
        self._next_worker = 0
        self._completed = 0
        self._shutdown = False
        for _ in range(workers):
            self._spawn_worker()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="repro-job-watchdog", daemon=True)
        self._watchdog.start()

    # ------------------------------------------------------------ public API

    def submit(self, scenario: Scenario,
               fingerprint: str | None = None) -> tuple[dict[str, Any], bool]:
        """Enqueue ``scenario``; returns ``(job payload, newly created)``.

        Single-flight: a fingerprint already queued or running returns the
        live job instead of enqueueing a duplicate.  A terminal job is
        re-enqueued (its envelope may have been evicted).  Raises
        :class:`QueueFull` when the bounded queue is at depth.
        """
        if fingerprint is None:
            fingerprint = scenario_fingerprint(scenario)
        with self._lock:
            if self._shutdown:
                raise RuntimeError("job manager is shut down")
            job = self._jobs.get(fingerprint)
            if job is not None and job.state in (QUEUED, RUNNING):
                return self._payload(job), False
            if len(self._queue) + len(self._delayed) >= self.queue_depth:
                raise QueueFull(len(self._queue) + len(self._delayed),
                                self.retry_after)
            job = _Job(fingerprint, scenario, self.job_timeout,
                       self.max_attempts)
            self._jobs[fingerprint] = job
            self._queue.append(fingerprint)
            self._lock.notify_all()
            snapshot = self._payload(job)
        obs_metrics.inc("repro_jobs_submitted_total")
        self._persist(snapshot)
        return snapshot, True

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The job payload — live from memory, else the persisted record
        (so any replica sharing the store can answer for any job)."""
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None:
                return self._payload(job)
        try:
            payload = self.store.get(JOB_STATE_NAMESPACE, fingerprint)
        except OSError:
            logger.warning("job state read failed for %s", fingerprint[:16],
                           exc_info=True)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != JOBS_SCHEMA:
            return None
        return payload

    def cancel(self, fingerprint: str) -> dict[str, Any]:
        """Cancel a *queued* job; running/terminal jobs raise
        :class:`JobConflict` (execution is not preemptible mid-cell)."""
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is None:
                raise KeyError(f"unknown job {fingerprint!r}")
            if job.state != QUEUED:
                raise JobConflict(
                    fingerprint, job.state,
                    f"job is {job.state}; only queued jobs can be cancelled")
            job.state = CANCELLED
            job.error = "cancelled by client"
            job.version += 1
            if fingerprint in self._queue:
                self._queue.remove(fingerprint)
            if fingerprint in self._delayed:
                self._delayed.remove(fingerprint)
            self._remember_terminal(job)
            self._lock.notify_all()
            snapshot = self._payload(job)
        self._persist(snapshot)
        return snapshot

    def wait(self, fingerprint: str,
             timeout: float | None = None) -> dict[str, Any] | None:
        """Block until the job reaches a terminal state (or ``timeout``
        elapses); returns the latest payload either way."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                job = self._jobs.get(fingerprint)
                if job is None:
                    break
                if job.state in TERMINAL_STATES:
                    return self._payload(job)
                remaining = self.tick * 10
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return self._payload(job)
                self._lock.wait(remaining)
        return self.get(fingerprint)

    def events(self, fingerprint: str, heartbeat: float = 1.0,
               yield_heartbeats: bool = False,
               ) -> Iterator[dict[str, Any] | None]:
        """Yield a payload per observable change (progress tick or state
        transition), ending with the terminal payload.  The lock is released
        both while waiting and while the consumer writes to its socket.

        With ``yield_heartbeats``, an idle wait additionally yields ``None``
        every ``heartbeat`` seconds.  A socket-writing consumer (the SSE
        handler) turns those into comment frames, so a disconnected client
        is detected within one heartbeat instead of at the job's next
        version bump — no handler thread parked on a dead socket.
        """
        last_version = -1
        while True:
            with self._lock:
                job = self._jobs.get(fingerprint)
                if job is None:
                    return
                while job.version == last_version \
                        and job.state not in TERMINAL_STATES:
                    self._lock.wait(heartbeat)
                    if yield_heartbeats:
                        break
                if job.version == last_version \
                        and job.state not in TERMINAL_STATES:
                    payload = None
                else:
                    payload = self._payload(job)
                    last_version = job.version
            if payload is None:
                yield None
                continue
            yield payload
            if payload["state"] in TERMINAL_STATES:
                return

    def envelope_for(self, fingerprint: str) -> dict[str, Any] | None:
        """The in-memory envelope of a completed job, if still held —
        the fallback when the envelope's store write degraded."""
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None:
                return job.envelope
        return None

    def trace_for(self, fingerprint: str) -> dict[str, Any] | None:
        """The completed job's span tree — live from memory, else the
        persisted ``obstrace`` record (so any replica sharing the store can
        answer ``GET /v1/jobs/<fp>/trace`` for work it did not execute)."""
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None and job.trace is not None:
                return job.trace
        try:
            payload = self.store.get(OBSTRACE_NAMESPACE, fingerprint)
        except OSError:
            logger.warning("trace read failed for %s", fingerprint[:16],
                           exc_info=True)
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != OBSTRACE_SCHEMA:
            return None
        return payload

    def stats(self) -> dict[str, Any]:
        """Queue depth, worker liveness and state counts for ``/healthz``."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            alive = sum(
                1 for handle in self._handles
                if not handle.retired and handle.thread is not None
                and handle.thread.is_alive())
            return {
                "queue": {
                    "depth": len(self._queue) + len(self._delayed),
                    "capacity": self.queue_depth,
                },
                "workers": {
                    "configured": self.workers,
                    "alive": alive,
                    "busy": sum(1 for handle in self._handles
                                if handle.fingerprint is not None
                                and not handle.retired),
                },
                "jobs": states,
                "completed": self._completed,
                "healthy": alive > 0 and not self._shutdown,
            }

    def close(self, join_timeout: float = 2.0) -> None:
        """Stop accepting work and wind the threads down (best effort —
        workers and watchdog are daemons, a wedged worker cannot block exit)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._lock.notify_all()
            threads = [handle.thread for handle in self._handles
                       if handle.thread is not None]
            threads.append(self._watchdog)
        for thread in threads:
            thread.join(timeout=join_timeout)

    # ---------------------------------------------------------- worker side

    def _spawn_worker(self) -> None:
        with self._lock:
            handle = _WorkerHandle(self._next_worker)
            self._next_worker += 1
            handle.thread = threading.Thread(
                target=self._worker_loop, args=(handle,),
                name=f"repro-job-worker-{handle.index}", daemon=True)
            # Start before the watchdog can observe the handle, so a
            # registered-but-unstarted thread is never mistaken for dead.
            handle.thread.start()
            self._handles.append(handle)

    def _worker_loop(self, handle: _WorkerHandle) -> None:
        runner: EngineRunner | None = None
        try:
            while True:
                with self._lock:
                    while not self._queue and not self._shutdown \
                            and not handle.retired:
                        self._lock.wait(self.tick * 10)
                    if self._shutdown or handle.retired:
                        return
                    fingerprint = self._queue.popleft()
                    job = self._jobs.get(fingerprint)
                    if job is None or job.state != QUEUED:
                        continue
                    job.state = RUNNING
                    job.attempts += 1
                    job.deadline = time.monotonic() + job.timeout
                    job.abort.clear()
                    job.version += 1
                    handle.fingerprint = fingerprint
                    self._lock.notify_all()
                    snapshot = self._payload(job)
                self._persist(snapshot)
                runner, outcome = self._run_job(job, runner)
                self._finish(handle, job, outcome)
        finally:
            if runner is not None:
                runner.close()
            snapshot = None
            respawn = False
            with self._lock:
                if not handle.retired and not self._shutdown \
                        and handle.fingerprint is not None:
                    # Dying with work still assigned means the thread crashed
                    # out of execution (clean exits cleared the assignment):
                    # apply the retry policy and replace ourselves.
                    crashed = self._jobs.get(handle.fingerprint)
                    respawn = True
                    if crashed is not None and crashed.state == RUNNING:
                        crashed.error = "worker crashed mid-job"
                        if crashed.attempts < crashed.max_attempts:
                            crashed.state = QUEUED
                            crashed.not_before = (time.monotonic()
                                                  + self._backoff_delay(crashed))
                            self._delayed.append(crashed.fingerprint)
                        else:
                            crashed.state = FAILED
                            self._remember_terminal(crashed)
                        crashed.version += 1
                        snapshot = self._payload(crashed)
                handle.fingerprint = None
                handle.retired = True
                self._lock.notify_all()
            if snapshot is not None:
                self._persist(snapshot)
            if respawn:
                self._spawn_worker()

    def _run_job(self, job: _Job, runner: EngineRunner | None,
                 ) -> tuple[EngineRunner | None, tuple[str, Any]]:
        """Execute one attempt outside any lock; returns the (possibly
        replaced) worker-local runner and an outcome tag."""
        try:
            if self.injector is not None:
                self.injector.maybe_hang(
                    job.scenario.name,
                    should_abort=lambda: job.abort.is_set()
                    or time.monotonic() >= job.deadline)
            self._check_deadline(job)
            if runner is None:
                runner = EngineRunner(workers=self.engine_workers,
                                      store=self.store)
            # Span identity comes from the scenario fingerprint plus
            # structural attributes only — attempts, timestamps and worker
            # identity stay out, so a retried or replayed job produces the
            # same tree (durations aside).
            tracer = SpanTracer(job.fingerprint, name="scenario",
                                attrs={"scenario": job.scenario.name,
                                       "kind": job.scenario.kind,
                                       "cells": job.cells})
            records = [
                record for record in runner.iter_records(
                    job.engine_jobs,
                    progress=lambda done, total, record:
                        self._note_progress(job, done, total),
                    abort_check=lambda: self._check_deadline(job),
                    tracer=tracer)
            ]
            frame = ResultFrame(records)
            envelope = json.loads(canonical_json(scenario_envelope(
                ScenarioResult(scenario=job.scenario, frame=frame))))
            trace = json.loads(canonical_json(tracer.payload()))
            self._publish_envelope(job.fingerprint, envelope)
            self._publish_trace(job.fingerprint, trace)
            return runner, (DONE, (envelope, trace))
        except _Expired as error:
            # The runner may still have stale batches in flight; a fresh
            # pool for the next job is cheaper than reasoning about them.
            return self._discard_runner(runner), (TIMEOUT, str(error))
        except TRANSIENT_ERRORS as error:
            message = f"{type(error).__name__}: {error}"
            return self._discard_runner(runner), ("transient", message)
        except Exception as error:  # noqa: BLE001 — job boundary
            message = f"{type(error).__name__}: {error}"
            logger.warning("job %s failed: %s", job.fingerprint[:16], message)
            return self._discard_runner(runner), (FAILED, message)

    def _discard_runner(self, runner: EngineRunner | None) -> None:
        if runner is not None:
            try:
                runner.close()
            except Exception:  # noqa: BLE001 — already degrading
                logger.warning("runner close failed", exc_info=True)
        return None

    def _check_deadline(self, job: _Job) -> None:
        if job.abort.is_set() or time.monotonic() >= job.deadline:
            raise _Expired(f"deadline of {job.timeout:g}s exceeded")

    def _note_progress(self, job: _Job, done: int, total: int) -> None:
        with self._lock:
            job.progress_done = done
            job.progress_total = total
            job.version += 1
            self._lock.notify_all()

    def _publish_envelope(self, fingerprint: str,
                          envelope: dict[str, Any]) -> None:
        try:
            self.store.put(ENVELOPE_NAMESPACE, fingerprint, envelope)
        except OSError:
            # Degrade, don't fail: the envelope stays on the job in memory
            # and the serving layer falls back to it.
            logger.warning("envelope write failed for %s; serving from "
                           "memory", fingerprint[:16], exc_info=True)

    def _publish_trace(self, fingerprint: str,
                       trace: dict[str, Any]) -> None:
        try:
            self.store.put(OBSTRACE_NAMESPACE, fingerprint, trace)
        except OSError:
            # Same degradation as the envelope: the trace stays on the job
            # in memory and ``trace_for`` serves it from there.
            logger.warning("trace write failed for %s; serving from memory",
                           fingerprint[:16], exc_info=True)

    def _finish(self, handle: _WorkerHandle, job: _Job,
                outcome: tuple[str, Any]) -> None:
        status, value = outcome
        with self._lock:
            handle.fingerprint = None
            handle.abandoned_at = None
            elapsed = time.monotonic() - (job.deadline - job.timeout)
            if job.state == RUNNING:
                if status == DONE:
                    job.state = DONE
                    job.error = None
                    job.envelope, job.trace = value
                    self._completed += 1
                elif status == TIMEOUT:
                    job.state = TIMEOUT
                    job.error = value
                elif status == "transient" and job.attempts < job.max_attempts:
                    job.state = QUEUED
                    job.error = value
                    job.not_before = time.monotonic() + self._backoff_delay(job)
                    self._delayed.append(job.fingerprint)
                else:
                    job.state = FAILED
                    job.error = value
            elif status == DONE:
                # Late completion after a watchdog timeout: the verdict
                # stands, but the envelope is real — keep it reachable.
                job.envelope, job.trace = value
            if job.state in TERMINAL_STATES:
                self._remember_terminal(job)
            job.version += 1
            self._lock.notify_all()
            snapshot = self._payload(job)
        obs_metrics.observe("repro_jobs_seconds", elapsed,
                            state=snapshot["state"])
        self._persist(snapshot)

    def _backoff_delay(self, job: _Job) -> float:
        """Exponential backoff, jittered by the job's fingerprint-seeded RNG
        (deterministic given the fingerprint and attempt number)."""
        rng = random.Random(int(job.fingerprint[:8], 16) + job.attempts)
        delay = self.backoff_base * (2 ** (job.attempts - 1))
        return min(self.backoff_cap, delay * (1.0 + rng.random()))

    # ------------------------------------------------------------- watchdog

    def _watchdog_loop(self) -> None:
        while True:
            snapshots = self._watchdog_pass()
            for snapshot in snapshots:
                self._persist(snapshot)
            with self._lock:
                if self._shutdown:
                    return
            time.sleep(self.tick)

    def _watchdog_pass(self) -> list[dict[str, Any]]:
        """One supervision sweep: fire deadlines, replace dead or abandoned
        workers, release backoff-expired retries.  Returns state snapshots
        to persist (outside the lock)."""
        spawn = 0
        with self._lock:
            if self._shutdown:
                return []
            now = time.monotonic()
            snapshots: list[dict[str, Any]] = []
            for handle in self._handles:
                if handle.retired:
                    continue
                job = (self._jobs.get(handle.fingerprint)
                       if handle.fingerprint else None)
                if job is not None and job.state == RUNNING \
                        and now >= job.deadline:
                    job.state = TIMEOUT
                    job.error = f"deadline of {job.timeout:g}s exceeded"
                    job.abort.set()
                    job.version += 1
                    self._remember_terminal(job)
                    handle.abandoned_at = now
                    snapshots.append(self._payload(job))
                dead = handle.thread is not None and not handle.thread.is_alive()
                stuck = (handle.abandoned_at is not None
                         and now - handle.abandoned_at >= self.abandon_grace)
                if dead or stuck:
                    handle.retired = True
                    spawn += 1
                    if dead and handle.fingerprint:
                        crashed = self._jobs.get(handle.fingerprint)
                        handle.fingerprint = None
                        if crashed is not None and crashed.state == RUNNING:
                            crashed.error = "worker crashed mid-job"
                            if crashed.attempts < crashed.max_attempts:
                                crashed.state = QUEUED
                                crashed.not_before = (
                                    now + self._backoff_delay(crashed))
                                self._delayed.append(crashed.fingerprint)
                            else:
                                crashed.state = FAILED
                                self._remember_terminal(crashed)
                            crashed.version += 1
                            snapshots.append(self._payload(crashed))
            self._handles[:] = [
                handle for handle in self._handles
                if not handle.retired or handle.thread is None
                or handle.thread.is_alive()]
            released = False
            for fingerprint in list(self._delayed):
                job = self._jobs.get(fingerprint)
                if job is None or job.state != QUEUED:
                    self._delayed.remove(fingerprint)
                    continue
                if job.not_before <= now:
                    self._delayed.remove(fingerprint)
                    self._queue.append(fingerprint)
                    released = True
            if released or snapshots:
                self._lock.notify_all()
        for _ in range(spawn):
            self._spawn_worker()
        return snapshots

    # -------------------------------------------------------------- helpers

    def _payload(self, job: _Job) -> dict[str, Any]:
        """The job's JSON payload (caller holds the lock)."""
        return {
            "schema": JOBS_SCHEMA,
            "fingerprint": job.fingerprint,
            "state": job.state,
            "attempts": job.attempts,
            "max_attempts": job.max_attempts,
            "error": job.error,
            "scenario": job.scenario.name,
            "kind": job.scenario.kind,
            "cells": job.cells,
            "progress": {"done": job.progress_done,
                         "total": job.progress_total},
            "version": job.version,
        }

    def _remember_terminal(self, job: _Job) -> None:
        """Bound the in-memory registry: keep the most recent terminal jobs,
        prune the rest — their persisted records keep answering GETs.  The
        Condition wraps an RLock, so re-acquiring under a holding caller is
        free."""
        with self._lock:
            self._terminal.append(job.fingerprint)
            while len(self._terminal) > _TERMINAL_KEEP:
                stale = self._terminal.popleft()
                old = self._jobs.get(stale)
                if old is not None and old.state in TERMINAL_STATES:
                    del self._jobs[stale]

    def _persist(self, snapshot: dict[str, Any]) -> None:
        """Write one job state record (no lock held — store I/O may be slow
        or faulty; a failed write only costs cross-replica visibility)."""
        # Every persisted snapshot is a state transition (progress ticks are
        # never persisted), so this is the one bridge point for the
        # transition counters; a re-queue with attempts on the clock is by
        # definition a retry.
        obs_metrics.inc("repro_jobs_transitions_total",
                        state=snapshot["state"])
        if snapshot["state"] == QUEUED and snapshot["attempts"] > 0:
            obs_metrics.inc("repro_jobs_retries_total")
        try:
            self.store.put(JOB_STATE_NAMESPACE, snapshot["fingerprint"],
                           snapshot)
        except OSError:
            logger.warning("job state write failed for %s",
                           snapshot["fingerprint"][:16], exc_info=True)
