"""On-disk content-addressed store: sharded gzip-JSON records plus a manifest.

Layout (``repro.store/v1``)::

    <root>/manifest.json                      # index: schema, version, entries
    <root>/objects/<ns>/<ff>/<fingerprint>.json.gz

where ``<ns>`` is the namespace (``job``, ``envelope``) and ``<ff>`` the
first two hex digits of the fingerprint — a shard fan-out that keeps
directory listings short for million-record stores.

Every object is a gzip-compressed canonical-JSON *record envelope*::

    {"schema": "repro.store.record/v1", "namespace": ..., "fingerprint": ...,
     "version": "<repro version>", "payload": {...}}

Robustness properties, in order of importance:

* **The filesystem is the source of truth.**  Reads resolve straight to the
  object path; the manifest only accelerates ``stats`` and records the
  writer's schema/version.  A manifest that lags behind the objects (crashed
  writer, concurrent writers) degrades gracefully and is rebuilt by
  :meth:`DiskStore.verify`.
* **Writes are atomic.**  Records are written to a same-directory temp file
  and published with :func:`os.replace`; a reader never observes a partial
  record, and two processes racing on one fingerprint both publish the same
  (content-addressed, hence identical) bytes.
* **Corruption degrades to a recompute.**  Truncated gzip, malformed JSON,
  a record whose embedded fingerprint disagrees with its filename — every
  such read counts ``corrupt``, deletes the bad object, and reports a miss.
* **Size is bounded.**  With ``max_bytes`` set, least-recently-*used*
  records (by file mtime, refreshed on every hit) are evicted after each
  write; :meth:`gc` applies the same policy on demand.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
import time
import weakref
from typing import Any, Iterator

from repro.store.base import ResultStore, validate_key
from repro.store.keys import RESULT_SCHEMA_VERSION, canonical_json
from repro.version import __version__

#: Schema tag of the store directory layout (written into the manifest).
STORE_SCHEMA = "repro.store/v1"

#: Schema tag of each on-disk record envelope.
RECORD_SCHEMA = "repro.store.record/v1"

_MANIFEST_NAME = "manifest.json"
_OBJECTS_DIR = "objects"
_SUFFIX = ".json.gz"


def _record_matches(record: Any, namespace: str, fingerprint: str) -> bool:
    """Whether a decoded record envelope is the record its address claims.

    Shared by the read path and :meth:`DiskStore.verify` so both always agree
    on what counts as corrupt.
    """
    return (
        isinstance(record, dict)
        and record.get("schema") == RECORD_SCHEMA
        and record.get("namespace") == namespace
        and record.get("fingerprint") == fingerprint
        and "payload" in record
    )


def _write_manifest_file(root: str, entries: dict[str, int]) -> None:
    """Atomically publish ``manifest.json`` for ``root``."""
    manifest = {
        "schema": STORE_SCHEMA,
        "version": __version__,
        "result_schema": RESULT_SCHEMA_VERSION,
        "entries": {key: {"bytes": size}
                    for key, size in sorted(entries.items())},
    }
    descriptor, temp_path = tempfile.mkstemp(
        prefix="manifest.", suffix=".tmp", dir=root)
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, os.path.join(root, _MANIFEST_NAME))
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _flush_pending_manifest(root: str, index: dict[str, int],
                            pending: list[int]) -> None:
    """Finalizer: persist batched index updates when a store is collected."""
    if pending[0] > 0:
        try:
            _write_manifest_file(root, index)
        except OSError:  # pragma: no cover - shutdown best-effort
            pass
        pending[0] = 0

#: Stores with at most this many entries flush the manifest on every write
#: (exact index, friendly to tests and small caches); larger stores batch.
_MANIFEST_EXACT_LIMIT = 128

#: Pending writes a large store accumulates before flushing the manifest.
#: The filesystem is the source of truth for reads, so a lagging manifest
#: only staleness stats until the next flush/gc/verify.
_MANIFEST_FLUSH_BATCH = 64

#: A ``.tmp`` file older than this is a crash leftover gc may sweep; younger
#: ones may belong to a writer racing gc (held for milliseconds normally).
_TEMP_STALE_SECONDS = 60.0


class DiskStore(ResultStore):
    """Sharded on-disk store with atomic writes and an LRU byte cap.

    Args:
        root: Store directory (created on first use).
        max_bytes: Optional cap on total object bytes; exceeding it after a
            write evicts least-recently-used records until back under.
    """

    def __init__(self, root: str, max_bytes: int | None = None):
        super().__init__()
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.root = os.path.abspath(os.fspath(root))
        self.max_bytes = max_bytes
        os.makedirs(os.path.join(self.root, _OBJECTS_DIR), exist_ok=True)
        # In-memory index: the write-path view of `manifest.json`.  Writes
        # update it in O(1) and flush it amortized (see _flush_index), so a
        # cold n-job run costs O(n) manifest I/O, not O(n^2).  Reads never
        # consult it — the filesystem stays the source of truth — and
        # verify/gc rebuild it from a disk scan.
        if os.path.exists(self._manifest_path()):
            self._index = self._manifest_entries()
        else:
            self._index = self._scan_entries()
            self._write_manifest(self._index)
        self._index_bytes = sum(self._index.values())
        self._pending = [0]  # mutable holder so the finalizer sees updates
        # Index mutations happen from many threads under `repro serve` (a GET
        # dropping a corrupt object races a POST's write-back); reentrant
        # because the mutators flush the manifest, which iterates the index.
        self._index_lock = threading.RLock()
        self._finalizer = weakref.finalize(
            self, _flush_pending_manifest, self.root, self._index, self._pending)

    # ------------------------------------------------------------ raw access

    def object_path(self, namespace: str, fingerprint: str) -> str:
        """Absolute path of the (possibly absent) object for a key."""
        validate_key(namespace, fingerprint)
        return os.path.join(
            self.root, _OBJECTS_DIR, namespace, fingerprint[:2],
            fingerprint + _SUFFIX,
        )

    def _read(self, namespace: str, fingerprint: str) -> Any | None:
        path = self.object_path(namespace, fingerprint)
        try:
            with gzip.open(path, "rb") as handle:
                record = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, EOFError, ValueError, UnicodeDecodeError):
            # Truncated gzip stream, malformed JSON, half-written garbage:
            # drop the object so the recomputed record can take its place.
            self._drop_corrupt(namespace, fingerprint, path)
            return None
        if not _record_matches(record, namespace, fingerprint):
            # The record is readable but is not the record the index claims
            # (copied into the wrong slot, foreign schema, renamed by hand).
            self._drop_corrupt(namespace, fingerprint, path)
            return None
        self._touch(path)
        return record["payload"]

    def _write(self, namespace: str, fingerprint: str, payload: Any) -> None:
        path = self.object_path(namespace, fingerprint)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        record = {
            "schema": RECORD_SCHEMA,
            "namespace": namespace,
            "fingerprint": fingerprint,
            "version": __version__,
            "payload": payload,
        }
        # mtime=0 keeps the compressed bytes deterministic, so concurrent
        # writers of one fingerprint publish identical files.
        raw = gzip.compress(canonical_json(record).encode("utf-8"), mtime=0)
        try:
            self._publish(raw, path, directory, fingerprint)
        except OSError:
            # Transient OS errors (EINTR, ENOSPC freed by a concurrent GC,
            # NFS hiccups) deserve exactly one more attempt before the
            # caller degrades to uncached serving.
            self.counters.add(retried=1)
            self._publish(raw, path, directory, fingerprint)
        self._index_put(f"{namespace}/{fingerprint}", len(raw))
        if self.max_bytes is not None and self._index_bytes > self.max_bytes:
            # Evict with hysteresis (down to 90% of the cap): _evict_to walks
            # the objects tree for authoritative sizes/recency, so a store
            # sitting at its cap must not pay that walk on every single put.
            self._evict_to(max(1, (self.max_bytes * 9) // 10), keep=path)

    def _publish(self, raw: bytes, path: str, directory: str,
                 fingerprint: str) -> None:
        """One atomic write attempt: temp file in ``directory``, then rename."""
        descriptor, temp_path = tempfile.mkstemp(
            prefix=fingerprint[:8] + ".", suffix=".tmp", dir=directory)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(raw)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def contains(self, namespace: str, fingerprint: str) -> bool:
        return os.path.exists(self.object_path(namespace, fingerprint))

    # ------------------------------------------------------------- manifest

    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST_NAME)

    def _load_manifest(self) -> dict[str, Any]:
        try:
            with open(self._manifest_path(), encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            manifest = None
        if not isinstance(manifest, dict) or manifest.get("schema") != STORE_SCHEMA:
            manifest = {"schema": STORE_SCHEMA, "entries": {}}
        manifest.setdefault("entries", {})
        return manifest

    def _write_manifest(self, entries: dict[str, int]) -> None:
        _write_manifest_file(self.root, entries)

    def _manifest_entries(self) -> dict[str, int]:
        entries = {}
        for key, meta in self._load_manifest()["entries"].items():
            if isinstance(meta, dict) and isinstance(meta.get("bytes"), int):
                entries[key] = meta["bytes"]
        return entries

    def _index_put(self, key: str, size: int) -> None:
        with self._index_lock:
            self._index_bytes += size - self._index.get(key, 0)
            self._index[key] = size
            self._pending[0] += 1
            self._flush_index()

    def _index_remove(self, keys: Iterator[str] | list[str]) -> None:
        with self._index_lock:
            for key in keys:
                removed = self._index.pop(key, None)
                if removed is not None:
                    self._index_bytes -= removed
                    self._pending[0] += 1
            self._flush_index(force=True)

    def _index_replace(self, entries: dict[str, int]) -> None:
        with self._index_lock:
            self._index.clear()
            self._index.update(entries)
            self._index_bytes = sum(entries.values())
            self._pending[0] = 0
            self._write_manifest(self._index)

    def _flush_index(self, force: bool = False) -> None:
        """Write the manifest when exactness is cheap or the batch is due."""
        with self._index_lock:
            if self._pending[0] == 0:
                return
            if (force or len(self._index) <= _MANIFEST_EXACT_LIMIT
                    or self._pending[0] >= _MANIFEST_FLUSH_BATCH):
                self._write_manifest(self._index)
                self._pending[0] = 0

    # -------------------------------------------------------------- scanning

    def _scan_objects(self) -> list[tuple[str, str, str]]:
        """Every object on disk as ``(namespace, fingerprint, path)``."""
        objects = []
        objects_root = os.path.join(self.root, _OBJECTS_DIR)
        for directory, _, filenames in os.walk(objects_root):
            for filename in filenames:
                if not filename.endswith(_SUFFIX):
                    continue
                relative = os.path.relpath(
                    os.path.join(directory, filename), objects_root)
                parts = relative.split(os.sep)
                if len(parts) != 3:
                    continue
                namespace, _, _ = parts
                fingerprint = filename[: -len(_SUFFIX)]
                objects.append(
                    (namespace, fingerprint, os.path.join(directory, filename)))
        return sorted(objects)

    def _scan_entries(self) -> dict[str, int]:
        entries = {}
        for namespace, fingerprint, path in self._scan_objects():
            try:
                entries[f"{namespace}/{fingerprint}"] = os.path.getsize(path)
            except OSError:
                continue
        return entries

    # ------------------------------------------------------------ lifecycle

    def _touch(self, path: str) -> None:
        try:
            os.utime(path)  # refresh mtime: the LRU recency signal
        except OSError:
            pass

    def _drop_corrupt(self, namespace: str, fingerprint: str, path: str) -> None:
        self.counters.add(corrupt=1)
        try:
            os.unlink(path)
        except OSError:
            pass
        self._index_remove([f"{namespace}/{fingerprint}"])

    def _evict_to(self, max_bytes: int, keep: str | None = None) -> int:
        """Evict least-recently-used objects until total size fits.

        The walk's sizes are authoritative, so the in-memory index is
        resynced from it afterwards — drift from foreign writers can never
        leave ``_index_bytes`` stuck above the cap (which would re-trigger
        this walk on every put).
        """
        aged = []
        total = 0
        for namespace, fingerprint, path in self._scan_objects():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            total += stat.st_size
            aged.append((stat.st_mtime, namespace, fingerprint, path, stat.st_size))
        entries = {f"{namespace}/{fingerprint}": size
                   for _, namespace, fingerprint, _, size in aged}
        evicted = 0
        for _, namespace, fingerprint, path, size in sorted(aged):
            if total <= max_bytes:
                break
            if keep is not None and path == keep:
                continue  # never evict the record that triggered the sweep
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            del entries[f"{namespace}/{fingerprint}"]
        self.counters.add(evictions=evicted)
        self._index_replace(entries)
        return evicted

    def gc(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict LRU records down to ``max_bytes`` (default: the store cap)
        and sweep stray temp files; returns a summary.

        ``max_bytes=0`` empties the store deliberately; negative caps are
        rejected rather than silently behaving like 0.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        removed_temp = 0
        # Only sweep temp files old enough to be crash leftovers: a live
        # writer holds its .tmp for milliseconds between mkstemp and
        # os.replace, and unlinking it would make that replace fail.
        stale_before = time.time() - _TEMP_STALE_SECONDS
        for directory, _, filenames in os.walk(self.root):
            for filename in filenames:
                if not filename.endswith(".tmp"):
                    continue
                path = os.path.join(directory, filename)
                try:
                    if os.path.getmtime(path) >= stale_before:
                        continue
                    os.unlink(path)
                    removed_temp += 1
                except OSError:
                    pass
        limit = max_bytes if max_bytes is not None else self.max_bytes
        if limit is not None:
            # _evict_to's walk is authoritative and already resyncs the index.
            evicted = self._evict_to(limit)
        else:
            evicted = 0
            self._index_replace(self._scan_entries())
        return {
            "evicted": evicted,
            "temp_files_removed": removed_temp,
            **self._index_occupancy(),
        }

    def verify(self) -> list[str]:
        """Check every object and the manifest; heal what can be healed.

        Unreadable or mislabelled objects are deleted (counted ``corrupt``),
        manifest drift in either direction is reported, and the manifest is
        rebuilt from the surviving objects.  Returns human-readable issue
        strings (empty means the store was fully consistent).
        """
        issues: list[str] = []
        survivors: dict[str, int] = {}
        for namespace, fingerprint, path in self._scan_objects():
            key = f"{namespace}/{fingerprint}"
            try:
                with gzip.open(path, "rb") as handle:
                    record = json.loads(handle.read().decode("utf-8"))
            except (OSError, EOFError, ValueError, UnicodeDecodeError):
                issues.append(f"unreadable record {key}: removed")
                self.counters.add(corrupt=1)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if not _record_matches(record, namespace, fingerprint):
                issues.append(
                    f"record {key} does not match its address "
                    f"(schema={record.get('schema')!r}, "
                    f"fingerprint={str(record.get('fingerprint'))[:16]!r}): removed")
                self.counters.add(corrupt=1)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            try:
                survivors[key] = os.path.getsize(path)
            except OSError:
                continue
        manifest_keys = set(self._manifest_entries())
        for key in sorted(manifest_keys - set(survivors)):
            issues.append(f"manifest lists missing record {key}: dropped")
        for key in sorted(set(survivors) - manifest_keys):
            issues.append(f"record {key} was missing from the manifest: indexed")
        self._index_replace(survivors)
        return issues

    def keys(self, namespace: str):
        """Sorted fingerprints under ``namespace`` from a disk scan — the
        listing backend of ``repro obs top`` (offline use, not a hot path)."""
        return iter(sorted(
            fingerprint for found_namespace, fingerprint, _
            in self._scan_objects() if found_namespace == namespace))

    # ----------------------------------------------------------------- stats

    def _index_occupancy(self) -> dict[str, Any]:
        """Occupancy from the in-memory index (no disk walk) — for callers
        that just resynced it from an authoritative scan (gc/verify)."""
        with self._index_lock:
            keys = list(self._index)
            total = self._index_bytes
        namespaces: dict[str, int] = {}
        for key in keys:
            namespace = key.split("/", 1)[0]
            namespaces[namespace] = namespaces.get(namespace, 0) + 1
        return {
            "entries": len(keys),
            "bytes": total,
            "namespaces": dict(sorted(namespaces.items())),
        }

    def _occupancy(self) -> dict[str, Any]:
        namespaces: dict[str, int] = {}
        total = 0
        count = 0
        for namespace, _, path in self._scan_objects():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
            count += 1
            namespaces[namespace] = namespaces.get(namespace, 0) + 1
        return {
            "entries": count,
            "bytes": total,
            "namespaces": dict(sorted(namespaces.items())),
        }

    def stats(self) -> dict[str, Any]:
        return {
            "backend": "disk",
            "root": self.root,
            "max_bytes": self.max_bytes,
            **self._occupancy(),
            **self.counters.to_dict(),
        }

    def live_stats(self) -> dict[str, Any]:
        """Same shape as :meth:`stats` but from the in-memory index — no
        disk walk, so ``repro serve`` can answer it per request.  Occupancy
        may lag foreign writers until the next gc/verify resync."""
        return {
            "backend": "disk",
            "root": self.root,
            "max_bytes": self.max_bytes,
            **self._index_occupancy(),
            **self.counters.to_dict(),
        }
