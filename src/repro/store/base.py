"""The store protocol: namespaced get/put of JSON payloads with counters.

Stores are content-addressed key/value maps: a *namespace* (``"job"`` for
engine job records, ``"envelope"`` for whole-experiment envelopes) plus a
fingerprint (see :mod:`repro.store.keys`) addresses one JSON-serializable
payload.  Payloads are immutable once written — the fingerprint covers every
input that determines them, so two writers racing on the same key are by
construction writing identical content and "last write wins" is correct.

:class:`ResultStore` carries the shared counter bookkeeping; concrete
backends (:class:`~repro.store.memory.MemoryStore`,
:class:`~repro.store.disk.DiskStore`) implement the raw read/write.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs import metrics as obs_metrics

#: Namespace of cached engine job records.
JOB_NAMESPACE = "job"

#: Namespace of cached whole-experiment envelopes (``repro serve``).
ENVELOPE_NAMESPACE = "envelope"

#: Namespace of persisted job state records (``repro.store.jobs``) — written
#: on every state transition so any replica sharing the store can answer a
#: ``GET /v1/jobs/<fp>`` for work it did not execute itself.
JOB_STATE_NAMESPACE = "jobstate"

#: Namespace of persisted span trees (``repro.obs.spans``) — one per
#: completed job, so ``GET /v1/jobs/<fp>/trace`` works from any replica.
OBSTRACE_NAMESPACE = "obstrace"

_HEX_DIGITS = frozenset("0123456789abcdef")


def validate_key(namespace: str, fingerprint: str) -> None:
    """Reject keys that could escape the store's directory layout."""
    if not namespace or not namespace.isidentifier():
        raise ValueError(f"invalid store namespace {namespace!r}")
    if len(fingerprint) < 8 or not set(fingerprint) <= _HEX_DIGITS:
        raise ValueError(
            f"invalid fingerprint {fingerprint!r}: expected a lowercase hex "
            "digest of at least 8 characters"
        )


@dataclass(slots=True)
class StoreCounters:
    """Cumulative effectiveness counters of one store instance.

    Mutate via :meth:`add` — ``repro serve`` updates one instance from many
    handler threads, and bare ``+=`` would lose increments.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    retried: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)

    def add(self, **deltas: int) -> None:
        """Atomically apply ``counter=delta`` updates (all under one lock,
        so e.g. a hit reclassified as a miss is never observed half-done)."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)
        # Bridge into the process-wide registry, outside our lock (the
        # registry lock is a leaf; never nest it inside counter updates).
        # Deltas mirror verbatim, including the rare negative ones from a
        # hit reclassified as a miss — the registry aggregates every store
        # instance in the process into one series per counter.
        for name, delta in deltas.items():
            if delta:
                obs_metrics.inc(f"repro_store_{name}_total", delta)

    def to_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "retried": self.retried,
            }


class ResultStore:
    """Base class: counter bookkeeping around backend ``_read``/``_write``.

    Subclasses implement ``_read(namespace, fingerprint) -> payload | None``
    (returning ``None`` for both absence and unreadable content, after
    incrementing :attr:`counters.corrupt <StoreCounters.corrupt>` for the
    latter) and ``_write(namespace, fingerprint, payload)``.
    """

    def __init__(self) -> None:
        self.counters = StoreCounters()

    def get(self, namespace: str, fingerprint: str) -> Any | None:
        """The stored payload, or ``None`` on a miss (absence or corruption)."""
        validate_key(namespace, fingerprint)
        started = time.perf_counter()
        payload = self._read(namespace, fingerprint)
        obs_metrics.observe("repro_store_op_seconds",
                            time.perf_counter() - started, op="get")
        if payload is None:
            self.counters.add(misses=1)
            return None
        self.counters.add(hits=1)
        return payload

    def put(self, namespace: str, fingerprint: str, payload: Any) -> None:
        """Store ``payload`` under the key (atomic; last identical write wins)."""
        validate_key(namespace, fingerprint)
        started = time.perf_counter()
        self._write(namespace, fingerprint, payload)
        obs_metrics.observe("repro_store_op_seconds",
                            time.perf_counter() - started, op="put")
        self.counters.add(writes=1)

    def contains(self, namespace: str, fingerprint: str) -> bool:
        """Whether the key currently resolves (without counting a hit/miss)."""
        raise NotImplementedError

    def keys(self, namespace: str) -> Iterator[str]:
        """Iterate the fingerprints stored under ``namespace`` (sorted).

        Listing is an offline/CLI affordance (``repro obs top``), not a hot
        path — backends may scan storage to answer it.
        """
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Counters plus backend-specific occupancy (entries, bytes, ...)."""
        raise NotImplementedError

    def live_stats(self) -> dict[str, Any]:
        """Cheap per-request stats: backends whose :meth:`stats` scans
        storage override this with an in-memory view (see DiskStore)."""
        return self.stats()

    # -- backend hooks ------------------------------------------------------

    def _read(self, namespace: str, fingerprint: str) -> Any | None:
        raise NotImplementedError

    def _write(self, namespace: str, fingerprint: str, payload: Any) -> None:
        raise NotImplementedError


class StoreWrapper(ResultStore):
    """Transparent decorator base: forwards the full store protocol to an
    inner backend.

    Wrappers share the inner store's :class:`StoreCounters` instance so
    callers that reclassify counters (e.g. the runner demoting a corrupt hit
    to a miss) keep working unchanged through any stack of wrappers.
    Subclasses override the public methods they perturb —
    :class:`repro.faults.FaultyStore` is the canonical user.
    """

    def __init__(self, inner: ResultStore) -> None:
        self.inner = inner
        self.counters = inner.counters

    def get(self, namespace: str, fingerprint: str) -> Any | None:
        return self.inner.get(namespace, fingerprint)

    def put(self, namespace: str, fingerprint: str, payload: Any) -> None:
        self.inner.put(namespace, fingerprint, payload)

    def contains(self, namespace: str, fingerprint: str) -> bool:
        return self.inner.contains(namespace, fingerprint)

    def keys(self, namespace: str) -> Iterator[str]:
        return self.inner.keys(namespace)

    def stats(self) -> dict[str, Any]:
        return self.inner.stats()

    def live_stats(self) -> dict[str, Any]:
        return self.inner.live_stats()
