"""``python -m repro`` — command-line front end for the simulation engine.

Every subcommand, its ``--help`` text, and its options are generated from the
experiment registry (:mod:`repro.engine.spec`); there are no hand-written
per-experiment argparse blocks.  The canonical entry point is::

    python -m repro run figure3 --workers 4 --scale fast
    python -m repro run my_sweep.json --workers 8        # scenario file
    python -m repro run sweeps/rerand.toml

with every experiment name also kept as a top-level alias
(``python -m repro figure3`` ≡ ``python -m repro run figure3``).

Shared options: ``--workers`` (process-pool size; results are bit-identical
to serial runs), ``--backend`` (replay backend: ``reference``/``fast``/
``vector``; results are bit-identical across backends), ``--progress``
(stream per-job completions to stderr), ``--scale`` (fidelity preset),
``--seed``, ``--workload-limit``, ``--branches``/``--warmup`` (preset
overrides), ``--json PATH`` (dump the result inside a versioned
``{"schema", "spec", "result"}`` envelope), and ``--store DIR`` /
``--no-store`` (content-addressed result cache; defaults to ``$REPRO_STORE``
when set).  Beyond the registry-generated experiment subcommands there are
three hand-written ones: ``run`` (scenario files), ``store``
(``stats``/``gc``/``verify`` maintenance of a store directory) and ``serve``
(the HTTP front-end over the store).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Callable

from repro.engine import (
    SCALE_PRESETS,
    ExperimentSpec,
    format_scenario,
    list_experiments,
    load_builtin_specs,
    load_scenario,
    run_experiment,
    run_scenario,
    scenario_envelope,
)
from repro.lint.cli import add_lint_parser
from repro.obs.cli import add_obs_parser
from repro.sim import fastpath
from repro.store import DiskStore, default_store_path, open_store
from repro.version import __version__


def _emit(args: argparse.Namespace, text: str, payload: Any) -> None:
    # Write the JSON artifact before printing: if stdout is a pipe that closes
    # early (| head), the file must still exist.
    json_path = getattr(args, "json", None)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    print(text)
    if json_path:
        print(f"JSON written to {json_path}")


def _progress_printer() -> Callable:
    """Per-job completion lines on stderr (completion order, timings included)."""
    def progress(done: int, total: int, record) -> None:
        what = " ".join(part for part in (record.model, record.workload) if part)
        print(f"[{done}/{total}] {record.kind} {what} "
              f"({record.seconds * 1000.0:.0f} ms)", file=sys.stderr)
    return progress


def _apply_backend(args: argparse.Namespace) -> None:
    """Install the requested replay backend for this process (and, via fork,
    any worker processes the runner starts)."""
    backend = getattr(args, "backend", None)
    if backend:
        fastpath.set_backend(backend)


def _resolve_store(args: argparse.Namespace):
    """The result store this invocation should use (or ``None``).

    ``--no-store`` always wins; an explicit ``--store DIR`` beats the
    ``$REPRO_STORE`` default.
    """
    return open_store(
        path=getattr(args, "store", None),
        enabled=getattr(args, "use_store", True),
    )


def _report_store(store) -> None:
    """One cache-effectiveness line on stderr (stdout stays byte-identical)."""
    if store is None:
        return
    # Counters live in memory; stats() would os.walk the whole objects tree
    # just to print this one line.
    counters = store.counters
    print(
        f"store: {counters.hits} hits, {counters.misses} misses, "
        f"{counters.writes} writes ({getattr(store, 'root', 'memory')})",
        file=sys.stderr,
    )


def _cmd_experiment(args: argparse.Namespace) -> None:
    """Generic handler: every registered experiment dispatches through here."""
    _apply_backend(args)
    spec: ExperimentSpec = args.spec
    # argparse already applied the option defaults; run_experiment does the
    # one and only merged_params pass (seed defaulting, unknown-key checks).
    params = {option.dest: getattr(args, option.dest)
              for option in spec.cli_options()}
    if spec.note is not None:
        note = spec.note(params)
        if note:
            print(note, file=sys.stderr)
    progress = _progress_printer() if getattr(args, "progress", False) else None
    # Only grid experiments run through the incremental store; custom-execute
    # specs (bench, listings) manage their own execution.
    if spec.build_jobs is not None:
        store = _resolve_store(args)
    else:
        store = None
        if getattr(args, "store", None):
            print(f"note: {spec.name} does not run engine grids; "
                  "--store is ignored", file=sys.stderr)
    result = run_experiment(
        spec, params, workers=getattr(args, "workers", 1), progress=progress,
        store=store,
    )
    _emit(args, spec.formatter(result), spec.serialize(result))
    _report_store(store)
    if spec.epilogue is not None:
        line = spec.epilogue(result, params)
        if line:
            print(line)


def _cmd_run_scenario(args: argparse.Namespace) -> None:
    """``run <path>.json|.toml`` — execute a user-authored scenario file."""
    _apply_backend(args)
    target = args.target
    if not os.path.exists(target):
        raise ValueError(
            f"{target!r} is neither a registered experiment nor a scenario "
            f"file; experiments: {', '.join(spec.name for spec in list_experiments())}"
        )
    scenario = load_scenario(target)
    progress = _progress_printer() if args.progress else None
    store = _resolve_store(args)
    result = run_scenario(scenario, workers=args.workers, progress=progress,
                          store=store)
    _emit(args, format_scenario(result), scenario_envelope(result))
    _report_store(store)


def _require_store_dir(args: argparse.Namespace) -> DiskStore:
    path = args.store or default_store_path()
    if not path:
        raise ValueError(
            "no store directory: pass --store DIR or set $REPRO_STORE")
    # Maintenance commands inspect an *existing* store; auto-creating one for
    # a typo'd path would report a fresh empty store as consistent.
    if not os.path.isdir(path):
        raise ValueError(f"store directory {path!r} does not exist")
    return DiskStore(path)


def _cmd_store(args: argparse.Namespace) -> None:
    """``store stats|gc|verify`` — inspect and maintain a store directory."""
    store = _require_store_dir(args)
    if args.store_command == "stats":
        # Hit/miss counters live on the in-process instance; this fresh one
        # would report zeros, so print occupancy only.
        occupancy = {key: value for key, value in store.stats().items()
                     if key not in ("hits", "misses", "writes",
                                    "evictions", "corrupt")}
        print(json.dumps(occupancy, indent=2, sort_keys=True))
    elif args.store_command == "gc":
        summary = store.gc(max_bytes=args.max_bytes)
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:  # verify
        issues = store.verify()
        for issue in issues:
            print(issue)
        # verify() just rebuilt the index from its own authoritative walk;
        # stats() would pay a second full walk for the same numbers.
        occupancy = store.live_stats()
        print(f"verified {occupancy['entries']} records "
              f"({occupancy['bytes']} bytes): "
              f"{len(issues)} issue(s) found" + (", healed" if issues else ""))
        if issues:
            raise ValueError(f"store had {len(issues)} inconsistent record(s)")


def _cmd_serve(args: argparse.Namespace) -> None:
    """``serve`` — run the HTTP front-end over the (incremental) store."""
    from repro.faults import parse_fault_spec, plan_from_env, wrap_store
    from repro.store.memory import MemoryStore
    from repro.store.serve import serve_forever

    _apply_backend(args)
    store = open_store(path=args.store, enabled=args.use_store)
    plan = (parse_fault_spec(args.faults) if args.faults
            else plan_from_env())
    store, injector = wrap_store(store if store is not None else MemoryStore(),
                                 plan)
    serve_forever(host=args.host, port=args.port, store=store,
                  workers=args.workers, engine_workers=args.engine_workers,
                  queue_depth=args.queue_depth, job_timeout=args.job_timeout,
                  max_attempts=args.max_attempts, injector=injector)


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    """The result-store options every job-running command accepts."""
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="content-addressed result store directory "
                             "(default: $REPRO_STORE when set); cached jobs "
                             "merge from it, fresh jobs write back")
    parser.add_argument("--no-store", dest="use_store", action="store_false",
                        default=True,
                        help="ignore $REPRO_STORE and run without a cache")


def _add_runtime_options(parser: argparse.ArgumentParser,
                         progress_default: bool) -> None:
    """The shared execution options every job-running command accepts."""
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--backend", choices=list(fastpath.BACKENDS),
                        default=None,
                        help="replay backend (default: "
                             f"{fastpath.DEFAULT_BACKEND}, or "
                             "$REPRO_SIM_BACKEND); results are identical "
                             "across backends")
    parser.add_argument("--progress", action=argparse.BooleanOptionalAction,
                        default=progress_default,
                        help="stream per-job completions to stderr")
    _add_store_options(parser)


def _add_option(parser: argparse.ArgumentParser, option) -> None:
    kwargs: dict[str, Any] = {"default": option.default, "help": option.help}
    if option.action is not None:
        kwargs["action"] = option.action
    else:
        if option.type is not None:
            kwargs["type"] = option.type
        if option.nargs is not None:
            kwargs["nargs"] = option.nargs
        if option.choices is not None:
            kwargs["choices"] = list(option.choices)
        if option.metavar is not None:
            kwargs["metavar"] = option.metavar
    parser.add_argument(f"--{option.flag}", **kwargs)


def build_parser() -> argparse.ArgumentParser:
    load_builtin_specs()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables on the simulation engine.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run a registered experiment by name, or a .json/.toml scenario file",
    )
    run_parser.add_argument(
        "target",
        help="experiment name (aliases the top-level subcommand) or scenario path",
    )
    _add_runtime_options(run_parser, progress_default=True)
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also dump the result as JSON to PATH")
    run_parser.set_defaults(handler=_cmd_run_scenario)

    store_parser = subparsers.add_parser(
        "store", help="inspect and maintain a content-addressed result store")
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    for name, help_text in (
        ("stats", "print occupancy and counters as JSON"),
        ("gc", "evict LRU records down to a byte cap and sweep temp files"),
        ("verify", "check every record and the manifest; heal what can be healed"),
    ):
        sub = store_sub.add_parser(name, help=help_text)
        sub.add_argument("--store", metavar="DIR", default=None,
                         help="store directory (default: $REPRO_STORE)")
        if name == "gc":
            sub.add_argument("--max-bytes", type=int, default=None,
                             help="evict least-recently-used records until "
                                  "total size fits")
        sub.set_defaults(handler=_cmd_store)

    serve_parser = subparsers.add_parser(
        "serve",
        help="HTTP front-end: POST scenarios, GET cached envelopes (ETag/304)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="bind port (default: 8765; 0 = ephemeral)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="concurrent job workers (default: 2)")
    serve_parser.add_argument("--engine-workers", type=int, default=1,
                              help="engine worker processes per job")
    serve_parser.add_argument("--queue-depth", type=int, default=16,
                              help="bounded job queue depth; a full queue "
                                   "answers 429 + Retry-After (default: 16)")
    serve_parser.add_argument("--job-timeout", type=float, default=300.0,
                              help="per-job deadline in seconds; exceeding "
                                   "it records state 'timeout' (default: 300)")
    serve_parser.add_argument("--max-attempts", type=int, default=3,
                              help="attempts per job across transient "
                                   "failures, with backoff (default: 3)")
    serve_parser.add_argument("--faults", metavar="SPEC", default=None,
                              help="fault injection, e.g. 'error=0.1,"
                                   "latency=0.05,corrupt=0.1,seed=7' "
                                   "(default: $REPRO_FAULTS)")
    serve_parser.add_argument("--backend", choices=list(fastpath.BACKENDS),
                              default=None, help="replay backend override")
    _add_store_options(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    add_lint_parser(subparsers)
    add_obs_parser(subparsers)

    for spec in list_experiments():
        sub = subparsers.add_parser(spec.name, help=spec.description)
        if spec.takes_workers:
            _add_runtime_options(sub, progress_default=False)
        sub.add_argument("--json", metavar="PATH", default=None,
                         help="also dump the result as JSON to PATH")
        for option in spec.cli_options():
            _add_option(sub, option)
        sub.set_defaults(handler=_cmd_experiment, spec=spec)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    load_builtin_specs()
    # `run <experiment>` is an exact alias of the top-level subcommand: rewrite
    # before parsing so both routes share one parser (and one option set).
    if len(argv) >= 2 and argv[0] == "run" and any(
        spec.name == argv[1] for spec in list_experiments()
    ):
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], int | None] = args.handler
    try:
        # Handlers may return an exit code (``lint`` exits 1 on findings);
        # None means success.
        status = handler(args)
        # Flush inside the try: with buffered stdout the EPIPE from a closed
        # pipe (| head) would otherwise only surface at interpreter shutdown,
        # as "Exception ignored" noise and exit code 120.
        sys.stdout.flush()
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.  Point
        # stdout at devnull so the shutdown flush cannot hit EPIPE again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (KeyError, ValueError, OSError) as error:
        # Registry lookups and option validation raise with helpful messages;
        # present them as CLI errors rather than tracebacks.  str(KeyError)
        # wraps the message in quotes, so unwrap its single argument instead.
        message = (error.args[0]
                   if isinstance(error, KeyError) and error.args else str(error))
        print(f"error: {message}", file=sys.stderr)
        return 2
    return status if isinstance(status, int) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
