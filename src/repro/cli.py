"""``python -m repro`` — command-line front end for the simulation engine.

Every experiment driver is exposed as a subcommand declared on the engine::

    python -m repro figure3 --workers 4 --scale fast
    python -m repro figure6 --workload-limit 2 --json out.json
    python -m repro list-models

Shared options: ``--workers`` (process-pool size; results are bit-identical
to serial runs), ``--scale`` (fidelity preset), ``--seed``,
``--workload-limit``, ``--branches``/``--warmup`` (preset overrides) and
``--json PATH`` (dump the result dataclasses as JSON).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Callable

from repro.engine import ExperimentScale, list_models, resolve_workloads
from repro.trace.workloads import list_workloads

#: Fidelity presets selectable with ``--scale``.
SCALE_PRESETS: dict[str, ExperimentScale] = {
    "fast": ExperimentScale(branch_count=4_000, warmup_branches=400),
    "default": ExperimentScale(),
    "full": ExperimentScale(branch_count=60_000, warmup_branches=6_000),
}


def _build_scale(args: argparse.Namespace) -> ExperimentScale:
    preset = SCALE_PRESETS[args.scale]
    return ExperimentScale(
        branch_count=args.branches if args.branches is not None else preset.branch_count,
        warmup_branches=args.warmup if args.warmup is not None else preset.warmup_branches,
        seed=args.seed if args.seed is not None else preset.seed,
        workload_limit=args.workload_limit,
    )


def _emit(args: argparse.Namespace, text: str, result: Any) -> None:
    # Write the JSON artifact before printing: if stdout is a pipe that closes
    # early (| head), the file must still exist.
    json_path = getattr(args, "json", None)
    if json_path:
        if dataclasses.is_dataclass(result) and not isinstance(result, type):
            payload = dataclasses.asdict(result)
        else:
            payload = result
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    print(text)
    if json_path:
        print(f"JSON written to {json_path}")


def _cmd_figure2(args: argparse.Namespace) -> None:
    from repro.experiments.figure2 import format_figure2, run_figure2

    result = run_figure2(
        attempts_per_function=args.attempts,
        seed=args.seed if args.seed is not None else 0,
        workers=args.workers,
    )
    _emit(args, format_figure2(result), result)


def _cmd_figure3(args: argparse.Namespace) -> None:
    from repro.experiments.figure3 import format_figure3, run_figure3

    result = run_figure3(
        scale=_build_scale(args),
        workloads=resolve_workloads(args.workloads) if args.workloads else None,
        workers=args.workers,
    )
    _emit(args, format_figure3(result), result)


def _cmd_figure4(args: argparse.Namespace) -> None:
    from repro.experiments.figure4 import format_figure4, run_figure4

    result = run_figure4(
        scale=_build_scale(args),
        predictors=args.predictors if args.predictors else None,
        workers=args.workers,
    )
    _emit(args, format_figure4(result), result)


def _cmd_figure5(args: argparse.Namespace) -> None:
    from repro.experiments.figure5 import format_figure5, run_figure5

    result = run_figure5(
        scale=_build_scale(args),
        predictors=args.predictors if args.predictors else None,
        workers=args.workers,
    )
    _emit(args, format_figure5(result), result)


def _cmd_figure6(args: argparse.Namespace) -> None:
    from repro.experiments.figure6 import (
        DEFAULT_R_SWEEP,
        FIGURE6_DEFAULT_PAIR_LIMIT,
        format_figure6,
        run_figure6,
    )
    from repro.trace.workloads import GEM5_SMT_PAIRS

    r_values = tuple(args.r_values) if args.r_values else DEFAULT_R_SWEEP
    scale = _build_scale(args)
    if args.workload_limit is None:
        scale.workload_limit = FIGURE6_DEFAULT_PAIR_LIMIT
        print(
            f"note: averaging over the first {scale.workload_limit} of "
            f"{len(GEM5_SMT_PAIRS)} SMT pairs; pass --workload-limit "
            f"{len(GEM5_SMT_PAIRS)} for the full sweep",
            file=sys.stderr,
        )
    result = run_figure6(scale=scale, r_values=r_values, workers=args.workers)
    _emit(args, format_figure6(result), result)


def _cmd_attacks(args: argparse.Namespace) -> None:
    from repro.experiments.attacks import format_attack_matrix, run_attack_matrix

    result = run_attack_matrix(
        attacks=args.attacks if args.attacks else None,
        models=args.models if args.models else None,
        seed=args.seed if args.seed is not None else 7,
        workers=args.workers,
    )
    _emit(args, format_attack_matrix(result), result.frame.to_dict())


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.bench import DEFAULT_OUTPUT, format_bench, run_bench, write_bench

    output = args.output if args.output is not None else DEFAULT_OUTPUT
    report = run_bench(quick=args.quick, workers=args.workers)
    write_bench(report, output)
    _emit(args, format_bench(report), report.to_dict())
    print(f"bench artifact written to {output}")


def _cmd_tables(args: argparse.Namespace) -> None:
    from repro.experiments.tables import format_thresholds_payload, run_tables

    result = run_tables(workers=args.workers)
    lines = []
    for name in ("table1", "table2", "table4"):
        lines.append(f"{name}:")
        lines.append(json.dumps(result[name], indent=2, default=str))
    lines.append(format_thresholds_payload(result["thresholds"]))
    _emit(args, "\n".join(lines), result)


def _cmd_ablation(args: argparse.Namespace) -> None:
    from repro.experiments.ablation import format_ablation, run_ablation

    scale = _build_scale(args)
    result = run_ablation(scale=scale, workload=args.workload, workers=args.workers)
    _emit(args, format_ablation(result), result)


def _cmd_list_models(args: argparse.Namespace) -> None:
    _emit(args, "\n".join(list_models()), list_models())


def _cmd_list_workloads(args: argparse.Namespace) -> None:
    names = list_workloads(args.category)
    _emit(args, "\n".join(names), names)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables on the simulation engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Split the shared options so each subcommand only accepts the ones it
    # actually honours: `exec_options` for anything that runs engine jobs,
    # `sim_options` only for commands driving trace/cpu/smt grids.
    exec_options = argparse.ArgumentParser(add_help=False)
    exec_options.add_argument("--workers", type=int, default=1,
                              help="worker processes (default: 1, serial)")
    exec_options.add_argument("--json", metavar="PATH", default=None,
                              help="also dump the result as JSON to PATH")

    sim_options = argparse.ArgumentParser(add_help=False)
    sim_options.add_argument("--scale", choices=sorted(SCALE_PRESETS), default="default",
                             help="fidelity preset")
    sim_options.add_argument("--seed", type=int, default=None, help="grid seed override")
    sim_options.add_argument("--branches", type=int, default=None,
                             help="override the preset's measured branch count")
    sim_options.add_argument("--warmup", type=int, default=None,
                             help="override the preset's warm-up branch count")
    sim_options.add_argument("--workload-limit", type=int, default=None,
                             help="truncate the workload list to the first N entries")

    json_only = argparse.ArgumentParser(add_help=False)
    json_only.add_argument("--json", metavar="PATH", default=None,
                           help="also dump the result as JSON to PATH")

    figure2 = subparsers.add_parser("figure2", parents=[exec_options],
                                    help="R1 remapping-function construction")
    figure2.add_argument("--seed", type=int, default=None, help="generator seed")
    figure2.add_argument("--attempts", type=int, default=12,
                         help="generator attempts per remapping function")
    figure2.set_defaults(handler=_cmd_figure2)

    figure3 = subparsers.add_parser("figure3", parents=[exec_options, sim_options],
                                    help="OAE accuracy of the five protection models")
    figure3.add_argument("--workloads", nargs="*", default=None,
                         help="workload names or groups (spec, application, all)")
    figure3.set_defaults(handler=_cmd_figure3)

    for name, handler, description in (
        ("figure4", _cmd_figure4, "single-workload IPC evaluation of the ST designs"),
        ("figure5", _cmd_figure5, "SMT workload-pair evaluation of the ST designs"),
    ):
        sub = subparsers.add_parser(name, parents=[exec_options, sim_options],
                                    help=description)
        sub.add_argument("--predictors", nargs="*", default=None,
                         help="pair labels to keep (e.g. SKLCond TAGE_SC_L_8KB)")
        sub.set_defaults(handler=handler)

    figure6 = subparsers.add_parser("figure6", parents=[exec_options, sim_options],
                                    help="re-randomization aggressiveness sweep")
    figure6.add_argument("--r-values", nargs="*", type=float, default=None,
                         help="difficulty factors to sweep (default: paper sweep)")
    figure6.set_defaults(handler=_cmd_figure6)

    attacks = subparsers.add_parser(
        "attacks", parents=[exec_options],
        help="Table I attack matrix against selectable protection models")
    attacks.add_argument("--attacks", nargs="*", default=None,
                         help="attack names to run (default: all)")
    attacks.add_argument("--models", nargs="*", default=None,
                         help="registry model names to target "
                              "(default: baseline ST_SKLCond)")
    attacks.add_argument("--seed", type=int, default=None, help="matrix seed")
    attacks.set_defaults(handler=_cmd_attacks)

    bench = subparsers.add_parser(
        "bench", parents=[exec_options],
        help="time representative grids and write the BENCH_*.json artifact")
    bench.add_argument("--quick", action="store_true",
                       help="reduced-scale smoke run (used by CI)")
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="artifact path (default: BENCH_2.json)")
    bench.set_defaults(handler=_cmd_bench)

    tables = subparsers.add_parser("tables", parents=[exec_options],
                                   help="Tables I/II/IV and the threshold numbers")
    tables.set_defaults(handler=_cmd_tables)

    ablation = subparsers.add_parser("ablation", parents=[exec_options, sim_options],
                                     help="STBPU design-choice ablation study")
    ablation.add_argument("--workload", default="505.mcf",
                          help="workload used for the accuracy series")
    ablation.set_defaults(handler=_cmd_ablation)

    list_models_parser = subparsers.add_parser(
        "list-models", parents=[json_only], help="print the model registry")
    list_models_parser.set_defaults(handler=_cmd_list_models)

    list_workloads_parser = subparsers.add_parser(
        "list-workloads", parents=[json_only], help="print the workload registry")
    list_workloads_parser.add_argument("--category", choices=("spec", "application"),
                                       default=None)
    list_workloads_parser.set_defaults(handler=_cmd_list_workloads)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], None] = args.handler
    try:
        handler(args)
        # Flush inside the try: with buffered stdout the EPIPE from a closed
        # pipe (| head) would otherwise only surface at interpreter shutdown,
        # as "Exception ignored" noise and exit code 120.
        sys.stdout.flush()
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.  Point
        # stdout at devnull so the shutdown flush cannot hit EPIPE again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (KeyError, ValueError, OSError) as error:
        # Registry lookups and option validation raise with helpful messages;
        # present them as CLI errors rather than tracebacks.  str(KeyError)
        # wraps the message in quotes, so unwrap its single argument instead.
        message = (error.args[0]
                   if isinstance(error, KeyError) and error.args else str(error))
        print(f"error: {message}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
