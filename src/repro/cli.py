"""``python -m repro`` — command-line front end for the simulation engine.

Every subcommand, its ``--help`` text, and its options are generated from the
experiment registry (:mod:`repro.engine.spec`); there are no hand-written
per-experiment argparse blocks.  The canonical entry point is::

    python -m repro run figure3 --workers 4 --scale fast
    python -m repro run my_sweep.json --workers 8        # scenario file
    python -m repro run sweeps/rerand.toml

with every experiment name also kept as a top-level alias
(``python -m repro figure3`` ≡ ``python -m repro run figure3``).

Shared options: ``--workers`` (process-pool size; results are bit-identical
to serial runs), ``--backend`` (replay backend: ``reference``/``fast``/
``vector``; results are bit-identical across backends), ``--progress``
(stream per-job completions to stderr), ``--scale`` (fidelity preset),
``--seed``, ``--workload-limit``, ``--branches``/``--warmup`` (preset
overrides) and ``--json PATH`` (dump the result inside a versioned
``{"schema", "spec", "result"}`` envelope).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Callable

from repro.engine import (
    SCALE_PRESETS,
    ExperimentSpec,
    format_scenario,
    list_experiments,
    load_builtin_specs,
    load_scenario,
    run_experiment,
    run_scenario,
    scenario_envelope,
)
from repro.sim import fastpath


def _emit(args: argparse.Namespace, text: str, payload: Any) -> None:
    # Write the JSON artifact before printing: if stdout is a pipe that closes
    # early (| head), the file must still exist.
    json_path = getattr(args, "json", None)
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
    print(text)
    if json_path:
        print(f"JSON written to {json_path}")


def _progress_printer() -> Callable:
    """Per-job completion lines on stderr (completion order, timings included)."""
    def progress(done: int, total: int, record) -> None:
        what = " ".join(part for part in (record.model, record.workload) if part)
        print(f"[{done}/{total}] {record.kind} {what} "
              f"({record.seconds * 1000.0:.0f} ms)", file=sys.stderr)
    return progress


def _apply_backend(args: argparse.Namespace) -> None:
    """Install the requested replay backend for this process (and, via fork,
    any worker processes the runner starts)."""
    backend = getattr(args, "backend", None)
    if backend:
        fastpath.set_backend(backend)


def _cmd_experiment(args: argparse.Namespace) -> None:
    """Generic handler: every registered experiment dispatches through here."""
    _apply_backend(args)
    spec: ExperimentSpec = args.spec
    # argparse already applied the option defaults; run_experiment does the
    # one and only merged_params pass (seed defaulting, unknown-key checks).
    params = {option.dest: getattr(args, option.dest)
              for option in spec.cli_options()}
    if spec.note is not None:
        note = spec.note(params)
        if note:
            print(note, file=sys.stderr)
    progress = _progress_printer() if getattr(args, "progress", False) else None
    result = run_experiment(
        spec, params, workers=getattr(args, "workers", 1), progress=progress
    )
    _emit(args, spec.formatter(result), spec.serialize(result))
    if spec.epilogue is not None:
        line = spec.epilogue(result, params)
        if line:
            print(line)


def _cmd_run_scenario(args: argparse.Namespace) -> None:
    """``run <path>.json|.toml`` — execute a user-authored scenario file."""
    _apply_backend(args)
    target = args.target
    if not os.path.exists(target):
        raise ValueError(
            f"{target!r} is neither a registered experiment nor a scenario "
            f"file; experiments: {', '.join(spec.name for spec in list_experiments())}"
        )
    scenario = load_scenario(target)
    progress = _progress_printer() if args.progress else None
    result = run_scenario(scenario, workers=args.workers, progress=progress)
    _emit(args, format_scenario(result), scenario_envelope(result))


def _add_runtime_options(parser: argparse.ArgumentParser,
                         progress_default: bool) -> None:
    """The shared execution options every job-running command accepts."""
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--backend", choices=list(fastpath.BACKENDS),
                        default=None,
                        help="replay backend (default: "
                             f"{fastpath.DEFAULT_BACKEND}, or "
                             "$REPRO_SIM_BACKEND); results are identical "
                             "across backends")
    parser.add_argument("--progress", action=argparse.BooleanOptionalAction,
                        default=progress_default,
                        help="stream per-job completions to stderr")


def _add_option(parser: argparse.ArgumentParser, option) -> None:
    kwargs: dict[str, Any] = {"default": option.default, "help": option.help}
    if option.action is not None:
        kwargs["action"] = option.action
    else:
        if option.type is not None:
            kwargs["type"] = option.type
        if option.nargs is not None:
            kwargs["nargs"] = option.nargs
        if option.choices is not None:
            kwargs["choices"] = list(option.choices)
        if option.metavar is not None:
            kwargs["metavar"] = option.metavar
    parser.add_argument(f"--{option.flag}", **kwargs)


def build_parser() -> argparse.ArgumentParser:
    load_builtin_specs()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables on the simulation engine.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="run a registered experiment by name, or a .json/.toml scenario file",
    )
    run_parser.add_argument(
        "target",
        help="experiment name (aliases the top-level subcommand) or scenario path",
    )
    _add_runtime_options(run_parser, progress_default=True)
    run_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also dump the result as JSON to PATH")
    run_parser.set_defaults(handler=_cmd_run_scenario)

    for spec in list_experiments():
        sub = subparsers.add_parser(spec.name, help=spec.description)
        if spec.takes_workers:
            _add_runtime_options(sub, progress_default=False)
        sub.add_argument("--json", metavar="PATH", default=None,
                         help="also dump the result as JSON to PATH")
        for option in spec.cli_options():
            _add_option(sub, option)
        sub.set_defaults(handler=_cmd_experiment, spec=spec)

    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    load_builtin_specs()
    # `run <experiment>` is an exact alias of the top-level subcommand: rewrite
    # before parsing so both routes share one parser (and one option set).
    if len(argv) >= 2 and argv[0] == "run" and any(
        spec.name == argv[1] for spec in list_experiments()
    ):
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    handler: Callable[[argparse.Namespace], None] = args.handler
    try:
        handler(args)
        # Flush inside the try: with buffered stdout the EPIPE from a closed
        # pipe (| head) would otherwise only surface at interpreter shutdown,
        # as "Exception ignored" noise and exit code 120.
        sys.stdout.flush()
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.  Point
        # stdout at devnull so the shutdown flush cannot hit EPIPE again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (KeyError, ValueError, OSError) as error:
        # Registry lookups and option validation raise with helpful messages;
        # present them as CLI errors rather than tracebacks.  str(KeyError)
        # wraps the message in quotes, so unwrap its single argument instead.
        message = (error.args[0]
                   if isinstance(error, KeyError) and error.args else str(error))
        print(f"error: {message}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
