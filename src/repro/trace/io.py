"""Trace serialization.

Traces are stored as newline-delimited JSON so they can be inspected with
standard tools and diffed between runs.  The format intentionally mirrors the
information Intel PT decoding would provide: one object per branch or event.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.branch import (
    BranchRecord,
    BranchType,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
)


def _branch_to_dict(record: BranchRecord) -> dict:
    return {
        "kind": "branch",
        "ip": record.ip,
        "target": record.target,
        "taken": record.taken,
        "type": record.branch_type.value,
        "context": record.context_id,
        "mode": record.mode.value,
    }


def _event_to_dict(event: TraceEvent) -> dict:
    return {"kind": "event", "event": event.kind.value, "context": event.context_id}


def write_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as newline-delimited JSON.

    The first line is a header object with the trace name and item count so
    readers can validate completeness.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {"kind": "header", "name": trace.name, "items": len(trace)}
        handle.write(json.dumps(header) + "\n")
        for item in trace:
            if isinstance(item, BranchRecord):
                handle.write(json.dumps(_branch_to_dict(item)) + "\n")
            else:
                handle.write(json.dumps(_event_to_dict(item)) + "\n")


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`.

    Raises:
        ValueError: If the file is missing its header, contains unknown record
            kinds, or the item count does not match the header.
    """
    path = Path(path)
    trace: Trace | None = None
    expected_items = 0
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("kind")
            if line_number == 0:
                if kind != "header":
                    raise ValueError(f"{path}: first line must be a header, got {kind!r}")
                trace = Trace(name=payload.get("name", "trace"))
                expected_items = int(payload.get("items", 0))
                continue
            if trace is None:
                raise ValueError(f"{path}: missing header line")
            if kind == "branch":
                trace.append(
                    BranchRecord(
                        ip=int(payload["ip"]),
                        target=int(payload["target"]),
                        taken=bool(payload["taken"]),
                        branch_type=BranchType(payload["type"]),
                        context_id=int(payload["context"]),
                        mode=PrivilegeMode(payload["mode"]),
                    )
                )
            elif kind == "event":
                trace.append(
                    TraceEvent(EventKind(payload["event"]), context_id=int(payload["context"]))
                )
            else:
                raise ValueError(f"{path}:{line_number + 1}: unknown record kind {kind!r}")
    if trace is None:
        raise ValueError(f"{path}: empty trace file")
    if expected_items and len(trace) != expected_items:
        raise ValueError(
            f"{path}: header declares {expected_items} items but file contains {len(trace)}"
        )
    return trace
