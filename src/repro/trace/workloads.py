"""Workload profiles for the synthetic trace generator.

The paper evaluates STBPU on Intel PT traces captured from 23 SPEC CPU 2017
benchmarks and 12 application scenarios (Apache prefork with different client
counts, Chrome running browser benchmarks, MySQL with different connection
counts, and OBS Studio).  We cannot redistribute those captures, so each
workload is described here by a :class:`WorkloadProfile` — a compact
statistical characterisation that the generator in
:mod:`repro.trace.synthetic` expands into a deterministic branch stream.

The profile fields are chosen so they control exactly the properties that the
evaluated protection schemes are sensitive to:

* the number of static branch sites (pressure on BTB/PHT capacity),
* the conditional/indirect/call/return mix,
* how biased and how pattern-structured conditional branches are (baseline
  prediction accuracy),
* how many dynamic targets indirect branches have (indirect predictor and
  BTB mode-2 pressure),
* how often context switches, system calls and interrupts occur (cost of
  flushing-based protections and of ST reloads), and
* how many co-resident software contexts share the core and whether they run
  the same program image (benefit of shared history, which flushing destroys).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Statistical description of one workload used to synthesise a trace.

    Attributes:
        name: Workload identifier, matching the labels in the paper's figures.
        category: ``"spec"`` or ``"application"``.
        static_conditional_sites: Number of distinct conditional-branch sites.
        static_indirect_sites: Number of distinct indirect jump/call sites.
        static_call_sites: Number of distinct direct call sites (functions).
        static_direct_sites: Number of distinct unconditional direct jumps.
        conditional_fraction: Fraction of dynamic branches that are conditional.
        indirect_fraction: Fraction of dynamic branches that are indirect
            jumps/calls (excluding returns).
        call_fraction: Fraction of dynamic branches that are calls
            (direct or indirect); each call eventually produces a return.
        biased_site_fraction: Fraction of conditional sites that are strongly
            biased (taken or not-taken ~97% of the time).
        patterned_site_fraction: Fraction of conditional sites that follow a
            short repeating pattern (loop exits, alternations) which good
            history-based predictors learn perfectly.
        random_site_entropy: Taken-probability deviation from 0.5 for the
            remaining "hard" sites (0.0 = pure coin flip, 0.45 = mildly hard).
        indirect_targets_mean: Average number of distinct targets per indirect
            site (1 = monomorphic, larger = megamorphic).
        indirect_history_correlated: Whether an indirect site's target is
            determined by recent branch history (predictable with BHB) or
            close to random.
        call_depth_mean: Mean call-stack depth; depths beyond the 16-entry RSB
            exercise the underflow fall-back path.
        context_switch_interval: Mean number of branches between context
            switches on this core (0 disables context switches).
        syscall_interval: Mean number of branches between kernel entries
            (0 disables mode switches).
        kernel_branch_burst: Mean number of kernel branches executed per
            kernel entry.
        interrupt_interval: Mean number of branches between asynchronous
            interrupts (0 disables).
        co_resident_contexts: Number of distinct software contexts
            time-multiplexed on the core in this capture.
        shared_program_image: Whether the co-resident contexts execute the same
            code (e.g. Apache prefork workers), so that BPU state accumulated
            by one is useful to the others.
        branch_count: Default number of dynamic branch records to generate.
    """

    name: str
    category: str
    static_conditional_sites: int
    static_indirect_sites: int
    static_call_sites: int
    static_direct_sites: int
    conditional_fraction: float
    indirect_fraction: float
    call_fraction: float
    biased_site_fraction: float
    patterned_site_fraction: float
    random_site_entropy: float
    indirect_targets_mean: float
    indirect_history_correlated: bool
    call_depth_mean: float
    context_switch_interval: int
    syscall_interval: int
    kernel_branch_burst: int
    interrupt_interval: int
    co_resident_contexts: int
    shared_program_image: bool
    branch_count: int = 60_000

    def __post_init__(self) -> None:
        fractions = (
            self.conditional_fraction,
            self.indirect_fraction,
            self.call_fraction,
            self.biased_site_fraction,
            self.patterned_site_fraction,
        )
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"fraction out of range in workload {self.name}: {value}")
        if self.conditional_fraction + self.indirect_fraction + self.call_fraction > 1.0 + 1e-9:
            raise ValueError(f"dynamic branch mix exceeds 1.0 in workload {self.name}")
        if self.biased_site_fraction + self.patterned_site_fraction > 1.0 + 1e-9:
            raise ValueError(f"conditional site mix exceeds 1.0 in workload {self.name}")
        if self.co_resident_contexts < 1:
            raise ValueError("co_resident_contexts must be >= 1")


def _spec(
    name: str,
    *,
    cond_sites: int,
    ind_sites: int,
    call_sites: int,
    biased: float,
    patterned: float,
    entropy: float,
    ind_targets: float = 2.0,
    correlated: bool = True,
    cond_frac: float = 0.78,
    ind_frac: float = 0.03,
    call_frac: float = 0.09,
    call_depth: float = 8.0,
    branch_count: int = 60_000,
) -> WorkloadProfile:
    """Helper building a compute-bound SPEC-style profile.

    SPEC workloads are single-process and mostly user mode: context switches
    only from timer ticks, few system calls.
    """
    return WorkloadProfile(
        name=name,
        category="spec",
        static_conditional_sites=cond_sites,
        static_indirect_sites=ind_sites,
        static_call_sites=call_sites,
        static_direct_sites=max(16, cond_sites // 10),
        conditional_fraction=cond_frac,
        indirect_fraction=ind_frac,
        call_fraction=call_frac,
        biased_site_fraction=biased,
        patterned_site_fraction=patterned,
        random_site_entropy=entropy,
        indirect_targets_mean=ind_targets,
        indirect_history_correlated=correlated,
        call_depth_mean=call_depth,
        # The default trace length is 10^4-10^5 branches (the paper's captures
        # are 10^8+), so OS-event intervals are scaled down proportionally to
        # keep a representative number of mode switches and interrupts per
        # trace; see DESIGN.md for the substitution rationale.
        context_switch_interval=5_000,
        syscall_interval=1_800,
        kernel_branch_burst=60,
        interrupt_interval=4_000,
        co_resident_contexts=1,
        shared_program_image=False,
        branch_count=branch_count,
    )


def _application(
    name: str,
    *,
    cond_sites: int,
    ind_sites: int,
    call_sites: int,
    biased: float,
    patterned: float,
    entropy: float,
    contexts: int,
    shared_image: bool,
    ctx_interval: int,
    syscall_interval: int,
    kernel_burst: int,
    ind_targets: float = 4.0,
    branch_count: int = 80_000,
) -> WorkloadProfile:
    """Helper building a system-interaction-heavy application profile."""
    return WorkloadProfile(
        name=name,
        category="application",
        static_conditional_sites=cond_sites,
        static_indirect_sites=ind_sites,
        static_call_sites=call_sites,
        static_direct_sites=max(32, cond_sites // 8),
        conditional_fraction=0.70,
        indirect_fraction=0.06,
        call_fraction=0.11,
        biased_site_fraction=biased,
        patterned_site_fraction=patterned,
        random_site_entropy=entropy,
        indirect_targets_mean=ind_targets,
        indirect_history_correlated=True,
        call_depth_mean=14.0,
        context_switch_interval=ctx_interval,
        syscall_interval=syscall_interval,
        kernel_branch_burst=kernel_burst,
        interrupt_interval=6_000,
        co_resident_contexts=contexts,
        shared_program_image=shared_image,
        branch_count=branch_count,
    )


#: SPEC CPU 2017 workload profiles used in Figure 3 (23 benchmarks).
SPEC2017_WORKLOADS: dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        _spec("500.perlbench", cond_sites=5200, ind_sites=160, call_sites=900,
              biased=0.62, patterned=0.24, entropy=0.22, ind_targets=5.0),
        _spec("502.gcc", cond_sites=9000, ind_sites=300, call_sites=1600,
              biased=0.58, patterned=0.24, entropy=0.20, ind_targets=6.0),
        _spec("503.bwaves", cond_sites=700, ind_sites=12, call_sites=120,
              biased=0.82, patterned=0.14, entropy=0.35),
        _spec("505.mcf", cond_sites=900, ind_sites=16, call_sites=140,
              biased=0.48, patterned=0.22, entropy=0.12),
        _spec("507.cactuBSSN", cond_sites=2600, ind_sites=40, call_sites=420,
              biased=0.80, patterned=0.14, entropy=0.30),
        _spec("508.namd", cond_sites=1400, ind_sites=24, call_sites=260,
              biased=0.84, patterned=0.12, entropy=0.32),
        _spec("510.parest", cond_sites=3800, ind_sites=120, call_sites=700,
              biased=0.72, patterned=0.18, entropy=0.25),
        _spec("511.povray", cond_sites=3200, ind_sites=90, call_sites=540,
              biased=0.66, patterned=0.22, entropy=0.22),
        _spec("519.lbm", cond_sites=420, ind_sites=8, call_sites=60,
              biased=0.88, patterned=0.10, entropy=0.40),
        _spec("520.omnetpp", cond_sites=4400, ind_sites=260, call_sites=880,
              biased=0.52, patterned=0.24, entropy=0.16, ind_targets=7.0),
        _spec("521.wrf", cond_sites=5200, ind_sites=70, call_sites=900,
              biased=0.78, patterned=0.16, entropy=0.28),
        _spec("523.xalancbmk", cond_sites=5200, ind_sites=320, call_sites=1100,
              biased=0.56, patterned=0.26, entropy=0.18, ind_targets=8.0),
        _spec("525.x264", cond_sites=2600, ind_sites=60, call_sites=430,
              biased=0.70, patterned=0.20, entropy=0.24),
        _spec("526.blender", cond_sites=6200, ind_sites=220, call_sites=1200,
              biased=0.66, patterned=0.20, entropy=0.22, ind_targets=5.0),
        _spec("527.cam4", cond_sites=4600, ind_sites=60, call_sites=800,
              biased=0.76, patterned=0.16, entropy=0.27),
        _spec("531.deepsjeng", cond_sites=1700, ind_sites=30, call_sites=300,
              biased=0.50, patterned=0.26, entropy=0.14),
        _spec("538.imagick", cond_sites=2300, ind_sites=50, call_sites=380,
              biased=0.78, patterned=0.14, entropy=0.30),
        _spec("541.leela", cond_sites=1500, ind_sites=28, call_sites=260,
              biased=0.50, patterned=0.24, entropy=0.13),
        _spec("544.nab", cond_sites=1100, ind_sites=18, call_sites=180,
              biased=0.80, patterned=0.12, entropy=0.32),
        _spec("548.exchange2", cond_sites=1300, ind_sites=10, call_sites=200,
              biased=0.60, patterned=0.32, entropy=0.20),
        _spec("549.fotonik3d", cond_sites=900, ind_sites=12, call_sites=150,
              biased=0.86, patterned=0.10, entropy=0.36),
        _spec("554.roms", cond_sites=2100, ind_sites=20, call_sites=330,
              biased=0.80, patterned=0.14, entropy=0.30),
        _spec("557.xz", cond_sites=1300, ind_sites=26, call_sites=220,
              biased=0.54, patterned=0.24, entropy=0.15),
    ]
}

#: Application workload profiles used in Figure 3 (12 scenarios).
APPLICATION_WORKLOADS: dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        _application("apache2_prefork_c32", cond_sites=6400, ind_sites=340, call_sites=1300,
                     biased=0.62, patterned=0.22, entropy=0.20, contexts=4, shared_image=True,
                     ctx_interval=1800, syscall_interval=700, kernel_burst=140),
        _application("apache2_prefork_c64", cond_sites=6400, ind_sites=340, call_sites=1300,
                     biased=0.62, patterned=0.22, entropy=0.20, contexts=6, shared_image=True,
                     ctx_interval=1400, syscall_interval=620, kernel_burst=140),
        _application("apache2_prefork_c128", cond_sites=6400, ind_sites=340, call_sites=1300,
                     biased=0.62, patterned=0.22, entropy=0.20, contexts=8, shared_image=True,
                     ctx_interval=1000, syscall_interval=560, kernel_burst=150),
        _application("apache2_prefork_c256", cond_sites=6400, ind_sites=340, call_sites=1300,
                     biased=0.62, patterned=0.22, entropy=0.20, contexts=10, shared_image=True,
                     ctx_interval=800, syscall_interval=520, kernel_burst=150),
        _application("apache2_prefork_c512", cond_sites=6400, ind_sites=340, call_sites=1300,
                     biased=0.62, patterned=0.22, entropy=0.20, contexts=12, shared_image=True,
                     ctx_interval=650, syscall_interval=480, kernel_burst=160),
        _application("chrome-1jetstream", cond_sites=11000, ind_sites=700, call_sites=2300,
                     biased=0.56, patterned=0.24, entropy=0.18, contexts=5, shared_image=False,
                     ctx_interval=2200, syscall_interval=1500, kernel_burst=110, ind_targets=7.0),
        _application("chrome-1motionmark", cond_sites=9000, ind_sites=560, call_sites=1900,
                     biased=0.60, patterned=0.22, entropy=0.19, contexts=5, shared_image=False,
                     ctx_interval=2400, syscall_interval=1700, kernel_burst=100, ind_targets=6.0),
        _application("chrome-1speedometer", cond_sites=10000, ind_sites=640, call_sites=2100,
                     biased=0.58, patterned=0.22, entropy=0.18, contexts=5, shared_image=False,
                     ctx_interval=2000, syscall_interval=1400, kernel_burst=110, ind_targets=7.0),
        _application("chrome-1je_1mo_1sp", cond_sites=12000, ind_sites=800, call_sites=2600,
                     biased=0.55, patterned=0.23, entropy=0.17, contexts=7, shared_image=False,
                     ctx_interval=1500, syscall_interval=1200, kernel_burst=120, ind_targets=8.0),
        _application("mysql_32con_50s", cond_sites=7200, ind_sites=420, call_sites=1500,
                     biased=0.60, patterned=0.22, entropy=0.19, contexts=4, shared_image=True,
                     ctx_interval=1600, syscall_interval=800, kernel_burst=130),
        _application("mysql_64con_50s", cond_sites=7200, ind_sites=420, call_sites=1500,
                     biased=0.60, patterned=0.22, entropy=0.19, contexts=6, shared_image=True,
                     ctx_interval=1200, syscall_interval=700, kernel_burst=130),
        _application("mysql_128con_50s", cond_sites=7200, ind_sites=420, call_sites=1500,
                     biased=0.60, patterned=0.22, entropy=0.19, contexts=8, shared_image=True,
                     ctx_interval=900, syscall_interval=640, kernel_burst=140),
        _application("mysql_256con_50s", cond_sites=7200, ind_sites=420, call_sites=1500,
                     biased=0.60, patterned=0.22, entropy=0.19, contexts=10, shared_image=True,
                     ctx_interval=750, syscall_interval=600, kernel_burst=140),
        _application("obsstudio_30s", cond_sites=5600, ind_sites=300, call_sites=1100,
                     biased=0.68, patterned=0.18, entropy=0.24, contexts=4, shared_image=False,
                     ctx_interval=2600, syscall_interval=1800, kernel_burst=90),
    ]
}

#: Every workload profile, keyed by name.
ALL_WORKLOADS: dict[str, WorkloadProfile] = {**SPEC2017_WORKLOADS, **APPLICATION_WORKLOADS}

#: The 18 SPEC workloads used in the paper's single-process gem5 runs (Figure 4).
GEM5_SINGLE_WORKLOADS: tuple[str, ...] = (
    "549.fotonik3d", "525.x264", "548.exchange2", "531.deepsjeng", "554.roms",
    "505.mcf", "544.nab", "527.cam4", "508.namd", "523.xalancbmk", "510.parest",
    "503.bwaves", "521.wrf", "538.imagick", "541.leela", "526.blender",
    "557.xz", "519.lbm",
)

#: The 31 SMT workload pairs used in the paper's SMT gem5 runs (Figure 5).
GEM5_SMT_PAIRS: tuple[tuple[str, str], ...] = (
    ("503.bwaves", "549.fotonik3d"), ("503.bwaves", "507.cactuBSSN"),
    ("503.bwaves", "541.leela"), ("503.bwaves", "527.cam4"),
    ("548.exchange2", "544.nab"), ("503.bwaves", "521.wrf"),
    ("541.leela", "508.namd"), ("548.exchange2", "505.mcf"),
    ("503.bwaves", "531.deepsjeng"), ("548.exchange2", "549.fotonik3d"),
    ("531.deepsjeng", "519.lbm"), ("503.bwaves", "508.namd"),
    ("503.bwaves", "519.lbm"), ("541.leela", "505.mcf"),
    ("519.lbm", "557.xz"), ("549.fotonik3d", "505.mcf"),
    ("519.lbm", "508.namd"), ("519.lbm", "505.mcf"),
    ("548.exchange2", "541.leela"), ("549.fotonik3d", "519.lbm"),
    ("527.cam4", "505.mcf"), ("544.nab", "557.xz"),
    ("548.exchange2", "508.namd"), ("503.bwaves", "554.roms"),
    ("505.mcf", "557.xz"), ("548.exchange2", "519.lbm"),
    ("503.bwaves", "511.povray"), ("549.fotonik3d", "541.leela"),
    ("549.fotonik3d", "508.namd"), ("531.deepsjeng", "557.xz"),
    ("503.bwaves", "548.exchange2"),
)


def get_workload(name: str) -> WorkloadProfile:
    """Look up a workload profile by name.

    Raises:
        KeyError: If the workload is unknown (message lists valid names).
    """
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from None


def list_workloads(category: str | None = None) -> list[str]:
    """Return workload names, optionally filtered by ``"spec"`` / ``"application"``."""
    if category is None:
        return sorted(ALL_WORKLOADS)
    return sorted(name for name, p in ALL_WORKLOADS.items() if p.category == category)
