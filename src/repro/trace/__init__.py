"""Branch-trace substrate: record model, synthetic workloads, OS events, I/O."""

from repro.trace.branch import (
    VIRTUAL_ADDRESS_BITS,
    VIRTUAL_ADDRESS_MASK,
    STORED_TARGET_BITS,
    STORED_TARGET_MASK,
    BranchRecord,
    BranchType,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceColumns,
    TraceEvent,
    merge_round_robin,
)
from repro.trace.workloads import (
    WorkloadProfile,
    APPLICATION_WORKLOADS,
    SPEC2017_WORKLOADS,
    ALL_WORKLOADS,
    get_workload,
    list_workloads,
)
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.io import read_trace, write_trace

__all__ = [
    "VIRTUAL_ADDRESS_BITS",
    "VIRTUAL_ADDRESS_MASK",
    "STORED_TARGET_BITS",
    "STORED_TARGET_MASK",
    "BranchRecord",
    "BranchType",
    "EventKind",
    "PrivilegeMode",
    "Trace",
    "TraceColumns",
    "TraceEvent",
    "merge_round_robin",
    "WorkloadProfile",
    "APPLICATION_WORKLOADS",
    "SPEC2017_WORKLOADS",
    "ALL_WORKLOADS",
    "get_workload",
    "list_workloads",
    "SyntheticTraceGenerator",
    "generate_trace",
    "read_trace",
    "write_trace",
]
