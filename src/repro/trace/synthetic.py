"""Synthetic branch-trace generator.

The paper collects Intel PT traces from a live machine.  We stand in for that
hardware with a deterministic generator that expands a
:class:`~repro.trace.workloads.WorkloadProfile` into a stream of
:class:`~repro.trace.branch.BranchRecord` objects plus inline OS events.

The generator models a program as a collection of *loops* (short ordered
sequences of branch sites) that are revisited many times, which is what gives
real programs their high baseline prediction accuracy.  Conditional sites are
biased, patterned, or noisy; indirect sites select among several targets
either as a deterministic function of recent history (learnable through the
BHB) or at random; calls and returns walk a call stack deep enough to
occasionally underflow a 16-entry RSB.  Kernel code is modelled as a separate,
shared set of sites at high canonical addresses, entered on system calls and
interrupts.  Multi-process captures interleave per-context generators and emit
context-switch events, optionally sharing the user-level program image
(Apache/MySQL prefork workers) so that protection schemes that flush on
context switch lose genuinely useful state.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field

from repro.trace.branch import (
    VIRTUAL_ADDRESS_MASK,
    BranchRecord,
    BranchType,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
)
from repro.trace.workloads import WorkloadProfile, get_workload

_USER_CODE_BASE = 0x0000_5555_5555_0000
_KERNEL_CODE_BASE = 0xFFFF_8000_0100_0000 & VIRTUAL_ADDRESS_MASK
_CONTEXT_IMAGE_STRIDE = 0x0000_0010_0000_0000
_INSTRUCTION_STRIDE = 16


class _ConditionalBehavior:
    """Direction-generation model for one conditional branch site.

    Three site classes model the spectrum seen in real code:

    * ``biased`` — almost always taken or almost always not taken,
    * ``patterned`` — a short repeating pattern (loop trip counts,
      alternations) that history-based predictors learn, and
    * ``markov`` — data-dependent branches whose outcome tends to persist in
      runs; their per-transition persistence sets how predictable they are
      (this replaces an i.i.d. coin flip, which would make the global history
      unrealistically noisy).
    """

    BIASED = "biased"
    PATTERNED = "patterned"
    MARKOV = "markov"

    __slots__ = ("kind", "taken_probability", "pattern", "position", "persistence", "state")

    def __init__(
        self,
        kind: str,
        taken_probability: float,
        pattern: tuple[bool, ...],
        persistence: float = 0.5,
    ):
        self.kind = kind
        self.taken_probability = taken_probability
        self.pattern = pattern
        self.position = 0
        self.persistence = persistence
        self.state = True

    def next_outcome(self, rng: random.Random) -> bool:
        if self.kind == self.PATTERNED:
            outcome = self.pattern[self.position % len(self.pattern)]
            self.position += 1
            return outcome
        if self.kind == self.MARKOV:
            if rng.random() >= self.persistence:
                self.state = not self.state
            return self.state
        return rng.random() < self.taken_probability


@dataclass(slots=True)
class _ConditionalSite:
    ip: int
    taken_target: int
    behavior: _ConditionalBehavior


@dataclass(slots=True)
class _IndirectSite:
    ip: int
    targets: tuple[int, ...]
    is_call: bool
    history_correlated: bool
    #: Rolling selector mixed from recent outcomes; used when correlated.
    selector: int = 0


@dataclass(slots=True)
class _CallSite:
    ip: int
    target: int
    #: Conditional sites forming the callee's body (fixed per call site, the
    #: way a real function's branches are).
    body_sites: tuple = ()


@dataclass(slots=True)
class _DirectSite:
    ip: int
    target: int


@dataclass(slots=True)
class _Loop:
    """An ordered sequence of sites revisited ``iterations`` times per visit.

    Every loop has a dedicated back-edge conditional branch which is taken on
    all iterations except the last — the highly predictable loop-control
    branches that dominate real programs' dynamic branch mix.
    """

    sites: list[object]
    mean_iterations: float
    back_edge: _ConditionalSite | None = None


@dataclass(slots=True)
class _ProgramImage:
    """The static code of one program: all branch sites grouped into loops."""

    loops: list[_Loop]
    conditionals: list[_ConditionalSite]
    indirects: list[_IndirectSite]
    calls: list[_CallSite]
    directs: list[_DirectSite]


@dataclass(slots=True)
class _ContextState:
    """Dynamic execution state of one software context."""

    context_id: int
    image: _ProgramImage
    rng: random.Random
    call_stack: list[int] = field(default_factory=list)
    recent_history: int = 0
    current_loop: int = 0
    loop_remaining: int = 0
    site_cursor: int = 0


class SyntheticTraceGenerator:
    """Expands a workload profile into a deterministic branch trace.

    Args:
        profile: Workload characterisation (or a workload name).
        seed: Seed for all randomness; the same (profile, seed) pair always
            produces the identical trace.
    """

    def __init__(self, profile: WorkloadProfile | str, seed: int = 0):
        if isinstance(profile, str):
            profile = get_workload(profile)
        self.profile = profile
        self.seed = seed
        # zlib.crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which would make "the same (profile, seed) pair"
        # produce a different trace in every interpreter — fatal for parallel
        # runs that must match serial ones bit for bit.
        self._rng = random.Random(
            (zlib.crc32(profile.name.encode("utf-8")) & 0xFFFF_FFFF) ^ (seed * 0x9E3779B9)
        )
        self._kernel_image = self._build_image(
            base=_KERNEL_CODE_BASE,
            conditional_sites=max(64, profile.static_conditional_sites // 8),
            indirect_sites=max(8, profile.static_indirect_sites // 8),
            call_sites=max(8, profile.static_call_sites // 8),
            direct_sites=max(8, profile.static_direct_sites // 8),
        )
        self._contexts = self._build_contexts()
        self._kernel_state = _ContextState(
            context_id=-1, image=self._kernel_image, rng=random.Random(self._rng.random())
        )

    # ------------------------------------------------------------------ build

    def _build_contexts(self) -> list[_ContextState]:
        profile = self.profile
        contexts: list[_ContextState] = []
        shared_image: _ProgramImage | None = None
        for index in range(profile.co_resident_contexts):
            if profile.shared_program_image:
                if shared_image is None:
                    shared_image = self._build_image(
                        base=_USER_CODE_BASE,
                        conditional_sites=profile.static_conditional_sites,
                        indirect_sites=profile.static_indirect_sites,
                        call_sites=profile.static_call_sites,
                        direct_sites=profile.static_direct_sites,
                    )
                image = shared_image
            else:
                image = self._build_image(
                    base=_USER_CODE_BASE + index * _CONTEXT_IMAGE_STRIDE,
                    conditional_sites=profile.static_conditional_sites,
                    indirect_sites=profile.static_indirect_sites,
                    call_sites=profile.static_call_sites,
                    direct_sites=profile.static_direct_sites,
                )
            contexts.append(
                _ContextState(
                    context_id=index,
                    image=image,
                    rng=random.Random(self._rng.getrandbits(64)),
                )
            )
        return contexts

    def _build_image(
        self,
        *,
        base: int,
        conditional_sites: int,
        indirect_sites: int,
        call_sites: int,
        direct_sites: int,
    ) -> _ProgramImage:
        profile = self.profile
        rng = random.Random(self._rng.getrandbits(64))
        next_address = base

        def allocate() -> int:
            nonlocal next_address
            address = next_address
            # Real code is not laid out uniformly; skip a random small gap.
            next_address += _INSTRUCTION_STRIDE * rng.randint(1, 24)
            return address & VIRTUAL_ADDRESS_MASK

        conditionals: list[_ConditionalSite] = []
        for _ in range(conditional_sites):
            ip = allocate()
            taken_target = (ip + _INSTRUCTION_STRIDE * rng.randint(2, 4000)) & VIRTUAL_ADDRESS_MASK
            roll = rng.random()
            if roll < profile.biased_site_fraction:
                probability = 0.97 if rng.random() < 0.6 else 0.03
                behavior = _ConditionalBehavior(_ConditionalBehavior.BIASED, probability, ())
            elif roll < profile.biased_site_fraction + profile.patterned_site_fraction:
                length = rng.randint(2, 8)
                pattern = tuple(rng.random() < 0.5 for _ in range(length))
                # Guarantee the pattern is not constant so it is genuinely periodic.
                if all(pattern) or not any(pattern):
                    pattern = pattern[:-1] + (not pattern[-1],)
                behavior = _ConditionalBehavior(_ConditionalBehavior.PATTERNED, 0.5, pattern)
            else:
                # "Hard" sites: data-dependent branches whose outcomes come in
                # runs.  The workload entropy parameter controls the run
                # persistence — low entropy (e.g. 505.mcf) gives short, hard
                # to predict runs, high entropy gives long predictable ones.
                persistence = min(0.97, 0.55 + profile.random_site_entropy
                                  + rng.uniform(0.0, 0.2))
                behavior = _ConditionalBehavior(
                    _ConditionalBehavior.MARKOV, 0.5, (), persistence=persistence
                )
            conditionals.append(_ConditionalSite(ip=ip, taken_target=taken_target, behavior=behavior))

        indirects: list[_IndirectSite] = []
        for _ in range(indirect_sites):
            ip = allocate()
            count = max(1, int(rng.expovariate(1.0 / profile.indirect_targets_mean)) + 1)
            count = min(count, 16)
            targets = tuple(
                (ip + _INSTRUCTION_STRIDE * rng.randint(8, 6000)) & VIRTUAL_ADDRESS_MASK
                for _ in range(count)
            )
            indirects.append(
                _IndirectSite(
                    ip=ip,
                    targets=targets,
                    is_call=rng.random() < 0.4,
                    history_correlated=profile.indirect_history_correlated,
                )
            )

        calls: list[_CallSite] = []
        for _ in range(call_sites):
            ip = allocate()
            target = (ip + _INSTRUCTION_STRIDE * rng.randint(16, 8000)) & VIRTUAL_ADDRESS_MASK
            body_length = rng.randint(2, 6)
            if conditionals:
                start = rng.randrange(len(conditionals))
                body = tuple(
                    conditionals[(start + position) % len(conditionals)]
                    for position in range(body_length)
                )
            else:
                body = ()
            calls.append(_CallSite(ip=ip, target=target, body_sites=body))

        directs: list[_DirectSite] = []
        for _ in range(direct_sites):
            ip = allocate()
            target = (ip + _INSTRUCTION_STRIDE * rng.randint(4, 2000)) & VIRTUAL_ADDRESS_MASK
            directs.append(_DirectSite(ip=ip, target=target))

        # Dedicated loop back-edge branches (taken on every iteration but the last).
        back_edges: list[_ConditionalSite] = []
        for _ in range(max(4, len(conditionals) // 8)):
            ip = allocate()
            taken_target = (ip - _INSTRUCTION_STRIDE * rng.randint(8, 512)) & VIRTUAL_ADDRESS_MASK
            behavior = _ConditionalBehavior(_ConditionalBehavior.BIASED, 1.0, ())
            back_edges.append(
                _ConditionalSite(ip=ip, taken_target=taken_target, behavior=behavior)
            )

        loops = self._group_into_loops(rng, conditionals, indirects, calls, directs, back_edges)
        return _ProgramImage(
            loops=loops,
            conditionals=conditionals,
            indirects=indirects,
            calls=calls,
            directs=directs,
        )

    def _group_into_loops(
        self,
        rng: random.Random,
        conditionals: list[_ConditionalSite],
        indirects: list[_IndirectSite],
        calls: list[_CallSite],
        directs: list[_DirectSite],
        back_edges: list[_ConditionalSite],
    ) -> list[_Loop]:
        """Partition all sites into short loops with a hot/cold visit profile."""
        site_pool: list[object] = []
        site_pool.extend(conditionals)
        site_pool.extend(indirects)
        site_pool.extend(calls)
        site_pool.extend(directs)
        rng.shuffle(site_pool)

        loops: list[_Loop] = []
        index = 0
        while index < len(site_pool):
            size = rng.randint(4, 16)
            body = site_pool[index:index + size]
            index += size
            mean_iterations = 8.0 + rng.expovariate(1.0 / 24.0)
            back_edge = back_edges[len(loops) % len(back_edges)] if back_edges else None
            loops.append(
                _Loop(sites=body, mean_iterations=mean_iterations, back_edge=back_edge)
            )
        if not loops:
            loops.append(_Loop(sites=list(site_pool), mean_iterations=8.0))
        return loops

    # --------------------------------------------------------------- generate

    def generate(self, branch_count: int | None = None) -> Trace:
        """Generate a trace of approximately ``branch_count`` branch records."""
        profile = self.profile
        target_branches = branch_count if branch_count is not None else profile.branch_count
        trace = Trace(name=profile.name)

        active = 0
        emitted = 0
        next_context_switch = self._interval(profile.context_switch_interval)
        next_syscall = self._interval(profile.syscall_interval)
        next_interrupt = self._interval(profile.interrupt_interval)

        while emitted < target_branches:
            state = self._contexts[active]
            produced = self._emit_loop_step(trace, state, PrivilegeMode.USER)
            emitted += produced

            if profile.syscall_interval and emitted >= next_syscall:
                next_syscall = emitted + self._interval(profile.syscall_interval)
                emitted += self._emit_kernel_entry(
                    trace, state.context_id, EventKind.MODE_SWITCH_ENTER_KERNEL,
                    profile.kernel_branch_burst,
                )

            if profile.interrupt_interval and emitted >= next_interrupt:
                next_interrupt = emitted + self._interval(profile.interrupt_interval)
                emitted += self._emit_kernel_entry(
                    trace, state.context_id, EventKind.INTERRUPT,
                    max(8, profile.kernel_branch_burst // 3),
                )

            if (
                profile.context_switch_interval
                and profile.co_resident_contexts > 1
                and emitted >= next_context_switch
            ):
                next_context_switch = emitted + self._interval(profile.context_switch_interval)
                choices = [i for i in range(profile.co_resident_contexts) if i != active]
                active = self._rng.choice(choices)
                trace.append(TraceEvent(EventKind.CONTEXT_SWITCH, context_id=active))

        return trace

    def _interval(self, mean: int) -> int:
        if mean <= 0:
            return 1 << 62
        return max(1, int(self._rng.expovariate(1.0 / mean)))

    def _emit_loop_step(self, trace: Trace, state: _ContextState, mode: PrivilegeMode) -> int:
        """Emit one site's worth of branches from the context's current loop."""
        image = state.image
        if state.loop_remaining <= 0 or state.current_loop >= len(image.loops):
            state.current_loop = self._pick_loop(state)
            loop = image.loops[state.current_loop]
            state.loop_remaining = max(
                1, int(state.rng.expovariate(1.0 / loop.mean_iterations))
            )
            state.site_cursor = 0

        loop = image.loops[state.current_loop]
        site = loop.sites[state.site_cursor]
        produced = self._emit_site(trace, state, site, mode)

        state.site_cursor += 1
        if state.site_cursor >= len(loop.sites):
            state.site_cursor = 0
            state.loop_remaining -= 1
            if loop.back_edge is not None:
                # Loop-control branch: taken while more iterations remain.
                taken = state.loop_remaining > 0
                back_edge = loop.back_edge
                target = back_edge.taken_target if taken else (back_edge.ip + 4)
                trace.append(
                    BranchRecord(
                        ip=back_edge.ip,
                        target=target,
                        taken=taken,
                        branch_type=BranchType.CONDITIONAL,
                        context_id=state.context_id,
                        mode=mode,
                    )
                )
                state.recent_history = ((state.recent_history << 1) | int(taken)) & 0xFFFF
                produced += 1
        return produced

    def _pick_loop(self, state: _ContextState) -> int:
        """Hot/cold loop selection modelling the strong temporal locality of real code.

        Roughly 85% of visits go to a small hot set (about 6% of all loops),
        10% to a warm set, and the rest sample the whole program, which is the
        kind of concentration that gives real workloads their high baseline
        prediction accuracy while still exercising structure capacity.
        """
        loop_count = len(state.image.loops)
        hot_count = max(1, int(loop_count * 0.06))
        warm_count = max(hot_count + 1, int(loop_count * 0.25))
        roll = state.rng.random()
        if roll < 0.85:
            return state.rng.randrange(hot_count)
        if roll < 0.95:
            return state.rng.randrange(warm_count)
        return state.rng.randrange(loop_count)

    def _emit_site(
        self, trace: Trace, state: _ContextState, site: object, mode: PrivilegeMode
    ) -> int:
        if isinstance(site, _ConditionalSite):
            return self._emit_conditional(trace, state, site, mode)
        if isinstance(site, _IndirectSite):
            return self._emit_indirect(trace, state, site, mode)
        if isinstance(site, _CallSite):
            return self._emit_call(trace, state, site, mode)
        if isinstance(site, _DirectSite):
            trace.append(
                BranchRecord(
                    ip=site.ip,
                    target=site.target,
                    taken=True,
                    branch_type=BranchType.DIRECT_JUMP,
                    context_id=state.context_id,
                    mode=mode,
                )
            )
            return 1
        raise TypeError(f"unknown site type: {type(site)!r}")

    def _emit_conditional(
        self, trace: Trace, state: _ContextState, site: _ConditionalSite, mode: PrivilegeMode
    ) -> int:
        taken = site.behavior.next_outcome(state.rng)
        target = site.taken_target if taken else (site.ip + 4)
        record = BranchRecord(
            ip=site.ip,
            target=target,
            taken=taken,
            branch_type=BranchType.CONDITIONAL,
            context_id=state.context_id,
            mode=mode,
        )
        trace.append(record)
        state.recent_history = ((state.recent_history << 1) | int(taken)) & 0xFFFF
        return 1

    def _emit_indirect(
        self, trace: Trace, state: _ContextState, site: _IndirectSite, mode: PrivilegeMode
    ) -> int:
        if len(site.targets) == 1:
            index = 0
        elif site.history_correlated:
            # Most dynamic executions of a polymorphic indirect branch hit its
            # dominant target; the minority of switches is a deterministic
            # function of recent history, so history-based predictors can
            # learn it (as they do for real virtual-call sites).
            if state.rng.random() < 0.85:
                index = 0
            else:
                index = 1 + (state.recent_history % (len(site.targets) - 1))
        else:
            index = state.rng.randrange(len(site.targets))
        target = site.targets[index]
        branch_type = BranchType.INDIRECT_CALL if site.is_call else BranchType.INDIRECT_JUMP
        trace.append(
            BranchRecord(
                ip=site.ip,
                target=target,
                taken=True,
                branch_type=branch_type,
                context_id=state.context_id,
                mode=mode,
            )
        )
        produced = 1
        if site.is_call:
            state.call_stack.append(site.ip + 4)
            produced += self._emit_returns(trace, state, mode, probability=0.9)
        return produced

    def _emit_call(
        self, trace: Trace, state: _ContextState, site: _CallSite, mode: PrivilegeMode
    ) -> int:
        trace.append(
            BranchRecord(
                ip=site.ip,
                target=site.target,
                taken=True,
                branch_type=BranchType.DIRECT_CALL,
                context_id=state.context_id,
                mode=mode,
            )
        )
        state.call_stack.append(site.ip + 4)
        produced = 1

        # Execute the callee's (fixed) body of conditional branches.
        image = state.image
        for body_site in site.body_sites:
            produced += self._emit_conditional(trace, state, body_site, mode)

        # Occasionally nest deeper before unwinding, so the RSB can underflow.
        max_depth = max(2, int(self.profile.call_depth_mean * 1.5))
        if len(state.call_stack) < max_depth and state.rng.random() < 0.35 and image.calls:
            nested = image.calls[state.rng.randrange(len(image.calls))]
            if nested.ip != site.ip:
                produced += self._emit_call(trace, state, nested, mode)

        produced += self._emit_returns(trace, state, mode, probability=0.95)
        return produced

    def _emit_returns(
        self, trace: Trace, state: _ContextState, mode: PrivilegeMode, probability: float
    ) -> int:
        """Pop and emit return branches with the given per-frame probability."""
        produced = 0
        while state.call_stack and state.rng.random() < probability:
            return_address = state.call_stack.pop()
            trace.append(
                BranchRecord(
                    ip=(return_address + 64) & VIRTUAL_ADDRESS_MASK,
                    target=return_address,
                    taken=True,
                    branch_type=BranchType.RETURN,
                    context_id=state.context_id,
                    mode=mode,
                )
            )
            produced += 1
        return produced

    def _emit_kernel_entry(
        self, trace: Trace, context_id: int, kind: EventKind, burst: int
    ) -> int:
        """Emit a kernel excursion: event marker, kernel branches, exit marker."""
        trace.append(TraceEvent(kind, context_id=context_id))
        produced = 0
        kernel = self._kernel_state
        kernel.context_id = context_id
        length = max(1, int(self._rng.expovariate(1.0 / burst))) if burst else 0
        while produced < length:
            produced += self._emit_loop_step(trace, kernel, PrivilegeMode.KERNEL)
        trace.append(TraceEvent(EventKind.MODE_SWITCH_EXIT_KERNEL, context_id=context_id))
        return produced


def generate_trace(
    workload: WorkloadProfile | str, *, seed: int = 0, branch_count: int | None = None
) -> Trace:
    """Convenience wrapper: build a generator and produce one trace."""
    return SyntheticTraceGenerator(workload, seed=seed).generate(branch_count)
