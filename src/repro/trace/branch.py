"""Branch-record data model.

The whole evaluation pipeline operates on streams of :class:`BranchRecord`
objects.  A record captures everything the hardware front end would see about
one dynamic branch: its virtual address, resolved target, resolved direction,
static type, and the software context it executed in (process identifier and
privilege mode).  Traces additionally carry :class:`TraceEvent` markers for
context switches, mode switches and interrupts so that protection schemes
triggered by OS events (IBPB flushes, ST reloads) can be simulated
faithfully.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Number of virtual-address bits used throughout the model (x86-64 canonical).
VIRTUAL_ADDRESS_BITS = 48
#: Mask selecting the 48 architecturally relevant virtual-address bits.
VIRTUAL_ADDRESS_MASK = (1 << VIRTUAL_ADDRESS_BITS) - 1
#: Number of target bits stored in BTB/RSB entries (paper Section II-A).
STORED_TARGET_BITS = 32
STORED_TARGET_MASK = (1 << STORED_TARGET_BITS) - 1


class BranchType(enum.Enum):
    """Static branch categories distinguished by the ISA (paper Section II-A)."""

    DIRECT_JUMP = "direct_jump"
    DIRECT_CALL = "direct_call"
    CONDITIONAL = "conditional"
    INDIRECT_JUMP = "indirect_jump"
    INDIRECT_CALL = "indirect_call"
    RETURN = "return"

    @property
    def is_call(self) -> bool:
        """Whether the branch pushes a return address onto the call stack."""
        return self in (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)

    @property
    def is_return(self) -> bool:
        return self is BranchType.RETURN

    @property
    def is_conditional(self) -> bool:
        return self is BranchType.CONDITIONAL

    @property
    def is_indirect(self) -> bool:
        """Whether the target is carried in a register/memory (not an immediate)."""
        return self in (
            BranchType.INDIRECT_JUMP,
            BranchType.INDIRECT_CALL,
            BranchType.RETURN,
        )

    @property
    def is_direct(self) -> bool:
        return self in (
            BranchType.DIRECT_JUMP,
            BranchType.DIRECT_CALL,
            BranchType.CONDITIONAL,
        )

    @property
    def needs_target_prediction(self) -> bool:
        """Direction-only conditional branches still need a BTB hit to redirect
        fetch, but for accounting purposes the paper's OAE metric requires the
        *target* prediction only for taken branches; all types may therefore
        need a target."""
        return True


class PrivilegeMode(enum.Enum):
    """Processor privilege mode a branch executed in."""

    USER = "user"
    KERNEL = "kernel"


class EventKind(enum.Enum):
    """OS-visible events interleaved with branch records inside a trace."""

    CONTEXT_SWITCH = "context_switch"
    MODE_SWITCH_ENTER_KERNEL = "mode_switch_enter_kernel"
    MODE_SWITCH_EXIT_KERNEL = "mode_switch_exit_kernel"
    INTERRUPT = "interrupt"


@dataclass(frozen=True, slots=True)
class BranchRecord:
    """One dynamic branch instance as observed by the front end.

    Attributes:
        ip: 48-bit virtual address of the branch instruction.
        target: 48-bit virtual address of the resolved target.  For
            not-taken conditional branches this is the fall-through address.
        taken: Resolved direction.  Unconditional branches are always taken.
        branch_type: Static category of the instruction.
        context_id: Identifier of the software entity (process / thread /
            sandbox) the branch belongs to.  Protection schemes key off this.
        mode: Privilege mode at execution time.
    """

    ip: int
    target: int
    taken: bool
    branch_type: BranchType
    context_id: int = 0
    mode: PrivilegeMode = PrivilegeMode.USER

    def __post_init__(self) -> None:
        object.__setattr__(self, "ip", self.ip & VIRTUAL_ADDRESS_MASK)
        object.__setattr__(self, "target", self.target & VIRTUAL_ADDRESS_MASK)

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction (branch length ~ 4 bytes)."""
        return (self.ip + 4) & VIRTUAL_ADDRESS_MASK

    @property
    def stored_target(self) -> int:
        """The 32 least-significant target bits a baseline BTB/RSB would store."""
        return self.target & STORED_TARGET_MASK

    @property
    def upper_ip_bits(self) -> int:
        """The 16 upper bits of the branch ip used to re-extend stored targets."""
        return self.target >> STORED_TARGET_BITS

    def with_context(self, context_id: int, mode: PrivilegeMode | None = None) -> "BranchRecord":
        """Return a copy of this record attributed to a different context."""
        return BranchRecord(
            ip=self.ip,
            target=self.target,
            taken=self.taken,
            branch_type=self.branch_type,
            context_id=context_id,
            mode=mode if mode is not None else self.mode,
        )


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A non-branch event carried inline in the trace stream."""

    kind: EventKind
    #: Context the CPU switches *to* (for context switches) or the context the
    #: event occurred in (for mode switches and interrupts).
    context_id: int = 0


TraceItem = BranchRecord | TraceEvent

#: Stable small-integer codes for :class:`BranchType`, used by the columnar
#: ndarray view (and the shared-memory trace shipping that serialises it).
BRANCH_TYPE_CODES: dict[BranchType, int] = {
    BranchType.CONDITIONAL: 0,
    BranchType.DIRECT_JUMP: 1,
    BranchType.DIRECT_CALL: 2,
    BranchType.INDIRECT_JUMP: 3,
    BranchType.INDIRECT_CALL: 4,
    BranchType.RETURN: 5,
}

#: Inverse of :data:`BRANCH_TYPE_CODES`, index = code.
BRANCH_TYPES_BY_CODE: tuple[BranchType, ...] = tuple(
    code_type for code_type, _ in sorted(BRANCH_TYPE_CODES.items(), key=lambda kv: kv[1])
)


@dataclass(slots=True)
class TraceArrays:
    """Contiguous NumPy views of the per-branch columns, decoded exactly once.

    The vector replay backend (:mod:`repro.sim.vector`) consumes traces as
    arrays: 48-bit addresses as ``uint64``, outcome/category flags as ``bool``
    and small codes, so array kernels can predict whole event-free branch runs
    at a time.  Like :class:`TraceColumns` this is derived data — build it via
    :meth:`TraceColumns.arrays`, which caches per columns object.

    Attributes:
        ips/targets: Branch and resolved-target virtual addresses (``uint64``).
        takens: Resolved directions (``bool``).
        types: :data:`BRANCH_TYPE_CODES` codes (``uint8``).
        context_ids: Software-context identifiers (``int64``).
        kernel_modes: ``True`` where the branch executed in kernel mode.
    """

    ips: "object"
    targets: "object"
    takens: "object"
    types: "object"
    context_ids: "object"
    kernel_modes: "object"

    @classmethod
    def from_columns(cls, columns: "TraceColumns") -> "TraceArrays":
        import numpy as np

        branches = columns.branches
        codes = BRANCH_TYPE_CODES
        kernel = PrivilegeMode.KERNEL
        return cls(
            ips=np.array(columns.ips, dtype=np.uint64),
            targets=np.array(columns.targets, dtype=np.uint64),
            takens=np.array(columns.takens, dtype=bool),
            types=np.array([codes[b.branch_type] for b in branches], dtype=np.uint8),
            context_ids=np.array(columns.context_ids, dtype=np.int64),
            kernel_modes=np.array([b.mode is kernel for b in branches], dtype=bool),
        )


@dataclass(slots=True)
class TraceColumns:
    """Columnar view of a trace: branches and events pre-split and pre-decoded.

    The replay hot path (millions of branches per grid) pays for per-item
    ``isinstance`` dispatch and attribute/property chasing when it iterates a
    :class:`Trace` directly.  ``TraceColumns`` does that decoding exactly once
    per trace:

    * ``branches`` holds only the branch records, in program order;
    * ``segments`` encodes the original interleaving as ``(start, stop,
      event)`` runs — replay ``branches[start:stop]``, then dispatch ``event``
      (``None`` for the final run); and
    * the parallel ``ips``/``targets``/``takens``/``conditionals``/
      ``context_ids`` arrays carry the per-branch fields the simulators read
      per access, as plain ints/bools.

    Columns are derived data: build them with :meth:`Trace.columns`, which
    caches per trace and rebuilds when the item count changes.
    """

    item_count: int
    branches: list[BranchRecord]
    segments: list[tuple[int, int, TraceEvent | None]]
    ips: list[int]
    targets: list[int]
    takens: list[bool]
    conditionals: list[bool]
    context_ids: list[int]
    _arrays: "TraceArrays | None" = None

    def arrays(self) -> "TraceArrays":
        """The cached NumPy view of the per-branch columns."""
        if self._arrays is None:
            self._arrays = TraceArrays.from_columns(self)
        return self._arrays

    @classmethod
    def from_items(cls, items: Sequence[TraceItem]) -> "TraceColumns":
        branches: list[BranchRecord] = []
        segments: list[tuple[int, int, TraceEvent | None]] = []
        start = 0
        append_branch = branches.append
        conditional = BranchType.CONDITIONAL
        for item in items:
            if item.__class__ is TraceEvent:
                segments.append((start, len(branches), item))
                start = len(branches)
            else:
                append_branch(item)
        segments.append((start, len(branches), None))
        return cls(
            item_count=len(items),
            branches=branches,
            segments=segments,
            ips=[b.ip for b in branches],
            targets=[b.target for b in branches],
            takens=[b.taken for b in branches],
            conditionals=[b.branch_type is conditional for b in branches],
            context_ids=[b.context_id for b in branches],
        )


@dataclass(slots=True)
class Trace:
    """An ordered stream of branch records and OS events.

    The class is a thin sequence wrapper that also tracks summary statistics,
    mirroring what the paper's Intel-PT-based collector would report about a
    capture.
    """

    items: list[TraceItem] = field(default_factory=list)
    name: str = "trace"
    _columns: TraceColumns | None = field(default=None, repr=False, compare=False)

    def append(self, item: TraceItem) -> None:
        self.items.append(item)

    def extend(self, items: Iterable[TraceItem]) -> None:
        self.items.extend(items)

    def columns(self) -> TraceColumns:
        """The cached columnar view; rebuilt when the item count changed."""
        columns = self._columns
        if columns is None or columns.item_count != len(self.items):
            columns = TraceColumns.from_items(self.items)
            self._columns = columns
        return columns

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[TraceItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> TraceItem:
        return self.items[index]

    def branches(self) -> Iterator[BranchRecord]:
        """Iterate over only the branch records in program order."""
        for item in self.items:
            if isinstance(item, BranchRecord):
                yield item

    def events(self) -> Iterator[TraceEvent]:
        for item in self.items:
            if isinstance(item, TraceEvent):
                yield item

    @property
    def branch_count(self) -> int:
        return sum(1 for _ in self.branches())

    @property
    def event_count(self) -> int:
        return sum(1 for _ in self.events())

    @property
    def context_ids(self) -> set[int]:
        ids = {b.context_id for b in self.branches()}
        ids.update(e.context_id for e in self.events())
        return ids

    def conditional_fraction(self) -> float:
        """Fraction of branches that are conditional (useful for sanity checks)."""
        total = 0
        conditional = 0
        for branch in self.branches():
            total += 1
            if branch.branch_type.is_conditional:
                conditional += 1
        return conditional / total if total else 0.0

    def taken_fraction(self) -> float:
        total = 0
        taken = 0
        for branch in self.branches():
            total += 1
            if branch.taken:
                taken += 1
        return taken / total if total else 0.0


def merge_round_robin(traces: Sequence[Trace], quantum: int = 64, name: str = "smt") -> Trace:
    """Interleave several traces, simulating SMT co-execution.

    Branches from each input trace are taken in chunks of ``quantum``,
    round-robin, until every trace is exhausted.  Context-switch events are
    not inserted: SMT threads share the BPU concurrently rather than
    time-slicing, which is what the paper's SMT gem5 experiments model.

    Args:
        traces: Input traces; each keeps its own ``context_id`` values.
        quantum: Number of consecutive items taken from one trace per turn.
        name: Name for the merged trace.

    Returns:
        A new :class:`Trace` containing all items of all inputs.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    # Iterate the traces, not their raw item lists: shared-memory trace views
    # (repro.engine.sharing) materialise items lazily through __iter__.
    iterators = [iter(t) for t in traces]
    exhausted = [False] * len(traces)
    merged = Trace(name=name)
    while not all(exhausted):
        for idx, iterator in enumerate(iterators):
            if exhausted[idx]:
                continue
            for _ in range(quantum):
                try:
                    merged.append(next(iterator))
                except StopIteration:
                    exhausted[idx] = True
                    break
    return merged
