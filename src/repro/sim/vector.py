"""NumPy vector replay backend: array-at-a-time prediction, bit-exact.

The scalar replay loops spend almost all their time in per-branch Python
dispatch.  This backend replays whole event-free branch runs ("epochs") with
array kernels instead, exploiting one structural property of the composite
predictor: *training is driven entirely by resolved trace data* (taken bits,
branch types, addresses), never by the predictions themselves.  That makes
every piece of predictor state except the BTB/RSB precomputable:

* GHR / BHB histories are shift registers of trace-only data — both are
  computed for every branch at once with sliding-window shift/XOR kernels
  seeded by the carried register value;
* PHT / chooser tables are 2-bit saturating counters whose update stream per
  table index is known up front.  Each access's *pre-update* counter value is
  recovered with a segmented Hillis–Steele scan over packed 4-state
  transition maps (a 2-bit counter is a 4-state FSM, so a whole
  counter-function composition fits in one byte and composition is a 64K
  lookup table);
* the BTB (LRU, set-associative) and RSB (bounded stack) remain genuinely
  sequential, but replay as a slim Python loop over pre-computed integer
  keys — no objects, no hashing, no attribute chasing — touching only the
  branches that actually access them.

Epochs are chunked between protection events so event semantics stay exact:
OS events delimit epochs, STBPU token swaps (context/mode changes) start new
chunks, and an STBPU re-randomization fired by the monitoring counters ends
the chunk *at the firing access* — scans commit only the executed prefix (the
scan composition is pure until committed) and replay resumes under the fresh
token.  The parity tests pin all of this to byte-identical results against
both scalar paths.

Models opt in via ``vector_kernel()``; models without a kernel (TAGE and
Perceptron directions, ablation facades) fall back to the PR-2 columnar fast
path with a logged notice.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.bpu.common import PredictorStats
from repro.trace.branch import (
    VIRTUAL_ADDRESS_MASK,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
)

logger = logging.getLogger("repro.sim.vector")

_FALLBACK_LOGGED: set[str] = set()

# Branch-type codes, mirroring repro.trace.branch.BRANCH_TYPE_CODES.
_COND, _DJ, _DC, _IJ, _IC, _RET = 0, 1, 2, 3, 4, 5

# Structural-loop opcodes.
_OP_LOOKUP1 = 0   # conditional predicted-taken, or direct: mode-1 lookup (+update if taken)
_OP_UPDATE1 = 1   # conditional predicted not-taken but taken: mode-1 update only
_OP_INDIRECT = 2  # mode-2 lookup, mode-1 fallback, mode-2 update if taken
_OP_RETURN = 3    # RSB pop; mode-2 lookup on underflow; mode-2 update if taken

_U64 = np.uint64


def _pack_map(states: tuple[int, int, int, int]) -> int:
    return states[0] | (states[1] << 2) | (states[2] << 4) | (states[3] << 6)


#: Packed 4-state transition maps of a 2-bit saturating counter.
MAP_IDENTITY = _pack_map((0, 1, 2, 3))
MAP_INCREMENT = _pack_map((1, 2, 3, 3))
MAP_DECREMENT = _pack_map((0, 0, 1, 2))


def _build_compose_table() -> np.ndarray:
    """``COMPOSE[a, b]`` = packed map "apply ``a`` first, then ``b``"."""
    codes = np.arange(256, dtype=np.uint16)
    shifts = 2 * np.arange(4, dtype=np.uint16)
    applied_a = (codes[:, None] >> shifts[None, :]) & 3            # [a, state]
    composed = (codes[None, :, None] >> (2 * applied_a[:, None, :])) & 3
    return (composed << shifts[None, None, :]).sum(axis=2).astype(np.uint8)


COMPOSE = _build_compose_table()


class _CounterScan:
    """A completed (but uncommitted) segmented counter scan over one table."""

    __slots__ = ("order", "idx_sorted", "inclusive", "init_states")

    def __init__(self, order, idx_sorted, inclusive, init_states):
        self.order = order
        self.idx_sorted = idx_sorted
        self.inclusive = inclusive
        self.init_states = init_states

    def commit(self, table: np.ndarray, upto: int | None = None) -> None:
        """Scatter final per-index counter states back into ``table``.

        ``upto`` restricts the commit to accesses with original ordinal
        ``< upto`` (the executed prefix when an STBPU re-randomization fired
        mid-chunk); ``None`` commits every access.
        """
        idx_sorted = self.idx_sorted
        count = idx_sorted.shape[0]
        if count == 0:
            return
        if upto is None:
            last = np.empty(count, dtype=bool)
            last[-1] = True
            np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=last[:-1])
            positions = np.flatnonzero(last)
        else:
            selected = np.flatnonzero(self.order < upto)
            if selected.shape[0] == 0:
                return
            idx_selected = idx_sorted[selected]
            last = np.empty(selected.shape[0], dtype=bool)
            last[-1] = True
            np.not_equal(idx_selected[1:], idx_selected[:-1], out=last[:-1])
            positions = selected[last]
        table[idx_sorted[positions]] = (
            self.inclusive[positions] >> (self.init_states[positions] << 1)) & 3


def _scan_counters(indices: np.ndarray, maps: np.ndarray, table: np.ndarray,
                   order: np.ndarray | None = None,
                   ) -> tuple[np.ndarray, _CounterScan | None, np.ndarray]:
    """Pre-update counter values for a stream of (index, transition) accesses.

    Returns ``(pre_states, scan, order)`` where ``pre_states[k]`` is the
    counter value access ``k`` observes *before* its own update, ``scan``
    commits the final states, and ``order`` is the stable argsort of
    ``indices`` (reusable for further scans over the same index stream).
    """
    count = indices.shape[0]
    if count == 0:
        empty = np.empty(0, dtype=np.uint8)
        return empty, None, np.empty(0, dtype=np.int64)
    if order is None:
        order = np.argsort(indices, kind="stable")
    idx_sorted = indices[order]
    inclusive = maps[order].copy()
    shift = 1
    while shift < count:
        same = idx_sorted[shift:] == idx_sorted[:-shift]
        composed = COMPOSE[inclusive[:-shift], inclusive[shift:]]
        inclusive[shift:] = np.where(same, composed, inclusive[shift:])
        shift <<= 1
    first = np.empty(count, dtype=bool)
    first[0] = True
    np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=first[1:])
    exclusive = np.empty_like(inclusive)
    exclusive[1:] = inclusive[:-1]
    exclusive[first] = MAP_IDENTITY
    init_states = table[idx_sorted]
    pre_sorted = (exclusive >> (init_states << 1)) & 3
    pre = np.empty(count, dtype=np.uint8)
    pre[order] = pre_sorted
    return pre, _CounterScan(order, idx_sorted, inclusive, init_states), order


def _ghr_window(outcomes: np.ndarray, seed_value: int, bits: int,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Per-access GHR values (before each push) plus the extended bit stream.

    ``outcomes`` is the uint64 0/1 stream of conditional outcomes in one
    chunk; ``seed_value`` is the register value carried into the chunk.  The
    extended stream (seed bits then outcomes) is returned so callers can
    reconstruct the register value after any prefix with :func:`_ghr_value_at`.
    """
    count = outcomes.shape[0]
    extended = np.empty(count + bits, dtype=np.uint64)
    for position in range(bits):
        extended[position] = (seed_value >> (bits - 1 - position)) & 1
    extended[bits:] = outcomes
    values = np.zeros(count, dtype=np.uint64)
    for distance in range(1, bits + 1):
        values += extended[bits - distance: bits - distance + count] << _U64(distance - 1)
    return values, extended


def _ghr_value_at(extended: np.ndarray, executed: int, bits: int) -> int:
    """Register value after ``executed`` pushes of the extended stream."""
    value = 0
    for distance in range(bits):
        value |= int(extended[executed + bits - 1 - distance]) << distance
    return value


def _bhb_states(mixed: np.ndarray, seed_value: int, bits: int) -> np.ndarray:
    """BHB register value after ``c`` pushes, for every ``c`` in ``0..len``.

    The BHB recurrence ``v = ((v << 2) & mask) ^ mixed`` is GF(2)-linear, so
    the state after ``c`` pushes is the XOR of the last ``⌈bits/2⌉`` pushed
    values at staggered shifts plus the carried seed — a sliding-window XOR
    kernel rather than a sequential loop.
    """
    update_count = mixed.shape[0]
    window = (bits - 1) // 2 + 1
    states = np.zeros(update_count + 1, dtype=np.uint64)
    for distance in range(1, min(window, update_count) + 1):
        states[distance:] ^= mixed[: update_count - distance + 1] << _U64(2 * (distance - 1))
    mask = (1 << bits) - 1
    for c in range(0, min(window, update_count + 1)):
        seed_term = (seed_value << (2 * c)) & mask
        if seed_term:
            states[c] ^= _U64(seed_term)
    states &= _U64(mask)
    return states


def _extend_outcomes(outcomes: list, appended, max_outcomes: int) -> None:
    """Exactly emulate ``HistoryState.record_conditional``'s deferred trim."""
    block = max_outcomes + 256
    existing = len(outcomes)
    appended = list(appended)
    total = existing + len(appended)
    if total <= block:
        outcomes.extend(appended)
        return
    # First trim fires at the append that pushes the length past ``block``;
    # afterwards the length cycles between ``max_outcomes`` and ``block``.
    first_trim = block + 1 - existing
    period = block + 1 - max_outcomes
    final_length = max_outcomes + ((len(appended) - first_trim) % period)
    combined = outcomes + appended
    outcomes[:] = combined[len(combined) - final_length:]


class _MonitorMirror:
    """Loop-local mirror of a :class:`RerandomizationMonitor`'s counters."""

    __slots__ = ("monitor", "mis_threshold", "ev_threshold", "dir_threshold",
                 "has_direction", "mis_remaining", "ev_remaining",
                 "dir_remaining", "observed_mis", "observed_ev", "fired")

    def __init__(self, monitor):
        config = monitor.config
        counters = monitor.counters
        self.monitor = monitor
        self.mis_threshold = config.misprediction_threshold
        self.ev_threshold = config.eviction_threshold
        self.has_direction = config.direction_misprediction_threshold is not None
        self.dir_threshold = (config.direction_misprediction_threshold
                              if self.has_direction
                              else config.misprediction_threshold)
        self.mis_remaining = counters.mispredictions_remaining
        self.ev_remaining = counters.evictions_remaining
        self.dir_remaining = counters.direction_remaining
        self.observed_mis = monitor.observed_mispredictions
        self.observed_ev = monitor.observed_evictions
        self.fired = monitor.fired_count

    def write_back(self) -> None:
        monitor = self.monitor
        counters = monitor.counters
        counters.mispredictions_remaining = self.mis_remaining
        counters.evictions_remaining = self.ev_remaining
        counters.direction_remaining = self.dir_remaining
        monitor.observed_mispredictions = self.observed_mis
        monitor.observed_evictions = self.observed_ev
        monitor.fired_count = self.fired


class _SpanResult:
    """Outcome of one vectorised chunk: how far it ran and whether it fired."""

    __slots__ = ("executed_to", "fired")

    def __init__(self, executed_to: int, fired: bool):
        self.executed_to = executed_to
        self.fired = fired


class _CompositeEngine:
    """Vector replay engine over one :class:`~repro.bpu.composite.CompositeBPU`.

    The engine adopts the composite's structures into flat arrays/lists on
    ``begin``, replays spans with :meth:`run_span`, and writes every structure
    back bit-exactly on ``finish``.  Wrapper kernels (flushing, conservative,
    STBPU) drive the span schedule and event semantics.
    """

    def __init__(self, composite, pht_maps, btb_maps, codec):
        self.composite = composite
        self.pht_maps = pht_maps
        self.btb_maps = btb_maps
        self.codec = codec
        self.sizes = composite.sizes
        self.token_dependent = bool(
            getattr(pht_maps, "token_dependent", False)
            or getattr(btb_maps, "token_dependent", False)
            or codec.token_dependent
        )

    # ------------------------------------------------------------------ state

    def begin(self, arrays) -> None:
        composite = self.composite
        sizes = self.sizes
        btb = composite.btb
        offset_bits = sizes.btb_offset_bits
        keys: list[int] = []
        tags: list[int] = []
        offsets: list[int] = []
        stored: list[int] = []
        stamps: list[int] = []
        for entries in btb._sets:
            for entry in entries:
                keys.append(((entry.tag << offset_bits) | entry.offset)
                            if entry.valid else -1)
                tags.append(entry.tag)
                offsets.append(entry.offset)
                stored.append(entry.stored_target)
                stamps.append(entry.lru_stamp)
        self.bt_keys = keys
        self.bt_tags = tags
        self.bt_offsets = offsets
        self.bt_stored = stored
        self.bt_stamps = stamps
        self.clock = btb._access_clock
        self.evictions = btb.eviction_count
        self.ways = btb.way_count
        self.set_count = btb.set_count

        direction = composite.direction
        self.one_table = np.array(direction.one_level._values, dtype=np.uint8)
        self.two_table = np.array(direction.two_level._values, dtype=np.uint8)
        self.choice_table = np.array(direction.chooser._values, dtype=np.uint8)

        rsb = composite.rsb
        self.rsb = list(rsb._stack)
        self.rsb_capacity = rsb.capacity
        self.rsb_overflows = rsb.overflow_count
        self.rsb_underflows = rsb.underflow_count

        history = composite.history
        self.ghr_value = history.ghr.value
        self.bhb_value = history.bhb.value
        self.outcomes = history.outcomes
        self.max_outcomes = history.max_outcomes

        # ---------------------------------------------- whole-trace invariants
        self.arrays = arrays
        ips = arrays.ips
        targets = arrays.targets
        types = arrays.types
        self.n = ips.shape[0]
        self.is_cond = types == _COND
        self.is_direct = (types == _DJ) | (types == _DC)
        self.is_indirect = (types == _IJ) | (types == _IC)
        self.is_return = types == _RET
        self.is_call = (types == _DC) | (types == _IC)
        self.is_ind_or_ret = self.is_indirect | self.is_return
        self.bhb_updates = arrays.takens & (self.is_cond | self.is_direct)
        self.mixed = (ips & _U64(0x3F_FFFF)) ^ ((targets & _U64(0x3F_FFFF)) << _U64(1))
        self.fallthrough_ok = ((ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)) == targets
        self.high_ok = (ips >> _U64(32)) == (targets >> _U64(32))
        opcode = np.empty(self.n, dtype=np.uint8)
        opcode[self.is_direct] = _OP_LOOKUP1
        opcode[self.is_indirect] = _OP_INDIRECT
        opcode[self.is_return] = _OP_RETURN
        self.base_opcode = opcode  # conditional entries filled per span

        self._mode1_cache = None
        self._encoded_cache = None
        self._push_cache = None
        if not self.token_dependent:
            self._mode1_cache = self._mode1_keys(slice(0, self.n))
            self._encoded_cache = np.asarray(self.codec.vector_encode(targets))
            self._push_cache = np.asarray(self.codec.vector_encode(
                (ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)))

        # Whole-trace result flags, filled span by span.
        self.dir_ok = np.ones(self.n, dtype=bool)
        self.target_ok = np.ones(self.n, dtype=bool)
        self.btb_hit = np.zeros(self.n, dtype=bool)
        self.btb_evict = np.zeros(self.n, dtype=bool)
        self.rsb_under = np.zeros(self.n, dtype=bool)

    def _mode1_keys(self, span: slice):
        arrays = self.arrays
        index, key = self.btb_maps.btb1(arrays.ips[span], arrays.context_ids[span])
        index = index.astype(np.int64)
        if self.set_count != self.sizes.btb_sets:
            index %= self.set_count
        return index * self.ways, key.astype(np.int64)

    def finish(self) -> None:
        composite = self.composite
        btb = composite.btb
        keys = self.bt_keys
        tags = self.bt_tags
        offsets = self.bt_offsets
        stored = self.bt_stored
        stamps = self.bt_stamps
        position = 0
        for entries in btb._sets:
            for entry in entries:
                entry.valid = keys[position] != -1
                entry.tag = tags[position]
                entry.offset = offsets[position]
                entry.stored_target = stored[position]
                entry.lru_stamp = stamps[position]
                position += 1
        btb._access_clock = self.clock
        btb.eviction_count = self.evictions

        direction = composite.direction
        direction.one_level._values = self.one_table.tolist()
        direction.two_level._values = self.two_table.tolist()
        direction.chooser._values = self.choice_table.tolist()

        rsb = composite.rsb
        rsb._stack = self.rsb
        rsb.overflow_count = self.rsb_overflows
        rsb.underflow_count = self.rsb_underflows

        history = composite.history
        history.ghr.value = self.ghr_value
        history.bhb.value = self.bhb_value

    def flush(self) -> None:
        """Emulate ``CompositeBPU.flush_predictor_state`` on the adopted state."""
        keys = self.bt_keys
        for position, key in enumerate(keys):
            if key != -1:
                keys[position] = -1
        self.rsb.clear()
        self.one_table.fill(1)
        self.two_table.fill(1)
        self.choice_table.fill(1)
        self.ghr_value = 0
        self.bhb_value = 0
        self.outcomes.clear()

    # ------------------------------------------------------------------- spans

    def run_span(self, lo: int, hi: int, monitor: _MonitorMirror | None = None,
                 ) -> _SpanResult:
        """Replay branches ``[lo, hi)`` under a constant mapping/codec key.

        With ``monitor`` set (STBPU), the structural loop additionally feeds
        the re-randomization counters and stops — state bit-exact — right
        after the access that exhausts one; the span result reports how far
        execution got so the caller can re-key and resume.
        """
        if hi <= lo:
            return _SpanResult(hi, False)
        arrays = self.arrays
        span = slice(lo, hi)
        length = hi - lo
        ips = arrays.ips[span]
        targets = arrays.targets[span]
        takens = arrays.takens[span]
        contexts = arrays.context_ids[span]
        is_cond = self.is_cond[span]

        # ----------------------------------------------- direction prediction
        cond_rel = np.flatnonzero(is_cond)
        cond_takens = takens[cond_rel]
        ghr_pre, ghr_extended = _ghr_window(
            cond_takens.astype(np.uint64), self.ghr_value, self.sizes.ghr_bits)
        cond_ips = ips[cond_rel]
        cond_ctx = contexts[cond_rel]
        one_idx = np.asarray(self.pht_maps.pht1(cond_ips, cond_ctx)).astype(np.int64)
        two_idx = np.asarray(
            self.pht_maps.pht2(cond_ips, ghr_pre, cond_ctx)).astype(np.int64)
        entries = self.sizes.pht_entries
        if entries & (entries - 1):
            # Non-power-of-two tables: the scalar PatternHistoryTable wraps
            # every access with ``index % entries``; fold/mask outputs can
            # exceed the table, so apply the same wrap up front.
            one_idx %= entries
            two_idx %= entries
        updates = np.where(cond_takens, np.uint8(MAP_INCREMENT),
                           np.uint8(MAP_DECREMENT))
        one_pre, one_scan, one_order = _scan_counters(one_idx, updates, self.one_table)
        two_pre, two_scan, _ = _scan_counters(two_idx, updates, self.two_table)
        one_pred = one_pre > 1
        two_pred = two_pre > 1
        one_correct = one_pred == cond_takens
        two_correct = two_pred == cond_takens
        choice_updates = np.where(
            one_correct != two_correct,
            np.where(two_correct, np.uint8(MAP_INCREMENT), np.uint8(MAP_DECREMENT)),
            np.uint8(MAP_IDENTITY))
        choice_pre, choice_scan, _ = _scan_counters(
            one_idx, choice_updates, self.choice_table, order=one_order)
        predicted_taken_cond = np.where(choice_pre > 1, two_pred, one_pred)

        predicted_taken = np.zeros(length, dtype=bool)
        predicted_taken[cond_rel] = predicted_taken_cond

        # --------------------------------------------------------- histories
        update_mask = self.bhb_updates[span]
        mixed = self.mixed[span][update_mask]
        bhb_states = _bhb_states(mixed, self.bhb_value, self.sizes.bhb_bits)
        update_cum = np.cumsum(update_mask)
        ind_ret_rel = np.flatnonzero(self.is_ind_or_ret[span])
        updates_before = update_cum[ind_ret_rel] - update_mask[ind_ret_rel]
        bhb_at = bhb_states[updates_before]

        # ---------------------------------------------------------- BTB keys
        if self._mode1_cache is not None:
            mode1_base = self._mode1_cache[0][span]
            mode1_key = self._mode1_cache[1][span]
            encoded = self._encoded_cache[span]
            push_values = self._push_cache[span]
        else:
            mode1_base, mode1_key = self._mode1_keys(span)
            encoded = np.asarray(self.codec.vector_encode(targets))
            push_values = np.asarray(self.codec.vector_encode(
                (ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)))
        mode2_base = np.zeros(length, dtype=np.int64)
        mode2_key = np.zeros(length, dtype=np.int64)
        if ind_ret_rel.shape[0]:
            index2, key2 = self.btb_maps.btb2(
                ips[ind_ret_rel], bhb_at, contexts[ind_ret_rel])
            index2 = index2.astype(np.int64)
            if self.set_count != self.sizes.btb_sets:
                index2 %= self.set_count
            mode2_base[ind_ret_rel] = index2 * self.ways
            mode2_key[ind_ret_rel] = key2.astype(np.int64)

        # -------------------------------------------------------- direction ok
        dir_ok = ~is_cond | (predicted_taken == takens)
        self.dir_ok[span] = dir_ok

        # ------------------------------------------------------- participants
        opcode = self.base_opcode[span].copy()
        opcode[cond_rel] = np.where(predicted_taken_cond, np.uint8(_OP_LOOKUP1),
                                    np.uint8(_OP_UPDATE1))
        part_rel = np.flatnonzero(~is_cond | predicted_taken | takens)
        loop_result = self._structural_loop(
            opcode[part_rel].tolist(),
            takens[part_rel].tolist(),
            mode1_base[part_rel].tolist(),
            mode1_key[part_rel].tolist(),
            mode2_base[part_rel].tolist(),
            mode2_key[part_rel].tolist(),
            encoded[part_rel].tolist(),
            self.high_ok[span][part_rel].tolist(),
            self.fallthrough_ok[span][part_rel].tolist(),
            self.is_call[span][part_rel].tolist(),
            push_values[part_rel].tolist(),
            dir_ok[part_rel].tolist(),
            monitor,
        )
        target_ok_list, hit_list, evict_list, under_list, stopped_at = loop_result

        fired = stopped_at >= 0
        if fired:
            executed_rel = int(part_rel[stopped_at]) + 1
            part_rel = part_rel[: stopped_at + 1]
            target_ok_list = target_ok_list[: stopped_at + 1]
            hit_list = hit_list[: stopped_at + 1]
            evict_list = evict_list[: stopped_at + 1]
            under_list = under_list[: stopped_at + 1]
        else:
            executed_rel = length

        target_ok = np.ones(length, dtype=bool)
        target_ok[part_rel] = target_ok_list
        self.target_ok[span] = target_ok
        hit = np.zeros(length, dtype=bool)
        hit[part_rel] = hit_list
        self.btb_hit[span] = hit
        evict = np.zeros(length, dtype=bool)
        evict[part_rel] = evict_list
        self.btb_evict[span] = evict
        under = np.zeros(length, dtype=bool)
        under[part_rel] = under_list
        self.rsb_under[span] = under

        # ------------------------------------------------ commit predictor state
        executed_cond = int(np.searchsorted(cond_rel, executed_rel))
        if one_scan is not None:
            upto = None if not fired else executed_cond
            one_scan.commit(self.one_table, upto)
            two_scan.commit(self.two_table, upto)
            choice_scan.commit(self.choice_table, upto)
        self.ghr_value = _ghr_value_at(ghr_extended, executed_cond,
                                       self.sizes.ghr_bits)
        if fired:
            executed_updates = int(update_cum[executed_rel - 1]) if executed_rel else 0
        else:
            executed_updates = int(update_cum[-1]) if length else 0
        self.bhb_value = int(bhb_states[executed_updates])
        _extend_outcomes(self.outcomes, cond_takens[:executed_cond].tolist(),
                         self.max_outcomes)
        return _SpanResult(lo + executed_rel, fired)

    # --------------------------------------------------------- structural loop

    def _structural_loop(self, ops, takens, base1, key1, base2, key2, encoded,
                         high_ok, fall_ok, calls, pushes, dir_ok, monitor):
        keys = self.bt_keys
        tags = self.bt_tags
        offsets = self.bt_offsets
        stored = self.bt_stored
        stamps = self.bt_stamps
        clock = self.clock
        evictions = self.evictions
        ways = self.ways
        offset_bits = self.sizes.btb_offset_bits
        offset_mask = (1 << offset_bits) - 1
        rsb = self.rsb
        rsb_capacity = self.rsb_capacity
        count = len(ops)
        target_ok = [True] * count
        hits = [False] * count
        evicts = [False] * count
        unders = [False] * count
        valid_bonus = 1 << 62
        huge = 1 << 63
        stopped_at = -1

        if monitor is not None:
            mis_remaining = monitor.mis_remaining
            ev_remaining = monitor.ev_remaining
            dir_remaining = monitor.dir_remaining
            has_direction = monitor.has_direction
            observed_mis = monitor.observed_mis
            observed_ev = monitor.observed_ev
            fired_count = monitor.fired
        watching = monitor is not None

        for j in range(count):
            op = ops[j]
            taken = takens[j]
            hit = False
            correct = False
            evicted = False
            if op == 0:  # mode-1 lookup (conditional predicted-taken / direct)
                clock += 1
                base = base1[j]
                want = key1[j]
                stop = base + ways
                w = base
                while w < stop:
                    if keys[w] == want:
                        stamps[w] = clock
                        hit = True
                        if stored[w] == encoded[j] and high_ok[j]:
                            correct = True
                        break
                    w += 1
                update_base = base
                update_key = want
            elif op == 1:  # conditional predicted not-taken but resolved taken
                update_base = base1[j]
                update_key = key1[j]
                correct = fall_ok[j]
            elif op == 2:  # indirect: mode-2 lookup, mode-1 fallback
                clock += 1
                base = base2[j]
                want = key2[j]
                stop = base + ways
                w = base
                while w < stop:
                    if keys[w] == want:
                        stamps[w] = clock
                        hit = True
                        if stored[w] == encoded[j] and high_ok[j]:
                            correct = True
                        break
                    w += 1
                if not hit:
                    clock += 1
                    base = base1[j]
                    want1 = key1[j]
                    stop = base + ways
                    w = base
                    while w < stop:
                        if keys[w] == want1:
                            stamps[w] = clock
                            hit = True
                            if stored[w] == encoded[j] and high_ok[j]:
                                correct = True
                            break
                        w += 1
                update_base = base2[j]
                update_key = key2[j]
            else:  # return: RSB pop, mode-2 lookup on underflow
                if rsb:
                    popped = rsb.pop()
                    if popped == encoded[j] and high_ok[j]:
                        correct = True
                else:
                    self.rsb_underflows += 1
                    unders[j] = True
                    clock += 1
                    base = base2[j]
                    want = key2[j]
                    stop = base + ways
                    w = base
                    while w < stop:
                        if keys[w] == want:
                            stamps[w] = clock
                            hit = True
                            if stored[w] == encoded[j] and high_ok[j]:
                                correct = True
                            break
                        w += 1
                update_base = base2[j]
                update_key = key2[j]

            if taken:
                target_ok[j] = correct
                # ------------------------------------------------- BTB update
                clock += 1
                stop = update_base + ways
                w = update_base
                victim = -1
                victim_rank = huge
                matched = False
                while w < stop:
                    key_w = keys[w]
                    if key_w == update_key:
                        stored[w] = encoded[j]
                        stamps[w] = clock
                        matched = True
                        break
                    rank = stamps[w]
                    if key_w != -1:
                        rank += valid_bonus
                    if rank < victim_rank:
                        victim_rank = rank
                        victim = w
                    w += 1
                if not matched:
                    if keys[victim] != -1:
                        evictions += 1
                        evicted = True
                        evicts[j] = True
                    keys[victim] = update_key
                    tags[victim] = update_key >> offset_bits
                    offsets[victim] = update_key & offset_mask
                    stored[victim] = encoded[j]
                    stamps[victim] = clock
            hits[j] = hit

            if calls[j]:
                if len(rsb) >= rsb_capacity:
                    del rsb[0]
                    self.rsb_overflows += 1
                rsb.append(pushes[j])

            if watching:
                mispredicted = not (dir_ok[j] and (correct or not taken))
                if mispredicted or evicted:
                    fire = False
                    if evicted:
                        observed_ev += 1
                        ev_remaining -= 1
                        if ev_remaining <= 0:
                            fire = True
                    if mispredicted:
                        observed_mis += 1
                        if has_direction and not dir_ok[j]:
                            dir_remaining -= 1
                            if dir_remaining <= 0:
                                fire = True
                        else:
                            mis_remaining -= 1
                            if mis_remaining <= 0:
                                fire = True
                    if fire:
                        fired_count += 1
                        mis_remaining = monitor.mis_threshold
                        ev_remaining = monitor.ev_threshold
                        dir_remaining = monitor.dir_threshold
                        stopped_at = j
                        break

        self.clock = clock
        self.evictions = evictions
        if monitor is not None:
            monitor.mis_remaining = mis_remaining
            monitor.ev_remaining = ev_remaining
            monitor.dir_remaining = dir_remaining
            monitor.observed_mis = observed_mis
            monitor.observed_ev = observed_ev
            monitor.fired = fired_count
        return target_ok, hits, evicts, unders, stopped_at


# --------------------------------------------------------------------- stats

def _accumulate_stats(engine: _CompositeEngine, stats: PredictorStats,
                      warmup: int) -> None:
    """Fold the whole-trace flag arrays into ``stats``, exactly like the
    columnar loop records branches past the global warm-up count."""
    n = engine.n
    start = min(max(warmup, 0), n)
    span = slice(start, n)
    conditional = engine.is_cond[span]
    taken = engine.arrays.takens[span]
    dir_ok = engine.dir_ok[span]
    target_ok = engine.target_ok[span]
    effective = dir_ok & target_ok
    conditional_count = int(np.count_nonzero(conditional))
    stats.branches += n - start
    stats.conditional_branches += conditional_count
    stats.direction_predictions += conditional_count
    stats.direction_correct += int(np.count_nonzero(conditional & dir_ok))
    stats.target_predictions += int(np.count_nonzero(taken))
    stats.target_correct += int(np.count_nonzero(taken & target_ok))
    stats.effective_correct += int(np.count_nonzero(effective))
    stats.mispredictions += (n - start) - int(np.count_nonzero(effective))
    stats.btb_evictions += int(np.count_nonzero(engine.btb_evict[span]))
    stats.btb_hits += int(np.count_nonzero(engine.btb_hit[span]))
    stats.rsb_underflows += int(np.count_nonzero(engine.rsb_under[span]))


def _accumulate_smt(engine: _CompositeEngine, per_thread_stats,
                    thread_offset: int, warmup: int) -> None:
    """Per-thread accumulation for SMT co-runs (per-thread warm-up ordinals)."""
    contexts = engine.arrays.context_ids
    thread_one = contexts >= thread_offset
    for thread, mask in ((0, ~thread_one), (1, thread_one)):
        positions = np.flatnonzero(mask)
        measured = positions[warmup:]
        if measured.shape[0] == 0:
            continue
        stats = per_thread_stats[thread]
        conditional = engine.is_cond[measured]
        taken = engine.arrays.takens[measured]
        dir_ok = engine.dir_ok[measured]
        target_ok = engine.target_ok[measured]
        effective = dir_ok & target_ok
        conditional_count = int(np.count_nonzero(conditional))
        stats.branches += measured.shape[0]
        stats.conditional_branches += conditional_count
        stats.direction_predictions += conditional_count
        stats.direction_correct += int(np.count_nonzero(conditional & dir_ok))
        stats.target_predictions += int(np.count_nonzero(taken))
        stats.target_correct += int(np.count_nonzero(taken & target_ok))
        stats.effective_correct += int(np.count_nonzero(effective))
        stats.mispredictions += measured.shape[0] - int(np.count_nonzero(effective))
        stats.btb_evictions += int(np.count_nonzero(engine.btb_evict[measured]))
        stats.btb_hits += int(np.count_nonzero(engine.btb_hit[measured]))
        stats.rsb_underflows += int(np.count_nonzero(engine.rsb_under[measured]))


# ------------------------------------------------------------------- kernels

class _KernelBase:
    """Shared replay scaffolding for the per-model vector kernels."""

    #: Kernels whose event hooks are no-ops replay the whole trace as one
    #: epoch instead of chunking at (inert) event boundaries.
    merge_events = False

    def __init__(self, engine: _CompositeEngine, model):
        self.engine = engine
        self.model = model

    def run_trace(self, trace: Trace, warmup: int, stats: PredictorStats) -> bool:
        if not self._replay(trace):
            return False
        _accumulate_stats(self.engine, stats, warmup)
        return True

    def run_smt(self, merged: Trace, thread_offset: int, warmup: int,
                per_thread_stats) -> bool:
        if not self._replay(merged):
            return False
        _accumulate_smt(self.engine, per_thread_stats, thread_offset, warmup)
        return True

    def _replay(self, trace: Trace) -> bool:
        columns = trace.columns()
        engine = self.engine
        engine.begin(columns.arrays())
        if not self._prepare(columns):
            return False
        if self.merge_events:
            self._run_block(0, engine.n)
        else:
            for start, stop, event in columns.segments:
                self._run_block(start, stop)
                if event is not None:
                    self._on_event(event)
        engine.finish()
        self._sync_extra(columns)
        return True

    def _prepare(self, columns) -> bool:
        return True

    def _run_block(self, lo: int, hi: int) -> None:
        self.engine.run_span(lo, hi)

    def _on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def _sync_extra(self, columns) -> None:
        pass


class _PlainKernel(_KernelBase):
    """Unprotected :class:`~repro.bpu.composite.CompositeBPU`: every OS-event
    hook is a no-op, so the whole trace replays as one epoch."""

    merge_events = True


class _ConservativeKernel(_KernelBase):
    """Conservative model: the partition slot is per-branch data (the maps
    receive the context column), so events only influence the mapping's final
    ``current_context`` value, restored after replay."""

    merge_events = True

    def _sync_extra(self, columns) -> None:
        mapping = self.model._mapping
        context_ids = self.engine.arrays.context_ids
        for start, stop, event in reversed(columns.segments):
            if event is not None and event.kind is EventKind.CONTEXT_SWITCH:
                mapping.current_context = event.context_id
                return
            if stop > start:
                mapping.current_context = int(context_ids[stop - 1])
                return


class _FlushingKernel(_KernelBase):
    """µcode-style protection: emulates the flush-on-event hooks against the
    adopted state (the live structures are stale until ``finish``)."""

    def _on_event(self, event: TraceEvent) -> None:
        model = self.model
        kind = event.kind
        if kind is EventKind.CONTEXT_SWITCH:
            if (model._current_context is not None
                    and event.context_id != model._current_context
                    and model.flush_on_context_switch):
                self.engine.flush()
                model.flush_count += 1
            model._current_context = event.context_id
        elif kind is EventKind.MODE_SWITCH_ENTER_KERNEL or kind is EventKind.INTERRUPT:
            if model.flush_on_mode_switch:
                self.engine.flush()
                model.flush_count += 1


class _STBPUKernel(_KernelBase):
    """STBPU: epoch chunks follow the secret token — one chunk per run of a
    constant effective context, re-chunked at monitor-fired re-randomizations.

    OS events go to the *real* model hooks (they only touch the token
    machinery, never the adopted predictor structures)."""

    def _prepare(self, columns) -> bool:
        from repro.core.stbpu import KERNEL_CONTEXT_ID

        arrays = self.engine.arrays
        effective = np.where(arrays.kernel_modes, np.int64(KERNEL_CONTEXT_ID),
                             arrays.context_ids)
        changes = np.flatnonzero(effective[1:] != effective[:-1]) + 1
        count = arrays.ips.shape[0]
        # Token-run chunks shorter than ~a few hundred branches (SMT merges
        # swap contexts every scheduling quantum) lose the vector advantage;
        # refuse before mutating anything and let the caller fall back.
        if count and changes.shape[0] + 1 > max(16, count // 192):
            return False
        self._effective = effective
        self._changes = changes
        return True

    def _run_block(self, lo: int, hi: int) -> None:
        model = self.model
        engine = self.engine
        changes = self._changes
        effective = self._effective
        boundary = int(np.searchsorted(changes, lo, side="right"))
        position = lo
        while position < hi:
            run_hi = hi
            if boundary < changes.shape[0]:
                next_change = int(changes[boundary])
                if next_change < hi:
                    run_hi = next_change
                    boundary += 1
            context = int(effective[position])
            if context != model._current_context:
                model._current_context = context
                model._install_token(model._token_for_context(context))
            model.stats.contexts_seen.add(context)
            span_lo = position
            while span_lo < run_hi:
                mirror = _MonitorMirror(model.monitor)
                result = engine.run_span(span_lo, run_hi, mirror)
                mirror.write_back()
                span_lo = result.executed_to
                if result.fired:
                    model.rerandomize_current()
            position = run_hi

    def _on_event(self, event: TraceEvent) -> None:
        model = self.model
        kind = event.kind
        if kind is EventKind.CONTEXT_SWITCH:
            model.on_context_switch(event.context_id)
        elif kind is EventKind.MODE_SWITCH_ENTER_KERNEL:
            model.on_mode_switch(PrivilegeMode.KERNEL, event.context_id)
        elif kind is EventKind.MODE_SWITCH_EXIT_KERNEL:
            model.on_mode_switch(PrivilegeMode.USER, event.context_id)
        elif kind is EventKind.INTERRUPT:
            model.on_interrupt(event.context_id)


# ------------------------------------------------------------ kernel builders

def _make_engine(composite) -> _CompositeEngine | None:
    """Build the vector engine for a composite, or ``None`` when any piece
    (direction component, mapping, codec, structure subclass) has no exact
    array form."""
    from repro.bpu.btb import BranchTargetBuffer
    from repro.bpu.composite import CompositeBPU
    from repro.bpu.pht import SKLConditionalPredictor
    from repro.bpu.rsb import ReturnStackBuffer

    if type(composite) is not CompositeBPU:
        return None
    direction = composite.direction
    if type(direction) is not SKLConditionalPredictor:
        return None
    if composite.sizes.pht_counter_bits != 2:
        return None
    if type(composite.btb) is not BranchTargetBuffer:
        return None
    if type(composite.rsb) is not ReturnStackBuffer:
        return None
    codec = composite.btb.codec
    if codec is not composite.rsb.codec:
        return None
    if codec.vector_encode(np.zeros(0, dtype=np.uint64)) is None:
        return None
    pht_maps = direction.mapping.vector_maps()
    btb_maps = composite.btb.mapping.vector_maps()
    if pht_maps is None or btb_maps is None:
        return None
    return _CompositeEngine(composite, pht_maps, btb_maps, codec)


def composite_kernel(model):
    """Vector kernel for an unprotected :class:`CompositeBPU` (or ``None``)."""
    engine = _make_engine(model)
    return _PlainKernel(engine, model) if engine is not None else None


def flushing_kernel(model):
    """Vector kernel for :class:`~repro.bpu.protections.FlushingProtectedBPU`."""
    from repro.bpu.protections import FlushingProtectedBPU

    if type(model) is not FlushingProtectedBPU:
        return None
    engine = _make_engine(model.inner)
    return _FlushingKernel(engine, model) if engine is not None else None


def conservative_kernel(model):
    """Vector kernel for :class:`~repro.bpu.protections.ConservativeBPU`."""
    from repro.bpu.protections import ConservativeBPU

    if type(model) is not ConservativeBPU:
        return None
    engine = _make_engine(model.inner)
    return _ConservativeKernel(engine, model) if engine is not None else None


def stbpu_kernel(model):
    """Vector kernel for :class:`~repro.core.stbpu.STBPU`."""
    from repro.core.monitoring import RerandomizationMonitor
    from repro.core.stbpu import STBPU

    if type(model) is not STBPU:
        return None
    if type(model.monitor) is not RerandomizationMonitor:
        return None
    engine = _make_engine(model.inner)
    return _STBPUKernel(engine, model) if engine is not None else None


# -------------------------------------------------------------- entry points

def kernel_for(model):
    """The model's vector kernel, logging one fallback notice per model name."""
    kernel = model.vector_kernel()
    if kernel is None:
        name = getattr(model, "name", type(model).__name__)
        if name not in _FALLBACK_LOGGED:
            _FALLBACK_LOGGED.add(name)
            logger.info(
                "model %r has no vector kernel; falling back to the columnar "
                "fast path", name)
    return kernel


def fallback_logged_names() -> tuple[str, ...]:
    """Model names whose fallback notice this process already emitted.

    The engine runner ships this snapshot to its worker processes so a
    100-job grid of a kernel-less model logs the notice once — in the
    parent — instead of once per worker batch.
    """
    return tuple(sorted(_FALLBACK_LOGGED))


def suppress_fallback_notices(names) -> None:
    """Mark ``names`` as already logged in this process.

    Called by :func:`repro.engine.runner.execute_job_batch` in workers with
    the parent's :func:`fallback_logged_names` snapshot: the parent probed
    each model and spoke for the whole process tree.
    """
    _FALLBACK_LOGGED.update(names)


def try_replay_trace(model, trace: Trace, warmup: int,
                     stats: PredictorStats) -> bool:
    """Vector-replay ``trace`` through ``model`` into ``stats`` if possible."""
    kernel = kernel_for(model)
    if kernel is None:
        return False
    return kernel.run_trace(trace, warmup, stats)


def try_replay_smt(model, merged: Trace, thread_offset: int, warmup: int,
                   per_thread_stats) -> bool:
    """Vector-replay an SMT co-run if the model's kernel supports the merge."""
    kernel = kernel_for(model)
    if kernel is None:
        return False
    return kernel.run_smt(merged, thread_offset, warmup, per_thread_stats)
