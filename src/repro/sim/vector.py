"""NumPy vector replay backend: array-at-a-time prediction, bit-exact.

The scalar replay loops spend almost all their time in per-branch Python
dispatch.  This backend replays whole event-free branch runs ("epochs") with
array kernels instead, exploiting one structural property of the composite
predictor: *training is driven entirely by resolved trace data* (taken bits,
branch types, addresses), never by the predictions themselves.  That makes
every piece of predictor state except the BTB/RSB precomputable:

* GHR / BHB histories are shift registers of trace-only data — both are
  computed for every branch at once with sliding-window shift/XOR kernels
  seeded by the carried register value;
* PHT / chooser tables are 2-bit saturating counters whose update stream per
  table index is known up front.  Each access's *pre-update* counter value is
  recovered with a segmented Hillis–Steele scan over packed 4-state
  transition maps (a 2-bit counter is a 4-state FSM, so a whole
  counter-function composition fits in one byte and composition is a 64K
  lookup table);
* the BTB (LRU, set-associative) and RSB (bounded stack) remain genuinely
  sequential, but replay as a slim Python loop over pre-computed integer
  keys — no objects, no hashing, no attribute chasing — touching only the
  branches that actually access them.

Epochs are chunked between protection events so event semantics stay exact:
OS events delimit epochs, STBPU token swaps (context/mode changes) start new
chunks, and an STBPU re-randomization fired by the monitoring counters ends
the chunk *at the firing access* — scans commit only the executed prefix (the
scan composition is pure until committed) and replay resumes under the fresh
token.  The parity tests pin all of this to byte-identical results against
both scalar paths.

TAGE and Perceptron direction components have no closed-form counter scan —
TAGE allocation rewrites tags mid-span and perceptron training feeds its own
weights back — so both replay through *span steppers*: every prediction input
(folded histories, table indices and tags, hit bits, dot-product totals) is
precomputed for a whole span with array kernels, and a slim per-conditional
step over plain lists applies the sequential updates.  Where the sequential
dependence bites, the steppers speculate in the trace-specialization style:
the TAGE stepper precomputes tagged-table hit bits against span-start tags
and repairs exactly the later same-index accesses when an allocation rewrites
an entry; the perceptron stepper batches dot-products for a block of
accesses from a weight snapshot under a "no row retrained since the
snapshot" guard, and on a guard failure (aliasing conflict / saturation
already applied) commits the executed prefix and re-specializes the rest of
the block from live weights — the same commit/resume shape the epoch
chunking uses for mid-chunk re-randomizations.

Models opt in via ``vector_kernel()``; models with neither a kernel nor a
stepper fall back to the PR-2 columnar fast path with a logged notice.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.bpu.common import PredictorStats
from repro.trace.branch import (
    VIRTUAL_ADDRESS_MASK,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
)

logger = logging.getLogger("repro.sim.vector")

_FALLBACK_LOGGED: set[str] = set()

# Branch-type codes, mirroring repro.trace.branch.BRANCH_TYPE_CODES.
_COND, _DJ, _DC, _IJ, _IC, _RET = 0, 1, 2, 3, 4, 5

# Structural-loop opcodes.
_OP_LOOKUP1 = 0   # conditional predicted-taken, or direct: mode-1 lookup (+update if taken)
_OP_UPDATE1 = 1   # conditional predicted not-taken but taken: mode-1 update only
_OP_INDIRECT = 2  # mode-2 lookup, mode-1 fallback, mode-2 update if taken
_OP_RETURN = 3    # RSB pop; mode-2 lookup on underflow; mode-2 update if taken

_U64 = np.uint64


def _pack_map(states: tuple[int, int, int, int]) -> int:
    return states[0] | (states[1] << 2) | (states[2] << 4) | (states[3] << 6)


#: Packed 4-state transition maps of a 2-bit saturating counter.
MAP_IDENTITY = _pack_map((0, 1, 2, 3))
MAP_INCREMENT = _pack_map((1, 2, 3, 3))
MAP_DECREMENT = _pack_map((0, 0, 1, 2))


def _build_compose_table() -> np.ndarray:
    """``COMPOSE[a, b]`` = packed map "apply ``a`` first, then ``b``"."""
    codes = np.arange(256, dtype=np.uint16)
    shifts = 2 * np.arange(4, dtype=np.uint16)
    applied_a = (codes[:, None] >> shifts[None, :]) & 3            # [a, state]
    composed = (codes[None, :, None] >> (2 * applied_a[:, None, :])) & 3
    return (composed << shifts[None, None, :]).sum(axis=2).astype(np.uint8)


COMPOSE = _build_compose_table()


class _CounterScan:
    """A completed (but uncommitted) segmented counter scan over one table."""

    __slots__ = ("order", "idx_sorted", "inclusive", "init_states")

    def __init__(self, order, idx_sorted, inclusive, init_states):
        self.order = order
        self.idx_sorted = idx_sorted
        self.inclusive = inclusive
        self.init_states = init_states

    def commit(self, table: np.ndarray, upto: int | None = None) -> None:
        """Scatter final per-index counter states back into ``table``.

        ``upto`` restricts the commit to accesses with original ordinal
        ``< upto`` (the executed prefix when an STBPU re-randomization fired
        mid-chunk); ``None`` commits every access.
        """
        idx_sorted = self.idx_sorted
        count = idx_sorted.shape[0]
        if count == 0:
            return
        if upto is None:
            last = np.empty(count, dtype=bool)
            last[-1] = True
            np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=last[:-1])
            positions = np.flatnonzero(last)
        else:
            selected = np.flatnonzero(self.order < upto)
            if selected.shape[0] == 0:
                return
            idx_selected = idx_sorted[selected]
            last = np.empty(selected.shape[0], dtype=bool)
            last[-1] = True
            np.not_equal(idx_selected[1:], idx_selected[:-1], out=last[:-1])
            positions = selected[last]
        table[idx_sorted[positions]] = (
            self.inclusive[positions] >> (self.init_states[positions] << 1)) & 3


def _scan_counters(indices: np.ndarray, maps: np.ndarray, table: np.ndarray,
                   order: np.ndarray | None = None,
                   ) -> tuple[np.ndarray, _CounterScan | None, np.ndarray]:
    """Pre-update counter values for a stream of (index, transition) accesses.

    Returns ``(pre_states, scan, order)`` where ``pre_states[k]`` is the
    counter value access ``k`` observes *before* its own update, ``scan``
    commits the final states, and ``order`` is the stable argsort of
    ``indices`` (reusable for further scans over the same index stream).
    """
    count = indices.shape[0]
    if count == 0:
        empty = np.empty(0, dtype=np.uint8)
        return empty, None, np.empty(0, dtype=np.int64)
    if order is None:
        order = np.argsort(indices, kind="stable")
    idx_sorted = indices[order]
    inclusive = maps[order].copy()
    shift = 1
    while shift < count:
        same = idx_sorted[shift:] == idx_sorted[:-shift]
        composed = COMPOSE[inclusive[:-shift], inclusive[shift:]]
        inclusive[shift:] = np.where(same, composed, inclusive[shift:])
        shift <<= 1
    first = np.empty(count, dtype=bool)
    first[0] = True
    np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=first[1:])
    exclusive = np.empty_like(inclusive)
    exclusive[1:] = inclusive[:-1]
    exclusive[first] = MAP_IDENTITY
    init_states = table[idx_sorted]
    pre_sorted = (exclusive >> (init_states << 1)) & 3
    pre = np.empty(count, dtype=np.uint8)
    pre[order] = pre_sorted
    return pre, _CounterScan(order, idx_sorted, inclusive, init_states), order


def _ghr_window(outcomes: np.ndarray, seed_value: int, bits: int,
                ) -> tuple[np.ndarray, np.ndarray]:
    """Per-access GHR values (before each push) plus the extended bit stream.

    ``outcomes`` is the uint64 0/1 stream of conditional outcomes in one
    chunk; ``seed_value`` is the register value carried into the chunk.  The
    extended stream (seed bits then outcomes) is returned so callers can
    reconstruct the register value after any prefix with :func:`_ghr_value_at`.
    """
    count = outcomes.shape[0]
    extended = np.empty(count + bits, dtype=np.uint64)
    for position in range(bits):
        extended[position] = (seed_value >> (bits - 1 - position)) & 1
    extended[bits:] = outcomes
    values = np.zeros(count, dtype=np.uint64)
    for distance in range(1, bits + 1):
        values += extended[bits - distance: bits - distance + count] << _U64(distance - 1)
    return values, extended


def _ghr_value_at(extended: np.ndarray, executed: int, bits: int) -> int:
    """Register value after ``executed`` pushes of the extended stream."""
    value = 0
    for distance in range(bits):
        value |= int(extended[executed + bits - 1 - distance]) << distance
    return value


def _bhb_states(mixed: np.ndarray, seed_value: int, bits: int) -> np.ndarray:
    """BHB register value after ``c`` pushes, for every ``c`` in ``0..len``.

    The BHB recurrence ``v = ((v << 2) & mask) ^ mixed`` is GF(2)-linear, so
    the state after ``c`` pushes is the XOR of the last ``⌈bits/2⌉`` pushed
    values at staggered shifts plus the carried seed — a sliding-window XOR
    kernel rather than a sequential loop.
    """
    update_count = mixed.shape[0]
    window = (bits - 1) // 2 + 1
    states = np.zeros(update_count + 1, dtype=np.uint64)
    for distance in range(1, min(window, update_count) + 1):
        states[distance:] ^= mixed[: update_count - distance + 1] << _U64(2 * (distance - 1))
    mask = (1 << bits) - 1
    for c in range(0, min(window, update_count + 1)):
        seed_term = (seed_value << (2 * c)) & mask
        if seed_term:
            states[c] ^= _U64(seed_term)
    states &= _U64(mask)
    return states


def _extend_outcomes(outcomes: list, appended, max_outcomes: int, *,
                     slack: int = 256) -> None:
    """Exactly emulate a deferred-trim append-only history list.

    ``slack=256`` matches ``HistoryState.record_conditional``; the TAGE
    private global history trims with the same shape but ``slack=64``
    (``TAGEPredictor._push_history``).
    """
    block = max_outcomes + slack
    existing = len(outcomes)
    appended = list(appended)
    total = existing + len(appended)
    if total <= block:
        outcomes.extend(appended)
        return
    # First trim fires at the append that pushes the length past ``block``;
    # afterwards the length cycles between ``max_outcomes`` and ``block``.
    first_trim = block + 1 - existing
    period = block + 1 - max_outcomes
    final_length = max_outcomes + ((len(appended) - first_trim) % period)
    combined = outcomes + appended
    outcomes[:] = combined[len(combined) - final_length:]


#: Upper bound on one stepper span (see ``_CompositeEngine._run_span_stepper``).
_STEPPER_SPAN_LIMIT = 4096


def _strided_parity(bits: np.ndarray, width: int) -> np.ndarray:
    """Per-residue running parity: ``out[i]`` is the parity of
    ``bits[i % width], bits[i % width + width], ..., bits[i]``."""
    length = bits.shape[0]
    rows = -(-length // width)
    grid = np.zeros((rows, width), dtype=np.int64)
    grid.ravel()[:length] = bits
    # One axis-0 cumsum covers every residue class at once: column ``r`` of the
    # row-major grid is exactly the stride-``width`` slice starting at ``r``.
    np.cumsum(grid, axis=0, out=grid)
    parity = grid.ravel()[:length]
    parity &= 1
    return parity.view(np.uint64)


def _fold_values(parity: np.ndarray, pad: int, carried: int, count: int,
                 history_length: int, width: int) -> np.ndarray:
    """Folded-history register values for ``count`` consecutive predictions.

    Closed form of TAGE's :class:`~repro.bpu.tage._IncrementalFold`: after the
    register has absorbed a bit stream, its value is the XOR of the newest
    ``history_length`` bits placed at staggered positions —
    ``XOR_k stream[-1-k] << (k % width)`` — with missing (pre-stream) bits
    reading as 0.  ``parity`` is :func:`_strided_parity` of the extended
    stream ``[0]*pad + carried_history + span_outcomes``; the XOR of any
    same-residue run collapses to two parity reads, so each of the
    ``min(width, history_length)`` bit planes costs one vector XOR.
    ``pad`` must be at least ``history_length + width`` so every read stays
    in bounds.
    """
    if parity.dtype != np.uint64:
        parity = parity.view(np.uint64)
    first_newest = pad + carried - 1
    plane_count = min(width, history_length)
    if count * plane_count <= 16384:
        # Short spans: one 2-D gather beats a per-plane Python loop.
        planes = np.arange(plane_count, dtype=np.int64)
        chunks = (history_length - planes + width - 1) // width
        high_idx = ((first_newest + np.arange(count, dtype=np.int64))[None, :]
                    - planes[:, None])
        low_idx = high_idx - (chunks * width)[:, None]
        bits = parity[high_idx] ^ parity[low_idx]
        bits <<= planes[:, None].astype(np.uint64)
        return np.bitwise_or.reduce(bits, axis=0)
    values = np.zeros(count, dtype=np.uint64)
    plane_bits = np.empty(count, dtype=np.uint64)
    for plane in range(plane_count):
        chunks = (history_length - plane + width - 1) // width
        high = first_newest - plane
        low = high - chunks * width
        # ``j0`` is an arange, so each bit plane's reads are contiguous
        # slices — views, not gathers.
        np.bitwise_xor(parity[high:high + count], parity[low:low + count],
                       out=plane_bits)
        np.left_shift(plane_bits, _U64(plane), out=plane_bits)
        values |= plane_bits
    return values


def _fold_register_value(ghist: list, history_length: int, width: int) -> int:
    """The same closed form for one register over a final history list."""
    value = 0
    length = len(ghist)
    for k in range(min(history_length, length)):
        if ghist[length - 1 - k]:
            value ^= 1 << (k % width)
    return value


def _ghr_commit(seed: int, executed_bits, bits: int) -> int:
    """GHR register value after pushing ``executed_bits`` onto ``seed``."""
    mask = (1 << bits) - 1
    tail = executed_bits[-bits:]
    packed = 0
    for bit in tail:
        packed = (packed << 1) | (1 if bit else 0)
    if len(executed_bits) >= bits:
        return packed & mask
    return ((seed << len(executed_bits)) | packed) & mask


class _MonitorMirror:
    """Loop-local mirror of a :class:`RerandomizationMonitor`'s counters."""

    __slots__ = ("monitor", "mis_threshold", "ev_threshold", "dir_threshold",
                 "has_direction", "mis_remaining", "ev_remaining",
                 "dir_remaining", "observed_mis", "observed_ev", "fired")

    def __init__(self, monitor):
        config = monitor.config
        counters = monitor.counters
        self.monitor = monitor
        self.mis_threshold = config.misprediction_threshold
        self.ev_threshold = config.eviction_threshold
        self.has_direction = config.direction_misprediction_threshold is not None
        self.dir_threshold = (config.direction_misprediction_threshold
                              if self.has_direction
                              else config.misprediction_threshold)
        self.mis_remaining = counters.mispredictions_remaining
        self.ev_remaining = counters.evictions_remaining
        self.dir_remaining = counters.direction_remaining
        self.observed_mis = monitor.observed_mispredictions
        self.observed_ev = monitor.observed_evictions
        self.fired = monitor.fired_count

    def write_back(self) -> None:
        monitor = self.monitor
        counters = monitor.counters
        counters.mispredictions_remaining = self.mis_remaining
        counters.evictions_remaining = self.ev_remaining
        counters.direction_remaining = self.dir_remaining
        monitor.observed_mispredictions = self.observed_mis
        monitor.observed_evictions = self.observed_ev
        monitor.fired_count = self.fired


class _SpanResult:
    """Outcome of one vectorised chunk: how far it ran and whether it fired."""

    __slots__ = ("executed_to", "fired")

    def __init__(self, executed_to: int, fired: bool):
        self.executed_to = executed_to
        self.fired = fired


#: The guarded-stepper protocol: every span stepper class must implement all
#: of these (enforced by the ``backend-parity`` lint rule).  ``begin``/
#: ``finish`` bracket a replay, ``flush`` mirrors a predictor flush,
#: ``prepare_span`` speculatively batches one span's prediction inputs, and
#: ``commit_span`` trains on the span's resolved outcomes (repairing or
#: re-batching when a guard failed mid-span).
STEPPER_PROTOCOL = ("begin", "prepare_span", "commit_span", "flush", "finish")


class _TAGEStepper:
    """Span-stepping replay of a :class:`~repro.bpu.tage.TAGEPredictor`.

    Prediction inputs for a whole span — per-table folded histories (via the
    prefix-parity closed form of the incremental fold), table indices and
    tags (vectorised mapping kernels), tagged-entry hit bits, bimodal / loop /
    statistical-corrector indices — are precomputed with array kernels; a
    slim per-conditional closure then applies the scalar predict/update
    algorithm over plain lists in exact order.

    The speculative piece is the hit-bit precompute: it assumes span-start
    tag-store contents, but a TAGE allocation rewrites a tag mid-span.  An
    allocation scans the remainder of the span's index column for later
    accesses of the overwritten entry and repairs exactly the precomputed
    hit bits the rewrite invalidated — speculate on "no allocation touches
    my entry", patch precisely where that guard fails.
    """

    __slots__ = (
        "direction", "maps", "config", "_pad", "valid", "tags", "counters",
        "useful", "bimodal", "sc_tables", "loop_valid", "loop_tags",
        "loop_past", "loop_current", "loop_conf", "ghist", "use_alt",
        "access_count",
    )

    guarded = True

    def __init__(self, direction, maps):
        self.direction = direction
        self.maps = maps
        self.config = direction.config
        self._pad = direction._max_history + 64

    # ------------------------------------------------------------------ state

    def begin(self) -> None:
        direction = self.direction
        self.valid = [np.array([entry.valid for entry in table], dtype=bool)
                      for table in direction._tables]
        self.tags = [np.array([entry.tag for entry in table], dtype=np.int64)
                     for table in direction._tables]
        self.counters = [[entry.counter for entry in table]
                         for table in direction._tables]
        self.useful = [[entry.useful for entry in table]
                       for table in direction._tables]
        self.bimodal = direction._bimodal          # live list, mutated in place
        self.sc_tables = direction._sc_tables      # live lists
        loop = direction._loop_table
        self.loop_valid = [entry.valid for entry in loop]
        self.loop_tags = [entry.tag for entry in loop]
        self.loop_past = [entry.past_iterations for entry in loop]
        self.loop_current = [entry.current_iterations for entry in loop]
        self.loop_conf = [entry.confidence for entry in loop]
        self.ghist = direction._ghist              # live list of 0/1 ints
        self.use_alt = direction._use_alt_on_na
        self.access_count = direction._access_count

    def finish(self) -> None:
        direction = self.direction
        for table_no, table in enumerate(direction._tables):
            valid = self.valid[table_no].tolist()
            tags = self.tags[table_no].tolist()
            counters = self.counters[table_no]
            useful = self.useful[table_no]
            for position, entry in enumerate(table):
                entry.valid = valid[position]
                entry.tag = tags[position]
                entry.counter = counters[position]
                entry.useful = useful[position]
        for position, entry in enumerate(direction._loop_table):
            entry.valid = self.loop_valid[position]
            entry.tag = self.loop_tags[position]
            entry.past_iterations = self.loop_past[position]
            entry.current_iterations = self.loop_current[position]
            entry.confidence = self.loop_conf[position]
        direction._use_alt_on_na = self.use_alt
        direction._access_count = self.access_count
        # The incremental fold registers equal the closed form over the final
        # history (the same identity the span kernels use), so they are
        # recomputed once here instead of being carried bit by bit.
        ghist = self.ghist
        for fold in (*direction._index_folds, *direction._tag_folds):
            fold.value = _fold_register_value(
                ghist, fold.history_length, fold.folded_bits)

    def flush(self) -> None:
        """Emulate ``TAGEPredictor.flush`` on the adopted state (note: the
        scalar flush keeps loop tags and the access count)."""
        for table_no in range(len(self.valid)):
            self.valid[table_no][:] = False
            self.tags[table_no][:] = 0
            self.counters[table_no] = [0] * len(self.counters[table_no])
            self.useful[table_no] = [0] * len(self.useful[table_no])
        bimodal = self.bimodal
        for position in range(len(bimodal)):
            bimodal[position] = 1
        for position in range(len(self.loop_valid)):
            self.loop_valid[position] = False
            self.loop_conf[position] = 0
            self.loop_current[position] = 0
            self.loop_past[position] = 0
        for table in self.sc_tables:
            for position in range(len(table)):
                table[position] = 0
        self.ghist.clear()
        self.use_alt = 8

    def commit_span(self, cond_takens, executed_cond: int) -> None:
        self.access_count += executed_cond
        if executed_cond:
            _extend_outcomes(
                self.ghist,
                cond_takens[:executed_cond].astype(np.int64).tolist(),
                self.direction._max_history, slack=64)

    # ------------------------------------------------------------------- spans

    def prepare_span(self, cond_ips, cond_ctx, cond_takens, outcomes):
        config = self.config
        direction = self.direction
        maps = self.maps
        ncond = cond_ips.shape[0]
        pad = self._pad

        # ---------------------------------------- folded histories per table
        ghist_tail = self.ghist[-direction._max_history:]
        carried = len(ghist_tail)
        ext = np.zeros(pad + carried + ncond, dtype=np.int64)
        if carried:
            ext[pad:pad + carried] = ghist_tail
        ext[pad + carried:] = cond_takens
        parity_cache: dict[int, np.ndarray] = {}

        def parity(width: int) -> np.ndarray:
            cached = parity_cache.get(width)
            if cached is None:
                cached = _strided_parity(ext, width)
                parity_cache[width] = cached
            return cached

        # ------------------------------------- indices / tags / hit bits
        table_count = config.table_count
        history_lengths = config.history_lengths
        index_widths = direction._table_index_bits
        tag_widths = config.tag_bits

        def batched_maps(method, fold_list, widths):
            """One vectorised map call per distinct output width (the map
            kernels accept per-element table numbers, so same-width tables
            share a single hash pass)."""
            out = [None] * table_count
            groups: dict[int, list[int]] = {}
            for table_no, width in enumerate(widths):
                groups.setdefault(width, []).append(table_no)
            for width, members in groups.items():
                if len(members) == 1:
                    table_no = members[0]
                    out[table_no] = np.asarray(method(
                        cond_ips, fold_list[table_no], table_no, width,
                        cond_ctx))
                    continue
                stacked = np.asarray(method(
                    np.concatenate([cond_ips] * len(members)),
                    np.concatenate([fold_list[t] for t in members]),
                    np.repeat(np.asarray(members, dtype=np.uint64), ncond),
                    width,
                    None if cond_ctx is None
                    else np.concatenate([cond_ctx] * len(members))))
                for position, table_no in enumerate(members):
                    out[table_no] = stacked[position * ncond:
                                            (position + 1) * ncond]
            return out

        fold_idx = [_fold_values(parity(index_widths[t]), pad, carried, ncond,
                                 history_lengths[t], index_widths[t])
                    for t in range(table_count)]
        fold_tag = [_fold_values(parity(tag_widths[t]), pad, carried, ncond,
                                 history_lengths[t], tag_widths[t])
                    for t in range(table_count)]
        idx_list = batched_maps(maps.tage_indices, fold_idx, index_widths)
        tag_list = batched_maps(maps.tage_tags, fold_tag, tag_widths)

        hit_bits = np.zeros(ncond, dtype=np.int64)
        idx_matrix = np.empty((table_count, ncond), dtype=np.int64)
        tag_matrix = np.empty((table_count, ncond), dtype=np.int64)
        for table_no, entries in enumerate(config.tagged_table_entries):
            idx = (idx_list[table_no] % _U64(entries)).astype(np.int64)
            tag = tag_list[table_no].astype(np.int64)
            idx_matrix[table_no] = idx
            tag_matrix[table_no] = tag
            hit = self.valid[table_no][idx] & (self.tags[table_no][idx] == tag)
            hit_bits |= hit.astype(np.int64) << table_no
        hbs = hit_bits.tolist()

        # ------------------------------------------------- bimodal and loop
        bim_idx = (np.asarray(maps.pht1(cond_ips, cond_ctx))
                   % _U64(config.bimodal_entries)).astype(np.int64).tolist()
        use_loop = config.use_loop_predictor
        if use_loop:
            loop_idx = ((cond_ips >> _U64(2)) % _U64(config.loop_entries)
                        ).astype(np.int64).tolist()
            loop_tag_vals = ((cond_ips >> _U64(8)) & _U64(0x3FF)
                             ).astype(np.int64).tolist()
        else:
            loop_idx = loop_tag_vals = None

        # ------------------------------------------- statistical corrector
        use_sc = config.use_statistical_corrector
        sc_idx: list[list[int]] = []
        if use_sc:
            max_sc = max(config.sc_history_lengths)
            tail = outcomes[-max_sc:]
            carried_sc = len(tail)
            ext_sc = np.zeros(carried_sc + ncond, dtype=np.int64)
            if carried_sc:
                ext_sc[:carried_sc] = np.array(tail, dtype=bool)
            ext_sc[carried_sc:] = cond_takens
            for component, depth in enumerate(config.sc_history_lengths):
                folded = np.zeros(ncond, dtype=np.int64)
                cold = max(0, min(depth - carried_sc, ncond))
                for position in range(cold):
                    # Shorter-than-depth histories anchor fold positions at
                    # the oldest outcome (``FoldedHistory.fold``).
                    value = 0
                    for offset in range(carried_sc + position):
                        if ext_sc[offset]:
                            value ^= 1 << (offset % 10)
                    folded[position] = value
                if ncond > cold:
                    windows = np.lib.stride_tricks.sliding_window_view(
                        ext_sc, depth)
                    block = windows[carried_sc + cold - depth:
                                    carried_sc + ncond - depth]
                    warm = np.zeros(ncond - cold, dtype=np.int64)
                    for position in range(depth):
                        warm ^= block[:, position] << (position % 10)
                    folded[cold:] = warm
                mixed = ((cond_ips >> _U64(2))
                         ^ (folded.astype(np.uint64) * _U64(3))
                         ^ _U64(component * 0x61))
                sc_idx.append((mixed % _U64(config.sc_table_entries))
                              .astype(np.int64).tolist())
        sc_count = len(sc_idx)
        if sc_count == 3:
            sc_i0, sc_i1, sc_i2 = sc_idx
            sc_t0, sc_t1, sc_t2 = self.sc_tables
        else:
            sc_i0 = sc_i1 = sc_i2 = sc_t0 = sc_t1 = sc_t2 = None

        # ----------------------------------------------------- the step closure
        takens_list = cond_takens.tolist()
        idx_rows = idx_matrix.T.tolist()
        # Next-occurrence chains for allocation repair, built lazily: a table
        # pays for its chain (one stable argsort) only on its first
        # allocation this span.
        span_next: list[list[int] | None] = [None] * table_count
        span_tags: list[list[int] | None] = [None] * table_count
        counters = self.counters
        useful = self.useful
        valid_arrays = self.valid
        tag_arrays = self.tags
        bimodal = self.bimodal
        sc_tables = self.sc_tables
        loop_valid = self.loop_valid
        loop_tags = self.loop_tags
        loop_past = self.loop_past
        loop_current = self.loop_current
        loop_conf = self.loop_conf
        low, high = direction._counter_limits()
        useful_max = (1 << config.useful_bits) - 1
        reset_period = config.useful_reset_period
        sc_threshold = direction._sc_threshold
        sc_train_band = sc_threshold * 2
        # Spans are far shorter than the useful-reset period, so at most one
        # ordinal inside this span can trip the periodic reset; the running
        # access count itself is committed once per span (``commit_span``).
        reset_ordinal = (-(self.access_count + 1)) % reset_period
        if reset_ordinal >= ncond:
            reset_ordinal = -1

        def step(ordinal: int) -> bool:
            taken = takens_list[ordinal]

            # ---------------------------------------------------- predict
            bim_position = bim_idx[ordinal]
            bimodal_taken = bimodal[bim_position] >= 2
            hit_mask = hbs[ordinal]
            if hit_mask:
                idx_row = idx_rows[ordinal]
                provider = hit_mask.bit_length() - 1
                provider_position = idx_row[provider]
                provider_counter = counters[provider][provider_position]
                provider_taken = provider_counter >= 0
                rest = hit_mask ^ (1 << provider)
                if rest:
                    alt = rest.bit_length() - 1
                    alt_taken = counters[alt][idx_row[alt]] >= 0
                else:
                    alt_taken = bimodal_taken
                weak = (useful[provider][provider_position] == 0
                        and (provider_counter == -1 or provider_counter == 0))
                if weak and self.use_alt >= 8:
                    tage_taken = alt_taken
                else:
                    tage_taken = provider_taken
            else:
                provider = -1
                weak = False
                tage_taken = alt_taken = bimodal_taken
            prediction_taken = tage_taken

            if use_loop:
                loop_position = loop_idx[ordinal]
                loop_tag = loop_tag_vals[ordinal]
                loop_match = (loop_valid[loop_position]
                              and loop_tags[loop_position] == loop_tag)
                if loop_match and loop_conf[loop_position] >= 3:
                    prediction_taken = (loop_current[loop_position] + 1
                                        < loop_past[loop_position])
            if sc_count == 3:
                # Unrolled for the standard three-component corrector.
                total = (2 if prediction_taken else -2) \
                    + sc_t0[sc_i0[ordinal]] + sc_t1[sc_i1[ordinal]] \
                    + sc_t2[sc_i2[ordinal]]
                sc_used = False
                if ((total >= sc_threshold or total <= -sc_threshold)
                        and (total >= 0) != prediction_taken):
                    sc_used = True
                    prediction_taken = total >= 0
            elif sc_count:
                total = 2 if prediction_taken else -2
                for component in range(sc_count):
                    total += sc_tables[component][sc_idx[component][ordinal]]
                sc_used = False
                if ((total >= sc_threshold or total <= -sc_threshold)
                        and (total >= 0) != prediction_taken):
                    sc_used = True
                    prediction_taken = total >= 0

            # ----------------------------------------------------- update
            if use_loop:
                if loop_match:
                    if taken:
                        loop_current[loop_position] += 1
                    else:
                        if (loop_current[loop_position]
                                == loop_past[loop_position]):
                            confidence = loop_conf[loop_position]
                            loop_conf[loop_position] = (
                                confidence + 1 if confidence < 7 else 7)
                        else:
                            loop_past[loop_position] = (
                                loop_current[loop_position])
                            loop_conf[loop_position] = 0
                        loop_current[loop_position] = 0
                elif not taken:
                    if (not loop_valid[loop_position]
                            or loop_conf[loop_position] == 0):
                        loop_valid[loop_position] = True
                        loop_tags[loop_position] = loop_tag
                        loop_past[loop_position] = 0
                        loop_current[loop_position] = 0
                        loop_conf[loop_position] = 0

            if sc_count and (sc_used or -sc_train_band < total < sc_train_band):
                delta = 1 if taken else -1
                if sc_count == 3:
                    position = sc_i0[ordinal]
                    value = sc_t0[position] + delta
                    sc_t0[position] = (-31 if value < -31
                                       else (31 if value > 31 else value))
                    position = sc_i1[ordinal]
                    value = sc_t1[position] + delta
                    sc_t1[position] = (-31 if value < -31
                                       else (31 if value > 31 else value))
                    position = sc_i2[ordinal]
                    value = sc_t2[position] + delta
                    sc_t2[position] = (-31 if value < -31
                                       else (31 if value > 31 else value))
                else:
                    for component in range(sc_count):
                        table = sc_tables[component]
                        position = sc_idx[component][ordinal]
                        value = table[position] + delta
                        table[position] = (-31 if value < -31
                                           else (31 if value > 31 else value))

            if hit_mask:
                if weak and tage_taken != alt_taken:
                    if alt_taken == taken:
                        if self.use_alt < 15:
                            self.use_alt += 1
                    elif self.use_alt > 0:
                        self.use_alt -= 1
                table = counters[provider]
                value = table[provider_position] + 1 if taken else (
                    table[provider_position] - 1)
                table[provider_position] = (high if value > high
                                            else (low if value < low else value))
                if tage_taken != alt_taken:
                    table = useful[provider]
                    if tage_taken == taken:
                        if table[provider_position] < useful_max:
                            table[provider_position] += 1
                    elif table[provider_position] > 0:
                        table[provider_position] -= 1
            else:
                value = bimodal[bim_position]
                bimodal[bim_position] = ((value + 1 if value < 3 else 3)
                                         if taken
                                         else (value - 1 if value > 0 else 0))

            if tage_taken != taken:
                start = provider + 1
                allocated = False
                idx_row = idx_rows[ordinal]
                for table_no in range(start, table_count):
                    position = idx_row[table_no]
                    if (not valid_arrays[table_no][position]
                            or useful[table_no][position] == 0):
                        new_tag = int(tag_matrix[table_no, ordinal])
                        valid_arrays[table_no][position] = True
                        tag_arrays[table_no][position] = new_tag
                        counters[table_no][position] = 0 if taken else -1
                        useful[table_no][position] = 0
                        # Guard repair: later accesses of this span computed
                        # their hit bit against the overwritten tag — walk
                        # this entry's same-index followers and patch them.
                        chain = span_next[table_no]
                        if chain is None:
                            idx_col = idx_matrix[table_no]
                            nxt = np.full(ncond, -1, dtype=np.int64)
                            if ncond > 1:
                                order = np.argsort(idx_col, kind="stable")
                                ordered = idx_col[order]
                                same = ordered[1:] == ordered[:-1]
                                nxt[order[:-1][same]] = order[1:][same]
                            chain = span_next[table_no] = nxt.tolist()
                            span_tags[table_no] = tag_matrix[table_no].tolist()
                        table_tags = span_tags[table_no]
                        bit = 1 << table_no
                        follower = chain[ordinal]
                        while follower != -1:
                            if table_tags[follower] == new_tag:
                                hbs[follower] |= bit
                            else:
                                hbs[follower] &= ~bit
                            follower = chain[follower]
                        allocated = True
                        break
                if not allocated:
                    for table_no in range(start, table_count):
                        position = idx_row[table_no]
                        if useful[table_no][position] > 0:
                            useful[table_no][position] -= 1

            if ordinal == reset_ordinal:
                for table in useful:
                    for position in range(len(table)):
                        table[position] >>= 1

            return prediction_taken

        return step


class _PerceptronStepper:
    """Span-stepping replay of a :class:`~repro.bpu.perceptron.PerceptronPredictor`.

    Dot products are batched per block from a weight-table snapshot gather
    over the sliding ±1 history window; the per-conditional step runs under
    the guard "no weight row in this block was retrained since the snapshot".
    Training a row (which also applies saturation or an aliasing write)
    fails the guard for that row's later accesses — those abort to a live
    dot product while the rest of the block's speculative totals, whose
    rows are untouched, stay committed and resume exactly.
    """

    __slots__ = ("direction", "maps", "table_size", "history_length",
                 "weights")

    guarded = True

    #: Block size for the speculative dot-product batches.
    _BLOCK = 128

    def __init__(self, direction, maps):
        self.direction = direction
        self.maps = maps
        config = direction.config
        self.table_size = config.table_size
        self.history_length = config.history_length

    def begin(self) -> None:
        self.weights = np.array(self.direction._weights, dtype=np.int64)

    def finish(self) -> None:
        self.direction._weights = self.weights.tolist()

    def flush(self) -> None:
        self.weights.fill(0)

    def commit_span(self, cond_takens, executed_cond: int) -> None:
        pass  # the perceptron keeps no history of its own

    def prepare_span(self, cond_ips, cond_ctx, cond_takens, outcomes):
        depth = self.history_length
        ncond = cond_ips.shape[0]
        rows = np.asarray(self.maps.perceptron_rows(
            cond_ips, self.table_size, cond_ctx)).astype(np.int64)
        tail = outcomes[-depth:]
        carried = len(tail)
        # ±1 stream: "not taken" pads for missing pre-trace history, then the
        # carried outcomes, then this span's outcomes.
        ext = np.full(depth + carried + ncond, -1, dtype=np.int64)
        if carried:
            ext[depth:depth + carried][np.array(tail, dtype=bool)] = 1
        ext[depth + carried:] = np.where(cond_takens, 1, -1)
        windows = np.lib.stride_tricks.sliding_window_view(ext, depth)

        weights = self.weights
        rows_list = rows.tolist()
        takens_list = cond_takens.tolist()
        threshold = self.direction._threshold
        limit = self.direction._weight_limit
        floor = -limit - 1
        block = self._BLOCK

        state = {"lo": 0, "hi": 0, "totals": None}
        trained: set[int] = set()

        def specialize(start: int) -> None:
            stop = min(ncond, start + block)
            selected = rows[start:stop]
            gathered = weights[selected]
            window_block = windows[carried + start:carried + stop]
            state["totals"] = (gathered[:, 0]
                               + (gathered[:, 1:] * window_block).sum(axis=1)
                               ).tolist()
            state["lo"] = start
            state["hi"] = stop
            trained.clear()

        def step(ordinal: int) -> bool:
            row = rows_list[ordinal]
            if ordinal >= state["hi"]:
                specialize(ordinal)
            if row in trained:
                # Guard failure: this row was retrained after the block
                # snapshot, so its batched total is stale.  Other rows'
                # weights are untouched — abort only this access to a live
                # dot product and keep the rest of the block's prefix.
                weight_row = weights[row]
                total = int(weight_row[0]) + int(
                    weight_row[1:] @ windows[carried + ordinal])
            else:
                total = state["totals"][ordinal - state["lo"]]
            taken = takens_list[ordinal]
            predicted = total >= 0
            if predicted != taken or -threshold <= total <= threshold:
                weight_row = weights[row]
                delta = 1 if taken else -1
                bias = weight_row[0] + delta
                weight_row[0] = (limit if bias > limit
                                 else (floor if bias < floor else bias))
                # In-place ±1 then clamp equals the scalar clamp(w ± bit):
                # one step overshoots the band by at most one on either side.
                history_row = weight_row[1:]
                if taken:
                    history_row += windows[carried + ordinal]
                else:
                    history_row -= windows[carried + ordinal]
                np.maximum(history_row, floor, out=history_row)
                np.minimum(history_row, limit, out=history_row)
                trained.add(row)
            return predicted

        return step


class _CompositeEngine:
    """Vector replay engine over one :class:`~repro.bpu.composite.CompositeBPU`.

    The engine adopts the composite's structures into flat arrays/lists on
    ``begin``, replays spans with :meth:`run_span`, and writes every structure
    back bit-exactly on ``finish``.  Wrapper kernels (flushing, conservative,
    STBPU) drive the span schedule and event semantics.
    """

    __slots__ = (
        "composite", "pht_maps", "btb_maps", "codec", "stepper", "sizes",
        "token_dependent", "bt_keys", "bt_tags", "bt_offsets", "bt_stored",
        "bt_stamps", "clock", "evictions", "ways", "set_count", "rsb",
        "rsb_capacity", "rsb_overflows", "rsb_underflows", "ghr_value",
        "bhb_value", "outcomes", "max_outcomes", "arrays", "n", "is_cond",
        "is_direct", "is_indirect", "is_return", "is_call", "is_ind_or_ret",
        "bhb_updates", "mixed", "fallthrough_ok", "high_ok", "base_opcode",
        "_mode1_cache", "_encoded_cache", "_push_cache", "dir_ok",
        "target_ok", "btb_hit", "btb_evict", "rsb_under", "one_table",
        "two_table", "choice_table",
    )

    def __init__(self, composite, pht_maps, btb_maps, codec, stepper=None):
        self.composite = composite
        self.pht_maps = pht_maps
        self.btb_maps = btb_maps
        self.codec = codec
        #: Direction stepper for non-SKL components (TAGE, Perceptron); when
        #: set, the per-span direction work routes through it instead of the
        #: closed-form counter scans.
        self.stepper = stepper
        self.sizes = composite.sizes
        self.token_dependent = bool(
            getattr(pht_maps, "token_dependent", False)
            or getattr(btb_maps, "token_dependent", False)
            or codec.token_dependent
        )

    # ------------------------------------------------------------------ state

    def begin(self, arrays) -> None:
        composite = self.composite
        sizes = self.sizes
        btb = composite.btb
        offset_bits = sizes.btb_offset_bits
        keys: list[int] = []
        tags: list[int] = []
        offsets: list[int] = []
        stored: list[int] = []
        stamps: list[int] = []
        for entries in btb._sets:
            for entry in entries:
                keys.append(((entry.tag << offset_bits) | entry.offset)
                            if entry.valid else -1)
                tags.append(entry.tag)
                offsets.append(entry.offset)
                stored.append(entry.stored_target)
                stamps.append(entry.lru_stamp)
        self.bt_keys = keys
        self.bt_tags = tags
        self.bt_offsets = offsets
        self.bt_stored = stored
        self.bt_stamps = stamps
        self.clock = btb._access_clock
        self.evictions = btb.eviction_count
        self.ways = btb.way_count
        self.set_count = btb.set_count

        if self.stepper is None:
            direction = composite.direction
            self.one_table = np.array(direction.one_level._values, dtype=np.uint8)
            self.two_table = np.array(direction.two_level._values, dtype=np.uint8)
            self.choice_table = np.array(direction.chooser._values, dtype=np.uint8)
        else:
            self.stepper.begin()

        rsb = composite.rsb
        self.rsb = list(rsb._stack)
        self.rsb_capacity = rsb.capacity
        self.rsb_overflows = rsb.overflow_count
        self.rsb_underflows = rsb.underflow_count

        history = composite.history
        self.ghr_value = history.ghr.value
        self.bhb_value = history.bhb.value
        self.outcomes = history.outcomes
        self.max_outcomes = history.max_outcomes

        # ---------------------------------------------- whole-trace invariants
        self.arrays = arrays
        ips = arrays.ips
        targets = arrays.targets
        types = arrays.types
        self.n = ips.shape[0]
        self.is_cond = types == _COND
        self.is_direct = (types == _DJ) | (types == _DC)
        self.is_indirect = (types == _IJ) | (types == _IC)
        self.is_return = types == _RET
        self.is_call = (types == _DC) | (types == _IC)
        self.is_ind_or_ret = self.is_indirect | self.is_return
        self.bhb_updates = arrays.takens & (self.is_cond | self.is_direct)
        self.mixed = (ips & _U64(0x3F_FFFF)) ^ ((targets & _U64(0x3F_FFFF)) << _U64(1))
        self.fallthrough_ok = ((ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)) == targets
        self.high_ok = (ips >> _U64(32)) == (targets >> _U64(32))
        opcode = np.empty(self.n, dtype=np.uint8)
        opcode[self.is_direct] = _OP_LOOKUP1
        opcode[self.is_indirect] = _OP_INDIRECT
        opcode[self.is_return] = _OP_RETURN
        self.base_opcode = opcode  # conditional entries filled per span

        self._mode1_cache = None
        self._encoded_cache = None
        self._push_cache = None
        if not self.token_dependent:
            self._mode1_cache = self._mode1_keys(slice(0, self.n))
            self._encoded_cache = np.asarray(self.codec.vector_encode(targets))
            self._push_cache = np.asarray(self.codec.vector_encode(
                (ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)))

        # Whole-trace result flags, filled span by span.
        self.dir_ok = np.ones(self.n, dtype=bool)
        self.target_ok = np.ones(self.n, dtype=bool)
        self.btb_hit = np.zeros(self.n, dtype=bool)
        self.btb_evict = np.zeros(self.n, dtype=bool)
        self.rsb_under = np.zeros(self.n, dtype=bool)

    def _mode1_keys(self, span: slice):
        arrays = self.arrays
        index, key = self.btb_maps.btb1(arrays.ips[span], arrays.context_ids[span])
        index = index.astype(np.int64)
        if self.set_count != self.sizes.btb_sets:
            index %= self.set_count
        return index * self.ways, key.astype(np.int64)

    def finish(self) -> None:
        composite = self.composite
        btb = composite.btb
        keys = self.bt_keys
        tags = self.bt_tags
        offsets = self.bt_offsets
        stored = self.bt_stored
        stamps = self.bt_stamps
        position = 0
        for entries in btb._sets:
            for entry in entries:
                entry.valid = keys[position] != -1
                entry.tag = tags[position]
                entry.offset = offsets[position]
                entry.stored_target = stored[position]
                entry.lru_stamp = stamps[position]
                position += 1
        btb._access_clock = self.clock
        btb.eviction_count = self.evictions

        if self.stepper is None:
            direction = composite.direction
            direction.one_level._values = self.one_table.tolist()
            direction.two_level._values = self.two_table.tolist()
            direction.chooser._values = self.choice_table.tolist()
        else:
            self.stepper.finish()

        rsb = composite.rsb
        rsb._stack = self.rsb
        rsb.overflow_count = self.rsb_overflows
        rsb.underflow_count = self.rsb_underflows

        history = composite.history
        history.ghr.value = self.ghr_value
        history.bhb.value = self.bhb_value

    def flush(self) -> None:
        """Emulate ``CompositeBPU.flush_predictor_state`` on the adopted state."""
        keys = self.bt_keys
        for position, key in enumerate(keys):
            if key != -1:
                keys[position] = -1
        self.rsb.clear()
        if self.stepper is None:
            self.one_table.fill(1)
            self.two_table.fill(1)
            self.choice_table.fill(1)
        else:
            self.stepper.flush()
        self.ghr_value = 0
        self.bhb_value = 0
        self.outcomes.clear()

    # ------------------------------------------------------------------- spans

    def run_span(self, lo: int, hi: int, monitor: _MonitorMirror | None = None,
                 ) -> _SpanResult:
        """Replay branches ``[lo, hi)`` under a constant mapping/codec key.

        With ``monitor`` set (STBPU), the structural loop additionally feeds
        the re-randomization counters and stops — state bit-exact — right
        after the access that exhausts one; the span result reports how far
        execution got so the caller can re-key and resume.
        """
        if hi <= lo:
            return _SpanResult(hi, False)
        if self.stepper is not None:
            return self._run_span_stepper(lo, hi, monitor)
        arrays = self.arrays
        span = slice(lo, hi)
        length = hi - lo
        ips = arrays.ips[span]
        targets = arrays.targets[span]
        takens = arrays.takens[span]
        contexts = arrays.context_ids[span]
        is_cond = self.is_cond[span]

        # ----------------------------------------------- direction prediction
        cond_rel = np.flatnonzero(is_cond)
        cond_takens = takens[cond_rel]
        ghr_pre, ghr_extended = _ghr_window(
            cond_takens.astype(np.uint64), self.ghr_value, self.sizes.ghr_bits)
        cond_ips = ips[cond_rel]
        cond_ctx = contexts[cond_rel]
        one_idx = np.asarray(self.pht_maps.pht1(cond_ips, cond_ctx)).astype(np.int64)
        two_idx = np.asarray(
            self.pht_maps.pht2(cond_ips, ghr_pre, cond_ctx)).astype(np.int64)
        entries = self.sizes.pht_entries
        if entries & (entries - 1):
            # Non-power-of-two tables: the scalar PatternHistoryTable wraps
            # every access with ``index % entries``; fold/mask outputs can
            # exceed the table, so apply the same wrap up front.
            one_idx %= entries
            two_idx %= entries
        updates = np.where(cond_takens, np.uint8(MAP_INCREMENT),
                           np.uint8(MAP_DECREMENT))
        one_pre, one_scan, one_order = _scan_counters(one_idx, updates, self.one_table)
        two_pre, two_scan, _ = _scan_counters(two_idx, updates, self.two_table)
        one_pred = one_pre > 1
        two_pred = two_pre > 1
        one_correct = one_pred == cond_takens
        two_correct = two_pred == cond_takens
        choice_updates = np.where(
            one_correct != two_correct,
            np.where(two_correct, np.uint8(MAP_INCREMENT), np.uint8(MAP_DECREMENT)),
            np.uint8(MAP_IDENTITY))
        choice_pre, choice_scan, _ = _scan_counters(
            one_idx, choice_updates, self.choice_table, order=one_order)
        predicted_taken_cond = np.where(choice_pre > 1, two_pred, one_pred)

        predicted_taken = np.zeros(length, dtype=bool)
        predicted_taken[cond_rel] = predicted_taken_cond

        # --------------------------------------------------------- histories
        update_mask = self.bhb_updates[span]
        mixed = self.mixed[span][update_mask]
        bhb_states = _bhb_states(mixed, self.bhb_value, self.sizes.bhb_bits)
        update_cum = np.cumsum(update_mask)
        ind_ret_rel = np.flatnonzero(self.is_ind_or_ret[span])
        updates_before = update_cum[ind_ret_rel] - update_mask[ind_ret_rel]
        bhb_at = bhb_states[updates_before]

        # ---------------------------------------------------------- BTB keys
        if self._mode1_cache is not None:
            mode1_base = self._mode1_cache[0][span]
            mode1_key = self._mode1_cache[1][span]
            encoded = self._encoded_cache[span]
            push_values = self._push_cache[span]
        else:
            mode1_base, mode1_key = self._mode1_keys(span)
            encoded = np.asarray(self.codec.vector_encode(targets))
            push_values = np.asarray(self.codec.vector_encode(
                (ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)))
        mode2_base = np.zeros(length, dtype=np.int64)
        mode2_key = np.zeros(length, dtype=np.int64)
        if ind_ret_rel.shape[0]:
            index2, key2 = self.btb_maps.btb2(
                ips[ind_ret_rel], bhb_at, contexts[ind_ret_rel])
            index2 = index2.astype(np.int64)
            if self.set_count != self.sizes.btb_sets:
                index2 %= self.set_count
            mode2_base[ind_ret_rel] = index2 * self.ways
            mode2_key[ind_ret_rel] = key2.astype(np.int64)

        # -------------------------------------------------------- direction ok
        dir_ok = ~is_cond | (predicted_taken == takens)
        self.dir_ok[span] = dir_ok

        # ------------------------------------------------------- participants
        opcode = self.base_opcode[span].copy()
        opcode[cond_rel] = np.where(predicted_taken_cond, np.uint8(_OP_LOOKUP1),
                                    np.uint8(_OP_UPDATE1))
        part_rel = np.flatnonzero(~is_cond | predicted_taken | takens)
        loop_result = self._structural_loop(
            opcode[part_rel].tolist(),
            takens[part_rel].tolist(),
            mode1_base[part_rel].tolist(),
            mode1_key[part_rel].tolist(),
            mode2_base[part_rel].tolist(),
            mode2_key[part_rel].tolist(),
            encoded[part_rel].tolist(),
            self.high_ok[span][part_rel].tolist(),
            self.fallthrough_ok[span][part_rel].tolist(),
            self.is_call[span][part_rel].tolist(),
            push_values[part_rel].tolist(),
            dir_ok[part_rel].tolist(),
            monitor,
        )
        target_ok_list, hit_list, evict_list, under_list, stopped_at, _ = loop_result

        fired = stopped_at >= 0
        if fired:
            executed_rel = int(part_rel[stopped_at]) + 1
            part_rel = part_rel[: stopped_at + 1]
            target_ok_list = target_ok_list[: stopped_at + 1]
            hit_list = hit_list[: stopped_at + 1]
            evict_list = evict_list[: stopped_at + 1]
            under_list = under_list[: stopped_at + 1]
        else:
            executed_rel = length

        target_ok = np.ones(length, dtype=bool)
        target_ok[part_rel] = target_ok_list
        self.target_ok[span] = target_ok
        hit = np.zeros(length, dtype=bool)
        hit[part_rel] = hit_list
        self.btb_hit[span] = hit
        evict = np.zeros(length, dtype=bool)
        evict[part_rel] = evict_list
        self.btb_evict[span] = evict
        under = np.zeros(length, dtype=bool)
        under[part_rel] = under_list
        self.rsb_under[span] = under

        # ------------------------------------------------ commit predictor state
        executed_cond = int(np.searchsorted(cond_rel, executed_rel))
        if one_scan is not None:
            upto = None if not fired else executed_cond
            one_scan.commit(self.one_table, upto)
            two_scan.commit(self.two_table, upto)
            choice_scan.commit(self.choice_table, upto)
        self.ghr_value = _ghr_value_at(ghr_extended, executed_cond,
                                       self.sizes.ghr_bits)
        if fired:
            executed_updates = int(update_cum[executed_rel - 1]) if executed_rel else 0
        else:
            executed_updates = int(update_cum[-1]) if length else 0
        self.bhb_value = int(bhb_states[executed_updates])
        _extend_outcomes(self.outcomes, cond_takens[:executed_cond].tolist(),
                         self.max_outcomes)
        return _SpanResult(lo + executed_rel, fired)

    def _run_span_stepper(self, lo: int, hi: int,
                          monitor: _MonitorMirror | None) -> _SpanResult:
        """Replay ``[lo, hi)`` through the direction stepper.

        The stepper precomputes the span's array-kernel inputs (folded
        histories, table rows, speculative hit bits / batched dot products)
        and hands back a per-conditional ``step`` closure; the structural
        loop interleaves it with the BTB/RSB accesses so monitor-fired stops
        land bit-exactly and resume from the executed prefix.

        Spans are capped at ``_STEPPER_SPAN_LIMIT`` branches: the TAGE
        allocation guard repairs same-index accesses of the *current* span,
        so bounded spans bound the repair walks (and the speculative fold /
        window arrays).  Callers already resume from ``executed_to``.
        """
        hi = min(hi, lo + _STEPPER_SPAN_LIMIT)
        arrays = self.arrays
        span = slice(lo, hi)
        length = hi - lo
        ips = arrays.ips[span]
        takens = arrays.takens[span]
        contexts = arrays.context_ids[span]
        is_cond = self.is_cond[span]
        cond_rel = np.flatnonzero(is_cond)
        cond_takens = takens[cond_rel]
        step = self.stepper.prepare_span(
            ips[cond_rel], contexts[cond_rel], cond_takens, self.outcomes)

        # --------------------------------------------------------- histories
        update_mask = self.bhb_updates[span]
        mixed = self.mixed[span][update_mask]
        bhb_states = _bhb_states(mixed, self.bhb_value, self.sizes.bhb_bits)
        update_cum = np.cumsum(update_mask)
        ind_ret_rel = np.flatnonzero(self.is_ind_or_ret[span])
        updates_before = update_cum[ind_ret_rel] - update_mask[ind_ret_rel]
        bhb_at = bhb_states[updates_before]

        # ---------------------------------------------------------- BTB keys
        if self._mode1_cache is not None:
            mode1_base = self._mode1_cache[0][span]
            mode1_key = self._mode1_cache[1][span]
            encoded = self._encoded_cache[span]
            push_values = self._push_cache[span]
        else:
            mode1_base, mode1_key = self._mode1_keys(span)
            encoded = np.asarray(self.codec.vector_encode(arrays.targets[span]))
            push_values = np.asarray(self.codec.vector_encode(
                (ips + _U64(4)) & _U64(VIRTUAL_ADDRESS_MASK)))
        mode2_base = np.zeros(length, dtype=np.int64)
        mode2_key = np.zeros(length, dtype=np.int64)
        if ind_ret_rel.shape[0]:
            index2, key2 = self.btb_maps.btb2(
                ips[ind_ret_rel], bhb_at, contexts[ind_ret_rel])
            index2 = index2.astype(np.int64)
            if self.set_count != self.sizes.btb_sets:
                index2 %= self.set_count
            mode2_base[ind_ret_rel] = index2 * self.ways
            mode2_key[ind_ret_rel] = key2.astype(np.int64)

        dir_ok_list = [True] * length
        loop_result = self._structural_loop(
            self.base_opcode[span].tolist(),
            takens.tolist(),
            mode1_base.tolist(),
            mode1_key.tolist(),
            mode2_base.tolist(),
            mode2_key.tolist(),
            encoded.tolist(),
            self.high_ok[span].tolist(),
            self.fallthrough_ok[span].tolist(),
            self.is_call[span].tolist(),
            push_values.tolist(),
            dir_ok_list,
            monitor,
            conds=is_cond.tolist(),
            step=step,
        )
        (target_ok_list, hit_list, evict_list, under_list, stopped_at,
         executed_cond) = loop_result
        fired = stopped_at >= 0
        executed_rel = stopped_at + 1 if fired else length

        # Full-length result lists: entries past a fired stop keep their
        # defaults and are overwritten when the resumed span replays them.
        self.dir_ok[span] = dir_ok_list
        self.target_ok[span] = target_ok_list
        self.btb_hit[span] = hit_list
        self.btb_evict[span] = evict_list
        self.rsb_under[span] = under_list

        # ------------------------------------------------ commit predictor state
        executed_outcomes = cond_takens[:executed_cond].tolist()
        self.ghr_value = _ghr_commit(self.ghr_value, executed_outcomes,
                                     self.sizes.ghr_bits)
        if fired:
            executed_updates = int(update_cum[executed_rel - 1]) if executed_rel else 0
        else:
            executed_updates = int(update_cum[-1]) if length else 0
        self.bhb_value = int(bhb_states[executed_updates])
        self.stepper.commit_span(cond_takens, executed_cond)
        _extend_outcomes(self.outcomes, executed_outcomes, self.max_outcomes)
        return _SpanResult(lo + executed_rel, fired)

    # --------------------------------------------------------- structural loop

    def _structural_loop(self, ops, takens, base1, key1, base2, key2, encoded,
                         high_ok, fall_ok, calls, pushes, dir_ok, monitor,
                         conds=None, step=None):
        keys = self.bt_keys
        tags = self.bt_tags
        offsets = self.bt_offsets
        stored = self.bt_stored
        stamps = self.bt_stamps
        clock = self.clock
        evictions = self.evictions
        ways = self.ways
        offset_bits = self.sizes.btb_offset_bits
        offset_mask = (1 << offset_bits) - 1
        rsb = self.rsb
        rsb_capacity = self.rsb_capacity
        count = len(ops)
        target_ok = [True] * count
        hits = [False] * count
        evicts = [False] * count
        unders = [False] * count
        valid_bonus = 1 << 62
        huge = 1 << 63
        stopped_at = -1
        conds_stepped = 0

        if monitor is not None:
            mis_remaining = monitor.mis_remaining
            ev_remaining = monitor.ev_remaining
            dir_remaining = monitor.dir_remaining
            has_direction = monitor.has_direction
            observed_mis = monitor.observed_mis
            observed_ev = monitor.observed_ev
            fired_count = monitor.fired
        watching = monitor is not None

        for j in range(count):
            taken = takens[j]
            if conds is not None and conds[j]:
                # Stepper mode: resolve the direction prediction in place.
                predicted = step(conds_stepped)
                conds_stepped += 1
                dir_ok[j] = predicted == taken
                if predicted:
                    op = 0
                elif taken:
                    op = 1
                else:
                    # Predicted and resolved not-taken: the fall-through
                    # target is implicitly correct, no structure is touched,
                    # and the monitor sees neither misprediction nor eviction.
                    continue
            else:
                op = ops[j]
            hit = False
            correct = False
            evicted = False
            if op == 0:  # mode-1 lookup (conditional predicted-taken / direct)
                clock += 1
                base = base1[j]
                want = key1[j]
                stop = base + ways
                w = base
                while w < stop:
                    if keys[w] == want:
                        stamps[w] = clock
                        hit = True
                        if stored[w] == encoded[j] and high_ok[j]:
                            correct = True
                        break
                    w += 1
                update_base = base
                update_key = want
            elif op == 1:  # conditional predicted not-taken but resolved taken
                update_base = base1[j]
                update_key = key1[j]
                correct = fall_ok[j]
            elif op == 2:  # indirect: mode-2 lookup, mode-1 fallback
                clock += 1
                base = base2[j]
                want = key2[j]
                stop = base + ways
                w = base
                while w < stop:
                    if keys[w] == want:
                        stamps[w] = clock
                        hit = True
                        if stored[w] == encoded[j] and high_ok[j]:
                            correct = True
                        break
                    w += 1
                if not hit:
                    clock += 1
                    base = base1[j]
                    want1 = key1[j]
                    stop = base + ways
                    w = base
                    while w < stop:
                        if keys[w] == want1:
                            stamps[w] = clock
                            hit = True
                            if stored[w] == encoded[j] and high_ok[j]:
                                correct = True
                            break
                        w += 1
                update_base = base2[j]
                update_key = key2[j]
            else:  # return: RSB pop, mode-2 lookup on underflow
                if rsb:
                    popped = rsb.pop()
                    if popped == encoded[j] and high_ok[j]:
                        correct = True
                else:
                    self.rsb_underflows += 1
                    unders[j] = True
                    clock += 1
                    base = base2[j]
                    want = key2[j]
                    stop = base + ways
                    w = base
                    while w < stop:
                        if keys[w] == want:
                            stamps[w] = clock
                            hit = True
                            if stored[w] == encoded[j] and high_ok[j]:
                                correct = True
                            break
                        w += 1
                update_base = base2[j]
                update_key = key2[j]

            if taken:
                target_ok[j] = correct
                # ------------------------------------------------- BTB update
                clock += 1
                stop = update_base + ways
                w = update_base
                victim = -1
                victim_rank = huge
                matched = False
                while w < stop:
                    key_w = keys[w]
                    if key_w == update_key:
                        stored[w] = encoded[j]
                        stamps[w] = clock
                        matched = True
                        break
                    rank = stamps[w]
                    if key_w != -1:
                        rank += valid_bonus
                    if rank < victim_rank:
                        victim_rank = rank
                        victim = w
                    w += 1
                if not matched:
                    if keys[victim] != -1:
                        evictions += 1
                        evicted = True
                        evicts[j] = True
                    keys[victim] = update_key
                    tags[victim] = update_key >> offset_bits
                    offsets[victim] = update_key & offset_mask
                    stored[victim] = encoded[j]
                    stamps[victim] = clock
            hits[j] = hit

            if calls[j]:
                if len(rsb) >= rsb_capacity:
                    del rsb[0]
                    self.rsb_overflows += 1
                rsb.append(pushes[j])

            if watching:
                mispredicted = not (dir_ok[j] and (correct or not taken))
                if mispredicted or evicted:
                    fire = False
                    if evicted:
                        observed_ev += 1
                        ev_remaining -= 1
                        if ev_remaining <= 0:
                            fire = True
                    if mispredicted:
                        observed_mis += 1
                        if has_direction and not dir_ok[j]:
                            dir_remaining -= 1
                            if dir_remaining <= 0:
                                fire = True
                        else:
                            mis_remaining -= 1
                            if mis_remaining <= 0:
                                fire = True
                    if fire:
                        fired_count += 1
                        mis_remaining = monitor.mis_threshold
                        ev_remaining = monitor.ev_threshold
                        dir_remaining = monitor.dir_threshold
                        stopped_at = j
                        break

        self.clock = clock
        self.evictions = evictions
        if monitor is not None:
            monitor.mis_remaining = mis_remaining
            monitor.ev_remaining = ev_remaining
            monitor.dir_remaining = dir_remaining
            monitor.observed_mis = observed_mis
            monitor.observed_ev = observed_ev
            monitor.fired = fired_count
        return target_ok, hits, evicts, unders, stopped_at, conds_stepped


# --------------------------------------------------------------------- stats

def _accumulate_stats(engine: _CompositeEngine, stats: PredictorStats,
                      warmup: int) -> None:
    """Fold the whole-trace flag arrays into ``stats``, exactly like the
    columnar loop records branches past the global warm-up count."""
    n = engine.n
    start = min(max(warmup, 0), n)
    span = slice(start, n)
    conditional = engine.is_cond[span]
    taken = engine.arrays.takens[span]
    dir_ok = engine.dir_ok[span]
    target_ok = engine.target_ok[span]
    effective = dir_ok & target_ok
    conditional_count = int(np.count_nonzero(conditional))
    stats.branches += n - start
    stats.conditional_branches += conditional_count
    stats.direction_predictions += conditional_count
    stats.direction_correct += int(np.count_nonzero(conditional & dir_ok))
    stats.target_predictions += int(np.count_nonzero(taken))
    stats.target_correct += int(np.count_nonzero(taken & target_ok))
    stats.effective_correct += int(np.count_nonzero(effective))
    stats.mispredictions += (n - start) - int(np.count_nonzero(effective))
    stats.btb_evictions += int(np.count_nonzero(engine.btb_evict[span]))
    stats.btb_hits += int(np.count_nonzero(engine.btb_hit[span]))
    stats.rsb_underflows += int(np.count_nonzero(engine.rsb_under[span]))


def _accumulate_smt(engine: _CompositeEngine, per_thread_stats,
                    thread_offset: int, warmup: int) -> None:
    """Per-thread accumulation for SMT co-runs (per-thread warm-up ordinals)."""
    contexts = engine.arrays.context_ids
    thread_one = contexts >= thread_offset
    for thread, mask in ((0, ~thread_one), (1, thread_one)):
        positions = np.flatnonzero(mask)
        measured = positions[warmup:]
        if measured.shape[0] == 0:
            continue
        stats = per_thread_stats[thread]
        conditional = engine.is_cond[measured]
        taken = engine.arrays.takens[measured]
        dir_ok = engine.dir_ok[measured]
        target_ok = engine.target_ok[measured]
        effective = dir_ok & target_ok
        conditional_count = int(np.count_nonzero(conditional))
        stats.branches += measured.shape[0]
        stats.conditional_branches += conditional_count
        stats.direction_predictions += conditional_count
        stats.direction_correct += int(np.count_nonzero(conditional & dir_ok))
        stats.target_predictions += int(np.count_nonzero(taken))
        stats.target_correct += int(np.count_nonzero(taken & target_ok))
        stats.effective_correct += int(np.count_nonzero(effective))
        stats.mispredictions += measured.shape[0] - int(np.count_nonzero(effective))
        stats.btb_evictions += int(np.count_nonzero(engine.btb_evict[measured]))
        stats.btb_hits += int(np.count_nonzero(engine.btb_hit[measured]))
        stats.rsb_underflows += int(np.count_nonzero(engine.rsb_under[measured]))


# ------------------------------------------------------------------- kernels

class _KernelBase:
    """Shared replay scaffolding for the per-model vector kernels."""

    __slots__ = ("engine", "model")

    #: Kernels whose event hooks are no-ops replay the whole trace as one
    #: epoch instead of chunking at (inert) event boundaries.
    merge_events = False

    def __init__(self, engine: _CompositeEngine, model):
        self.engine = engine
        self.model = model

    def run_trace(self, trace: Trace, warmup: int, stats: PredictorStats) -> bool:
        if not self._replay(trace):
            return False
        _accumulate_stats(self.engine, stats, warmup)
        return True

    def run_smt(self, merged: Trace, thread_offset: int, warmup: int,
                per_thread_stats) -> bool:
        if not self._replay(merged):
            return False
        _accumulate_smt(self.engine, per_thread_stats, thread_offset, warmup)
        return True

    def _replay(self, trace: Trace) -> bool:
        columns = trace.columns()
        engine = self.engine
        engine.begin(columns.arrays())
        if not self._prepare(columns):
            return False
        if self.merge_events:
            self._run_block(0, engine.n)
        else:
            for start, stop, event in columns.segments:
                self._run_block(start, stop)
                if event is not None:
                    self._on_event(event)
        engine.finish()
        self._sync_extra(columns)
        return True

    def _prepare(self, columns) -> bool:
        return True

    def _run_block(self, lo: int, hi: int) -> None:
        engine = self.engine
        position = lo
        while position < hi:
            # run_span may stop early (stepper span cap); resume until done.
            position = engine.run_span(position, hi).executed_to

    def _on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def _sync_extra(self, columns) -> None:
        pass


class _PlainKernel(_KernelBase):
    """Unprotected :class:`~repro.bpu.composite.CompositeBPU`: every OS-event
    hook is a no-op, so the whole trace replays as one epoch."""

    __slots__ = ()

    merge_events = True


class _ConservativeKernel(_KernelBase):
    """Conservative model: the partition slot is per-branch data (the maps
    receive the context column), so events only influence the mapping's final
    ``current_context`` value, restored after replay."""

    __slots__ = ()

    merge_events = True

    def _sync_extra(self, columns) -> None:
        mapping = self.model._mapping
        context_ids = self.engine.arrays.context_ids
        for start, stop, event in reversed(columns.segments):
            if event is not None and event.kind is EventKind.CONTEXT_SWITCH:
                mapping.current_context = event.context_id
                return
            if stop > start:
                mapping.current_context = int(context_ids[stop - 1])
                return


class _FlushingKernel(_KernelBase):
    """µcode-style protection: emulates the flush-on-event hooks against the
    adopted state (the live structures are stale until ``finish``)."""

    __slots__ = ()

    def _on_event(self, event: TraceEvent) -> None:
        model = self.model
        kind = event.kind
        if kind is EventKind.CONTEXT_SWITCH:
            if (model._current_context is not None
                    and event.context_id != model._current_context
                    and model.flush_on_context_switch):
                self.engine.flush()
                model.flush_count += 1
            model._current_context = event.context_id
        elif kind is EventKind.MODE_SWITCH_ENTER_KERNEL or kind is EventKind.INTERRUPT:
            if model.flush_on_mode_switch:
                self.engine.flush()
                model.flush_count += 1


class _STBPUKernel(_KernelBase):
    """STBPU: epoch chunks follow the secret token — one chunk per run of a
    constant effective context, re-chunked at monitor-fired re-randomizations.

    OS events go to the *real* model hooks (they only touch the token
    machinery, never the adopted predictor structures)."""

    __slots__ = ("_effective", "_changes")

    def _prepare(self, columns) -> bool:
        from repro.core.stbpu import KERNEL_CONTEXT_ID

        arrays = self.engine.arrays
        effective = np.where(arrays.kernel_modes, np.int64(KERNEL_CONTEXT_ID),
                             arrays.context_ids)
        changes = np.flatnonzero(effective[1:] != effective[:-1]) + 1
        count = arrays.ips.shape[0]
        # Token-run chunks shorter than ~a few hundred branches (SMT merges
        # swap contexts every scheduling quantum) lose the vector advantage;
        # refuse before mutating anything and let the caller fall back.
        if count and changes.shape[0] + 1 > max(16, count // 192):
            return False
        self._effective = effective
        self._changes = changes
        return True

    def _run_block(self, lo: int, hi: int) -> None:
        model = self.model
        engine = self.engine
        changes = self._changes
        effective = self._effective
        boundary = int(np.searchsorted(changes, lo, side="right"))
        position = lo
        while position < hi:
            run_hi = hi
            if boundary < changes.shape[0]:
                next_change = int(changes[boundary])
                if next_change < hi:
                    run_hi = next_change
                    boundary += 1
            context = int(effective[position])
            if context != model._current_context:
                model._current_context = context
                model._install_token(model._token_for_context(context))
            model.stats.contexts_seen.add(context)
            span_lo = position
            while span_lo < run_hi:
                mirror = _MonitorMirror(model.monitor)
                result = engine.run_span(span_lo, run_hi, mirror)
                mirror.write_back()
                span_lo = result.executed_to
                if result.fired:
                    model.rerandomize_current()
            position = run_hi

    def _on_event(self, event: TraceEvent) -> None:
        model = self.model
        kind = event.kind
        if kind is EventKind.CONTEXT_SWITCH:
            model.on_context_switch(event.context_id)
        elif kind is EventKind.MODE_SWITCH_ENTER_KERNEL:
            model.on_mode_switch(PrivilegeMode.KERNEL, event.context_id)
        elif kind is EventKind.MODE_SWITCH_EXIT_KERNEL:
            model.on_mode_switch(PrivilegeMode.USER, event.context_id)
        elif kind is EventKind.INTERRUPT:
            model.on_interrupt(event.context_id)


# ------------------------------------------------------------ kernel builders

def _make_engine(composite) -> _CompositeEngine | None:
    """Build the vector engine for a composite, or ``None`` when any piece
    (direction component, mapping, codec, structure subclass) has no exact
    array form."""
    from repro.bpu.btb import BranchTargetBuffer
    from repro.bpu.composite import CompositeBPU
    from repro.bpu.perceptron import PerceptronPredictor
    from repro.bpu.pht import SKLConditionalPredictor
    from repro.bpu.rsb import ReturnStackBuffer
    from repro.bpu.tage import TAGEPredictor

    if type(composite) is not CompositeBPU:
        return None
    direction = composite.direction
    stepper_type = None
    if type(direction) is SKLConditionalPredictor:
        if composite.sizes.pht_counter_bits != 2:
            return None
    elif type(direction) is TAGEPredictor:
        stepper_type = _TAGEStepper
    elif type(direction) is PerceptronPredictor:
        stepper_type = _PerceptronStepper
    else:
        return None
    if type(composite.btb) is not BranchTargetBuffer:
        return None
    if type(composite.rsb) is not ReturnStackBuffer:
        return None
    codec = composite.btb.codec
    if codec is not composite.rsb.codec:
        return None
    if codec.vector_encode(np.zeros(0, dtype=np.uint64)) is None:
        return None
    pht_maps = direction.mapping.vector_maps()
    btb_maps = composite.btb.mapping.vector_maps()
    if pht_maps is None or btb_maps is None:
        return None
    stepper = None
    if stepper_type is _TAGEStepper:
        if not (hasattr(pht_maps, "tage_indices")
                and hasattr(pht_maps, "tage_tags")):
            return None
        stepper = _TAGEStepper(direction, pht_maps)
    elif stepper_type is _PerceptronStepper:
        if not hasattr(pht_maps, "perceptron_rows"):
            return None
        stepper = _PerceptronStepper(direction, pht_maps)
    return _CompositeEngine(composite, pht_maps, btb_maps, codec, stepper)


def composite_kernel(model):
    """Vector kernel for an unprotected :class:`CompositeBPU` (or ``None``)."""
    engine = _make_engine(model)
    return _PlainKernel(engine, model) if engine is not None else None


def flushing_kernel(model):
    """Vector kernel for :class:`~repro.bpu.protections.FlushingProtectedBPU`."""
    from repro.bpu.protections import FlushingProtectedBPU

    if type(model) is not FlushingProtectedBPU:
        return None
    engine = _make_engine(model.inner)
    return _FlushingKernel(engine, model) if engine is not None else None


def conservative_kernel(model):
    """Vector kernel for :class:`~repro.bpu.protections.ConservativeBPU`."""
    from repro.bpu.protections import ConservativeBPU

    if type(model) is not ConservativeBPU:
        return None
    engine = _make_engine(model.inner)
    return _ConservativeKernel(engine, model) if engine is not None else None


def stbpu_kernel(model):
    """Vector kernel for :class:`~repro.core.stbpu.STBPU`."""
    from repro.core.monitoring import RerandomizationMonitor
    from repro.core.stbpu import STBPU

    if type(model) is not STBPU:
        return None
    if type(model.monitor) is not RerandomizationMonitor:
        return None
    engine = _make_engine(model.inner)
    return _STBPUKernel(engine, model) if engine is not None else None


# -------------------------------------------------------------- entry points

def kernel_for(model):
    """The model's vector kernel, logging one fallback notice per model name."""
    kernel = model.vector_kernel()
    if kernel is None:
        name = getattr(model, "name", type(model).__name__)
        if name not in _FALLBACK_LOGGED:
            _FALLBACK_LOGGED.add(name)
            logger.info(
                "model %r has no vector kernel; falling back to the columnar "
                "fast path", name)
    return kernel


def kernel_status(model) -> str:
    """Backend coverage class for ``model``.

    ``"kernel"``
        Closed-form array kernels end to end (SKL composites).
    ``"guarded"``
        Array kernels plus a guarded-specialization direction stepper
        (TAGE, Perceptron): span inputs are speculative and repaired or
        re-batched when a guard fails.
    ``"fallback"``
        No vector kernel; replay drops to the columnar fast path.
    """
    kernel = model.vector_kernel()
    if kernel is None:
        return "fallback"
    engine = getattr(kernel, "engine", None)
    if engine is not None and getattr(engine, "stepper", None) is not None:
        return "guarded"
    return "kernel"


def fallback_logged_names() -> tuple[str, ...]:
    """Model names whose fallback notice this process already emitted.

    The engine runner ships this snapshot to its worker processes so a
    100-job grid of a kernel-less model logs the notice once — in the
    parent — instead of once per worker batch.
    """
    return tuple(sorted(_FALLBACK_LOGGED))


def suppress_fallback_notices(names) -> None:
    """Mark ``names`` as already logged in this process.

    Called by :func:`repro.engine.runner.execute_job_batch` in workers with
    the parent's :func:`fallback_logged_names` snapshot: the parent probed
    each model and spoke for the whole process tree.
    """
    _FALLBACK_LOGGED.update(names)


def try_replay_trace(model, trace: Trace, warmup: int,
                     stats: PredictorStats) -> bool:
    """Vector-replay ``trace`` through ``model`` into ``stats`` if possible."""
    kernel = kernel_for(model)
    if kernel is None:
        return False
    return kernel.run_trace(trace, warmup, stats)


def try_replay_smt(model, merged: Trace, thread_offset: int, warmup: int,
                   per_thread_stats) -> bool:
    """Vector-replay an SMT co-run if the model's kernel supports the merge."""
    kernel = kernel_for(model)
    if kernel is None:
        return False
    return kernel.run_smt(merged, thread_offset, warmup, per_thread_stats)
