"""SMT (two hardware threads) performance simulation (Section VII-B2, Figure 5).

Two workloads share one physical core and therefore one BPU.  The shared-BPU
effect is modelled by interleaving the two traces round-robin through a single
predictor model (contexts keep their identity, so STBPU keeps per-thread
tokens and flushing/partitioning schemes see cross-thread interference), while
the cycle accounting splits the core's ideal throughput between the threads
and charges each thread its own misprediction penalties.  Throughput is
summarised with the harmonic mean of the per-thread IPCs, the metric the
paper adopts for equally weighted workloads.

Like :class:`~repro.sim.bpu_sim.TraceSimulator`, the co-run replay follows
the process-wide backend switch: the ``vector`` backend replays the merged
trace with array kernels where the model provides one (STBPU co-runs decline
— the scheduling quantum swaps tokens too often for array chunks to pay off —
and take the columnar loop), ``fast`` iterates the columnar view, and the
per-item ``reference`` loop is kept for parity testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import BranchPredictorModel, PredictorStats
from repro.sim import fastpath
from repro.sim.bpu_sim import dispatch_event
from repro.sim.config import CPUConfig, SimulationLengths, TABLE_IV_CONFIG
from repro.sim.metrics import PerformanceReport, harmonic_mean
from repro.trace.branch import (
    BranchRecord,
    Trace,
    TraceEvent,
    merge_round_robin,
)


@dataclass(slots=True)
class SMTSimulationResult:
    """Per-thread and aggregate outcome of one SMT co-run."""

    thread_performance: tuple[PerformanceReport, PerformanceReport]
    thread_stats: tuple[PredictorStats, PredictorStats]
    #: Protection-mechanism counters reported by the model after the co-run
    #: (see :meth:`~repro.bpu.common.BranchPredictorModel.protection_stats`).
    protection: dict[str, int] = field(default_factory=dict)

    @property
    def hmean_ipc(self) -> float:
        return harmonic_mean([report.ipc for report in self.thread_performance])

    @property
    def combined_direction_accuracy(self) -> float:
        merged = self.thread_stats[0].merged_with(self.thread_stats[1])
        return merged.direction_accuracy

    @property
    def combined_target_accuracy(self) -> float:
        merged = self.thread_stats[0].merged_with(self.thread_stats[1])
        return merged.target_accuracy


class SMTSimulator:
    """Runs two traces through one shared predictor model in SMT fashion."""

    def __init__(
        self,
        config: CPUConfig = TABLE_IV_CONFIG,
        lengths: SimulationLengths | None = None,
        quantum: int = 16,
    ):
        self.config = config
        self.lengths = lengths if lengths is not None else SimulationLengths()
        self.quantum = quantum

    def _dispatch_event(self, model: BranchPredictorModel, event: TraceEvent) -> None:
        dispatch_event(model, event)

    def _coreplay_items(
        self,
        model: BranchPredictorModel,
        merged: Trace,
        thread_offset: int,
        per_thread_stats: tuple[PredictorStats, PredictorStats],
    ) -> None:
        """Reference per-item co-run loop (kept for differential testing)."""
        warmup = self.lengths.warmup_branches
        seen = [0, 0]
        for item in merged:
            if isinstance(item, TraceEvent):
                dispatch_event(model, item)
                continue
            thread = 0 if item.context_id < thread_offset else 1
            result = model.access_with_events(item)
            seen[thread] += 1
            if seen[thread] > warmup:
                per_thread_stats[thread].record(result, item)

    def _coreplay_columnar(
        self,
        model: BranchPredictorModel,
        merged: Trace,
        thread_offset: int,
        per_thread_stats: tuple[PredictorStats, PredictorStats],
    ) -> None:
        """Columnar co-run loop, equivalent to :meth:`_coreplay_items`."""
        columns = merged.columns()
        branches = columns.branches
        takens = columns.takens
        conditionals = columns.conditionals
        context_ids = columns.context_ids
        access = model.access_with_events
        warmup = self.lengths.warmup_branches
        seen = [0, 0]
        for start, stop, event in columns.segments:
            for index in range(start, stop):
                result = access(branches[index])
                thread = 0 if context_ids[index] < thread_offset else 1
                count = seen[thread] + 1
                seen[thread] = count
                if count > warmup:
                    per_thread_stats[thread].record_outcome(
                        result, conditionals[index], takens[index]
                    )
            if event is not None:
                dispatch_event(model, event)

    def run(
        self,
        model: BranchPredictorModel,
        trace_a: Trace,
        trace_b: Trace,
        thread_offset: int = 1000,
    ) -> SMTSimulationResult:
        """Co-run ``trace_a`` and ``trace_b`` on one shared BPU.

        Thread B's context identifiers are offset so the two workloads remain
        distinct software entities even when the input traces reuse ids.
        """
        remapped_b = Trace(name=trace_b.name)
        for item in trace_b:
            if isinstance(item, BranchRecord):
                remapped_b.append(item.with_context(item.context_id + thread_offset))
            else:
                remapped_b.append(TraceEvent(item.kind, item.context_id + thread_offset))

        merged = merge_round_robin(
            [trace_a, remapped_b], quantum=self.quantum,
            name=f"{trace_a.name}+{trace_b.name}",
        )

        per_thread_stats = (PredictorStats(), PredictorStats())
        replayed = False
        if fastpath.vector_enabled():
            from repro.sim import vector

            replayed = vector.try_replay_smt(
                model, merged, thread_offset, self.lengths.warmup_branches,
                per_thread_stats)
        if not replayed:
            if fastpath.fast_path_enabled():
                self._coreplay_columnar(model, merged, thread_offset, per_thread_stats)
            else:
                self._coreplay_items(model, merged, thread_offset, per_thread_stats)

        reports = tuple(
            self._performance(model.name, trace.name, stats)
            for trace, stats in zip((trace_a, trace_b), per_thread_stats)
        )
        return SMTSimulationResult(
            thread_performance=reports,
            thread_stats=per_thread_stats,
            protection=model.protection_stats(),
        )

    def _performance(self, model_name: str, workload: str,
                     stats: PredictorStats) -> PerformanceReport:
        config = self.config
        instructions = stats.branches * config.instructions_per_branch
        # Each SMT thread gets roughly half the core's ideal throughput.
        base_cycles = instructions / (config.ideal_ipc / 2.0)
        squash_cycles = stats.mispredictions * config.misprediction_penalty_cycles
        redirect_cycles = (
            max(0, stats.target_predictions - stats.target_correct - stats.mispredictions)
            * config.btb_miss_penalty_cycles
        )
        return PerformanceReport(
            model=model_name,
            workload=workload,
            instructions=instructions,
            cycles=base_cycles + squash_cycles + redirect_cycles,
            direction_accuracy=stats.direction_accuracy,
            target_accuracy=stats.target_accuracy,
        )
