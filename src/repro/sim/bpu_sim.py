"""Trace-driven BPU simulator (the paper's Intel-PT-based simulator, Section VII-B1).

The simulator replays a :class:`~repro.trace.branch.Trace` — branch records
interleaved with context switches, mode switches and interrupts — through one
or more predictor models and reports the overall-accuracy-effective (OAE)
metric per model.  OS events are forwarded to the models' hooks, which is
where flushing-based protections pay their cost and where STBPU reloads
per-process tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import BranchPredictorModel, PredictorStats
from repro.sim.metrics import AccuracyReport
from repro.trace.branch import EventKind, PrivilegeMode, Trace, TraceEvent


@dataclass(slots=True)
class SimulationResult:
    """Stats plus the final report for one (model, trace) simulation."""

    report: AccuracyReport
    stats: PredictorStats


class TraceSimulator:
    """Replays traces through predictor models and collects accuracy reports."""

    def __init__(self, warmup_branches: int = 0):
        self.warmup_branches = warmup_branches

    def _dispatch_event(self, model: BranchPredictorModel, event: TraceEvent) -> None:
        if event.kind is EventKind.CONTEXT_SWITCH:
            model.on_context_switch(event.context_id)
        elif event.kind is EventKind.MODE_SWITCH_ENTER_KERNEL:
            model.on_mode_switch(PrivilegeMode.KERNEL, event.context_id)
        elif event.kind is EventKind.MODE_SWITCH_EXIT_KERNEL:
            model.on_mode_switch(PrivilegeMode.USER, event.context_id)
        elif event.kind is EventKind.INTERRUPT:
            model.on_interrupt(event.context_id)

    def run(self, model: BranchPredictorModel, trace: Trace) -> SimulationResult:
        """Replay ``trace`` through ``model`` and return its accuracy report.

        The first ``warmup_branches`` branch records train the predictor but
        are excluded from the reported statistics (mirroring the paper's gem5
        warm-up phase).

        ``run`` does **not** reset the model: predictor models are stateful
        and the caller owns their lifecycle, so replaying a second trace
        through the same instance continues from the trained state.  Use
        :meth:`compare` (or call ``model.reset()`` yourself) for cold replays.
        """
        stats = PredictorStats()
        seen_branches = 0
        for item in trace:
            if isinstance(item, TraceEvent):
                self._dispatch_event(model, item)
                continue
            result = model.access_with_events(item)
            seen_branches += 1
            if seen_branches > self.warmup_branches:
                stats.record(result, item)

        protection = model.protection_stats()
        rerandomizations = int(protection.get("rerandomizations", 0))
        flushes = int(protection.get("flushes", 0))
        stats.st_rerandomizations = rerandomizations
        stats.flushes = flushes
        report = AccuracyReport.from_stats(
            model=model.name,
            workload=trace.name,
            stats=stats,
            rerandomizations=rerandomizations,
            flushes=flushes,
        )
        return SimulationResult(report=report, stats=stats)

    def compare(
        self, models: list[BranchPredictorModel], trace: Trace
    ) -> dict[str, SimulationResult]:
        """Run several models over the same trace, each from a cold start.

        Every model is ``reset()`` before its replay so that previously
        accumulated training state (models are stateful — see
        :class:`~repro.bpu.common.BranchPredictorModel`) cannot leak into the
        comparison.
        """
        results: dict[str, SimulationResult] = {}
        for model in models:
            model.reset()
            results[model.name] = self.run(model, trace)
        return results
