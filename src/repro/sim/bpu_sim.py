"""Trace-driven BPU simulator (the paper's Intel-PT-based simulator, Section VII-B1).

The simulator replays a :class:`~repro.trace.branch.Trace` — branch records
interleaved with context switches, mode switches and interrupts — through one
or more predictor models and reports the overall-accuracy-effective (OAE)
metric per model.  OS events are forwarded to the models' hooks, which is
where flushing-based protections pay their cost and where STBPU reloads
per-process tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import BranchPredictorModel, PredictorStats
from repro.bpu.composite import CompositeBPU
from repro.bpu.protections import FlushingProtectedBPU
from repro.core.stbpu import STBPU
from repro.sim.metrics import AccuracyReport
from repro.trace.branch import BranchRecord, EventKind, PrivilegeMode, Trace, TraceEvent


@dataclass(slots=True)
class SimulationResult:
    """Stats plus the final report for one (model, trace) simulation."""

    report: AccuracyReport
    stats: PredictorStats


class TraceSimulator:
    """Replays traces through predictor models and collects accuracy reports."""

    def __init__(self, warmup_branches: int = 0):
        self.warmup_branches = warmup_branches

    def _dispatch_event(self, model: BranchPredictorModel, event: TraceEvent) -> None:
        if event.kind is EventKind.CONTEXT_SWITCH:
            model.on_context_switch(event.context_id)
        elif event.kind is EventKind.MODE_SWITCH_ENTER_KERNEL:
            model.on_mode_switch(PrivilegeMode.KERNEL, event.context_id)
        elif event.kind is EventKind.MODE_SWITCH_EXIT_KERNEL:
            model.on_mode_switch(PrivilegeMode.USER, event.context_id)
        elif event.kind is EventKind.INTERRUPT:
            model.on_interrupt(event.context_id)

    def _access(self, model: BranchPredictorModel, branch: BranchRecord):
        if isinstance(model, CompositeBPU):
            return model.access_with_events(branch)
        return model.access(branch)

    def run(self, model: BranchPredictorModel, trace: Trace) -> SimulationResult:
        """Replay ``trace`` through ``model`` and return its accuracy report.

        The first ``warmup_branches`` branch records train the predictor but
        are excluded from the reported statistics (mirroring the paper's gem5
        warm-up phase).
        """
        stats = PredictorStats()
        seen_branches = 0
        for item in trace:
            if isinstance(item, TraceEvent):
                self._dispatch_event(model, item)
                continue
            result = self._access(model, item)
            seen_branches += 1
            if seen_branches > self.warmup_branches:
                stats.record(result, item)

        rerandomizations = model.stats.rerandomizations if isinstance(model, STBPU) else 0
        flushes = model.flush_count if isinstance(model, FlushingProtectedBPU) else 0
        stats.st_rerandomizations = rerandomizations
        stats.flushes = flushes
        report = AccuracyReport.from_stats(
            model=model.name,
            workload=trace.name,
            stats=stats,
            rerandomizations=rerandomizations,
            flushes=flushes,
        )
        return SimulationResult(report=report, stats=stats)

    def compare(
        self, models: list[BranchPredictorModel], trace: Trace
    ) -> dict[str, SimulationResult]:
        """Run several models over the same trace (each gets a fresh replay)."""
        return {model.name: self.run(model, trace) for model in models}
