"""Trace-driven BPU simulator (the paper's Intel-PT-based simulator, Section VII-B1).

The simulator replays a :class:`~repro.trace.branch.Trace` — branch records
interleaved with context switches, mode switches and interrupts — through one
or more predictor models and reports the overall-accuracy-effective (OAE)
metric per model.  OS events are forwarded to the models' hooks, which is
where flushing-based protections pay their cost and where STBPU reloads
per-process tokens.

Replaying is the repository's hot path (a paper-scale grid pushes hundreds of
millions of branch records through models), so :meth:`TraceSimulator.run`
dispatches on the process-wide backend switch (:mod:`repro.sim.fastpath`):
the default ``vector`` backend replays the trace's ndarray view with the
array kernels in :mod:`repro.sim.vector` (falling back per model when no
kernel exists), the ``fast`` backend iterates the columnar view — branch runs
pre-split from OS events, direction/conditional flags pre-decoded — with
locally accumulated counters, and the per-item ``reference`` loop is retained
for differential testing.  The parity tests pin all backends to
byte-identical result frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import BranchPredictorModel, PredictorStats
from repro.sim import fastpath
from repro.sim.metrics import AccuracyReport
from repro.trace.branch import EventKind, PrivilegeMode, Trace, TraceEvent


@dataclass(slots=True)
class SimulationResult:
    """Stats plus the final report for one (model, trace) simulation."""

    report: AccuracyReport
    stats: PredictorStats


def dispatch_event(model: BranchPredictorModel, event: TraceEvent) -> None:
    """Forward one OS event to the matching model hook."""
    kind = event.kind
    if kind is EventKind.CONTEXT_SWITCH:
        model.on_context_switch(event.context_id)
    elif kind is EventKind.MODE_SWITCH_ENTER_KERNEL:
        model.on_mode_switch(PrivilegeMode.KERNEL, event.context_id)
    elif kind is EventKind.MODE_SWITCH_EXIT_KERNEL:
        model.on_mode_switch(PrivilegeMode.USER, event.context_id)
    elif kind is EventKind.INTERRUPT:
        model.on_interrupt(event.context_id)


class TraceSimulator:
    """Replays traces through predictor models and collects accuracy reports."""

    def __init__(self, warmup_branches: int = 0):
        self.warmup_branches = warmup_branches

    def _dispatch_event(self, model: BranchPredictorModel, event: TraceEvent) -> None:
        dispatch_event(model, event)

    def _replay_items(self, model: BranchPredictorModel, trace: Trace,
                      stats: PredictorStats) -> None:
        """Reference per-item replay loop (kept for differential testing)."""
        seen_branches = 0
        warmup = self.warmup_branches
        for item in trace:
            if isinstance(item, TraceEvent):
                dispatch_event(model, item)
                continue
            result = model.access_with_events(item)
            seen_branches += 1
            if seen_branches > warmup:
                stats.record(result, item)

    def _replay_columnar(self, model: BranchPredictorModel, trace: Trace,
                         stats: PredictorStats) -> None:
        """Columnar replay: equivalent to :meth:`_replay_items`, but iterating
        pre-split branch runs with locally accumulated counters."""
        columns = trace.columns()
        branches = columns.branches
        takens = columns.takens
        conditionals = columns.conditionals
        access = model.access_with_events
        warmup = self.warmup_branches
        seen = 0

        total = conditional = direction_correct = 0
        target_predictions = target_correct = 0
        effective = mispredictions = evictions = hits = underflows = 0

        for start, stop, event in columns.segments:
            # Branches still inside the warm-up window train without recording.
            if seen < warmup:
                train_stop = min(stop, start + (warmup - seen))
                for index in range(start, train_stop):
                    access(branches[index])
                seen += train_stop - start
                start = train_stop
            for index in range(start, stop):
                result = access(branches[index])
                total += 1
                if conditionals[index]:
                    conditional += 1
                    if result.direction_correct:
                        direction_correct += 1
                if takens[index]:
                    target_predictions += 1
                    if result.target_correct:
                        target_correct += 1
                if result.effective_correct:
                    effective += 1
                if result.mispredicted:
                    mispredictions += 1
                if result.btb_eviction:
                    evictions += 1
                if result.btb_hit:
                    hits += 1
                if result.rsb_underflow:
                    underflows += 1
            seen += stop - start
            if event is not None:
                dispatch_event(model, event)

        stats.branches += total
        stats.conditional_branches += conditional
        stats.direction_predictions += conditional
        stats.direction_correct += direction_correct
        stats.target_predictions += target_predictions
        stats.target_correct += target_correct
        stats.effective_correct += effective
        stats.mispredictions += mispredictions
        stats.btb_evictions += evictions
        stats.btb_hits += hits
        stats.rsb_underflows += underflows

    def run(self, model: BranchPredictorModel, trace: Trace) -> SimulationResult:
        """Replay ``trace`` through ``model`` and return its accuracy report.

        The first ``warmup_branches`` branch records train the predictor but
        are excluded from the reported statistics (mirroring the paper's gem5
        warm-up phase).

        ``run`` does **not** reset the model: predictor models are stateful
        and the caller owns their lifecycle, so replaying a second trace
        through the same instance continues from the trained state.  Use
        :meth:`compare` (or call ``model.reset()`` yourself) for cold replays.
        """
        stats = PredictorStats()
        replayed = False
        if fastpath.vector_enabled():
            from repro.sim import vector

            replayed = vector.try_replay_trace(
                model, trace, self.warmup_branches, stats)
        if not replayed:
            if fastpath.fast_path_enabled():
                self._replay_columnar(model, trace, stats)
            else:
                self._replay_items(model, trace, stats)

        protection = model.protection_stats()
        rerandomizations = int(protection.get("rerandomizations", 0))
        flushes = int(protection.get("flushes", 0))
        stats.st_rerandomizations = rerandomizations
        stats.flushes = flushes
        report = AccuracyReport.from_stats(
            model=model.name,
            workload=trace.name,
            stats=stats,
            rerandomizations=rerandomizations,
            flushes=flushes,
        )
        return SimulationResult(report=report, stats=stats)

    def compare(
        self, models: list[BranchPredictorModel], trace: Trace
    ) -> dict[str, SimulationResult]:
        """Run several models over the same trace, each from a cold start.

        Every model is ``reset()`` before its replay so that previously
        accumulated training state (models are stateful — see
        :class:`~repro.bpu.common.BranchPredictorModel`) cannot leak into the
        comparison.
        """
        results: dict[str, SimulationResult] = {}
        for model in models:
            model.reset()
            results[model.name] = self.run(model, trace)
        return results
