"""Simulation configuration (paper Table IV).

``CPUConfig`` mirrors the gem5 DerivO3CPU configuration the paper simulates:
an 8-issue out-of-order core at 3.4 GHz with a 192-entry ROB, 64-entry issue
queue, and the Skylake-like BPU dimensions used everywhere else in this
repository.  The cycle-approximate model in :mod:`repro.sim.cpu` consumes
these parameters; matching Table IV keeps the IPC normalisation comparable to
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import StructureSizes


@dataclass(frozen=True, slots=True)
class CPUConfig:
    """Out-of-order core parameters (paper Table IV)."""

    name: str = "DerivO3-like"
    frequency_ghz: float = 3.4
    issue_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    itlb_entries: int = 64
    dtlb_entries: int = 64
    #: Pipeline depth from fetch to execute — the misprediction squash penalty.
    misprediction_penalty_cycles: int = 14
    #: Extra front-end bubble when a taken branch misses in the BTB (fetch
    #: redirect at decode rather than predict time).
    btb_miss_penalty_cycles: int = 3
    #: Average instructions between branches (SPEC-like code has ~1 branch
    #: every 5-6 instructions).
    instructions_per_branch: float = 5.5
    #: Baseline IPC the core would reach with perfect branch prediction; the
    #: memory system and ILP limits cap it well below the issue width.
    ideal_ipc: float = 2.6
    bpu: StructureSizes = field(default_factory=StructureSizes)

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.rob_entries <= 0:
            raise ValueError("core parameters must be positive")
        if self.misprediction_penalty_cycles < 0:
            raise ValueError("misprediction penalty cannot be negative")


#: The Table IV configuration used by the paper's gem5 runs.
TABLE_IV_CONFIG = CPUConfig()


@dataclass(frozen=True, slots=True)
class SimulationLengths:
    """Instruction/branch budget of one simulation (scaled from the paper).

    The paper simulates 110 M instructions with a 10 M warm-up.  A pure-Python
    model cannot afford that per configuration, so the defaults here keep the
    same 10:1 run/warm-up proportion at a laptop-friendly size; the scale
    factor is recorded so reports can state it.
    """

    warmup_branches: int = 2_000
    measured_branches: int = 20_000

    @property
    def total_branches(self) -> int:
        return self.warmup_branches + self.measured_branches

    @property
    def paper_scale_note(self) -> str:
        return (
            "paper: 10M warm-up + 100M measured instructions; "
            f"this run: {self.warmup_branches} + {self.measured_branches} branches"
        )
