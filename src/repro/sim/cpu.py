"""Cycle-approximate out-of-order CPU model (the gem5 substitute, Section VII-B2).

The paper measures IPC with gem5's DerivO3CPU.  What its Figures 4–6 actually
report is *relative* IPC — protected versus unprotected designs whose only
difference is branch-prediction behaviour — so the performance model here
focuses on reproducing exactly that coupling:

* committed instructions are charged at the core's ideal IPC,
* every branch misprediction inserts a full pipeline squash penalty,
* every BTB miss on a taken branch inserts a shorter fetch-redirect bubble,

with the parameters taken from Table IV (:class:`~repro.sim.config.CPUConfig`).
The branch outcomes come from the same functional predictor models used by the
trace simulator, so any accuracy delta caused by a protection scheme flows
directly into an IPC delta, which is the effect the paper quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import BranchPredictorModel, PredictorStats
from repro.sim.config import CPUConfig, SimulationLengths, TABLE_IV_CONFIG
from repro.sim.metrics import PerformanceReport
from repro.trace.branch import Trace
from repro.sim.bpu_sim import TraceSimulator


@dataclass(slots=True)
class CPUSimulationResult:
    """Performance and accuracy outcome of one single-thread CPU simulation."""

    performance: PerformanceReport
    stats: PredictorStats


class CycleApproximateCPU:
    """Single-thread out-of-order performance model driven by a predictor model."""

    def __init__(
        self,
        config: CPUConfig = TABLE_IV_CONFIG,
        lengths: SimulationLengths | None = None,
    ):
        self.config = config
        self.lengths = lengths if lengths is not None else SimulationLengths()
        self._trace_simulator = TraceSimulator(warmup_branches=self.lengths.warmup_branches)

    def run(self, model: BranchPredictorModel, trace: Trace) -> CPUSimulationResult:
        """Simulate ``trace`` on a core whose front end uses ``model``.

        Cycle accounting: the instructions between branches issue at the
        core's ideal IPC; each effective misprediction adds the full squash
        penalty; each taken branch that missed in the BTB adds the
        fetch-redirect bubble.
        """
        config = self.config
        simulation = self._trace_simulator.run(model, trace)
        stats = simulation.stats

        instructions = stats.branches * config.instructions_per_branch
        base_cycles = instructions / config.ideal_ipc
        squash_cycles = stats.mispredictions * config.misprediction_penalty_cycles
        redirect_cycles = (
            max(0, stats.target_predictions - stats.target_correct - stats.mispredictions)
            * config.btb_miss_penalty_cycles
        )
        cycles = base_cycles + squash_cycles + redirect_cycles

        performance = PerformanceReport(
            model=model.name,
            workload=trace.name,
            instructions=instructions,
            cycles=cycles,
            direction_accuracy=stats.direction_accuracy,
            target_accuracy=stats.target_accuracy,
        )
        return CPUSimulationResult(performance=performance, stats=stats)


def run_single_workload(
    model: BranchPredictorModel,
    trace: Trace,
    config: CPUConfig = TABLE_IV_CONFIG,
    lengths: SimulationLengths | None = None,
) -> CPUSimulationResult:
    """Convenience wrapper used by the experiment drivers and benchmarks."""
    return CycleApproximateCPU(config, lengths).run(model, trace)
