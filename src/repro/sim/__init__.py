"""Simulators: trace-driven BPU accuracy and cycle-approximate CPU performance."""

from repro.sim.config import CPUConfig, SimulationLengths, TABLE_IV_CONFIG
from repro.sim.metrics import (
    AccuracyReport,
    PerformanceReport,
    geometric_mean,
    harmonic_mean,
    normalized,
    reduction,
)
from repro.sim.bpu_sim import SimulationResult, TraceSimulator
from repro.sim.cpu import CPUSimulationResult, CycleApproximateCPU, run_single_workload
from repro.sim.smt import SMTSimulationResult, SMTSimulator

__all__ = [
    "CPUConfig",
    "SimulationLengths",
    "TABLE_IV_CONFIG",
    "AccuracyReport",
    "PerformanceReport",
    "geometric_mean",
    "harmonic_mean",
    "normalized",
    "reduction",
    "SimulationResult",
    "TraceSimulator",
    "CPUSimulationResult",
    "CycleApproximateCPU",
    "run_single_workload",
    "SMTSimulationResult",
    "SMTSimulator",
]
