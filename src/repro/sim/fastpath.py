"""Process-wide switch between the columnar fast path and the per-item path.

The simulators keep two equivalent replay implementations: the columnar fast
path (pre-decoded :class:`~repro.trace.branch.TraceColumns`, local-bound inner
loops) used by default, and the straightforward per-item reference loop kept
for differential testing.  The parity tests flip this switch to assert both
paths produce byte-identical result frames; there is no reason to disable the
fast path in normal operation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def fast_path_enabled() -> bool:
    """Whether simulators should take the columnar fast path."""
    return _ENABLED


def set_fast_path(enabled: bool) -> None:
    """Globally enable/disable the columnar fast path (tests only)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def forced_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off."""
    previous = _ENABLED
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_fast_path(previous)
