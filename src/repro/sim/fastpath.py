"""Process-wide replay-backend switch: ``reference`` / ``fast`` / ``vector``.

The simulators keep three equivalent replay implementations:

* ``reference`` — the straightforward per-item loop kept for differential
  testing;
* ``fast`` — the columnar loop over pre-decoded
  :class:`~repro.trace.branch.TraceColumns` (PR 2); and
* ``vector`` — the NumPy array-at-a-time backend in :mod:`repro.sim.vector`
  (the default), which replays epoch-chunked array kernels for models that
  provide one and silently (but with a logged notice) falls back to the
  ``fast`` loop for models that do not (TAGE/Perceptron directions, ablation
  variants with facade mappings).

All three produce byte-identical result frames — the parity tests pin that —
so the switch only ever changes wall-clock time.  The process-wide default can
be set with the ``REPRO_SIM_BACKEND`` environment variable, programmatically
with :func:`set_backend`, or per run with the CLI's ``--backend`` option.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Recognised backend names, slowest first.
BACKENDS = ("reference", "fast", "vector")

DEFAULT_BACKEND = "vector"


def _initial_backend() -> str:
    name = os.environ.get("REPRO_SIM_BACKEND", DEFAULT_BACKEND)
    if name not in BACKENDS:
        import warnings

        warnings.warn(
            f"ignoring unknown REPRO_SIM_BACKEND={name!r}; expected one of "
            f"{BACKENDS} — using {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return DEFAULT_BACKEND
    return name


_BACKEND = _initial_backend()


def backend() -> str:
    """The active replay backend name."""
    return _BACKEND


def set_backend(name: str) -> None:
    """Select the process-wide replay backend."""
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    global _BACKEND
    _BACKEND = name


@contextmanager
def forced_backend(name: str) -> Iterator[None]:
    """Temporarily force a specific replay backend (parity tests)."""
    previous = _BACKEND
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def vector_enabled() -> bool:
    """Whether simulators should try the NumPy vector backend first."""
    return _BACKEND == "vector"


# ------------------------------------------------------- legacy two-level API

def fast_path_enabled() -> bool:
    """Whether simulators may take the columnar fast path (vector implies it)."""
    return _BACKEND != "reference"


def set_fast_path(enabled: bool) -> None:
    """Legacy two-level switch: ``True`` selects ``fast``, ``False`` ``reference``.

    Kept so pre-vector callers and tests continue to work; new code should use
    :func:`set_backend`.
    """
    set_backend("fast" if enabled else "reference")


@contextmanager
def forced_fast_path(enabled: bool) -> Iterator[None]:
    """Temporarily force the columnar fast path on or off (legacy API)."""
    previous = _BACKEND
    set_fast_path(enabled)
    try:
        yield
    finally:
        set_backend(previous)
