"""Evaluation metrics shared by the simulators and experiment drivers."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bpu.common import PredictorStats


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean, the multi-program throughput metric used for SMT (Michaud).

    Returns 0.0 for an empty list; raises if any value is non-positive because
    a zero IPC would make the metric undefined.
    """
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / value for value in values)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean used for cross-workload accuracy summaries."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True, slots=True)
class AccuracyReport:
    """Prediction-accuracy metrics for one model on one workload."""

    model: str
    workload: str
    oae_accuracy: float
    direction_accuracy: float
    target_accuracy: float
    misprediction_rate: float
    btb_evictions: int
    rerandomizations: int = 0
    flushes: int = 0

    @classmethod
    def from_stats(
        cls, model: str, workload: str, stats: PredictorStats,
        rerandomizations: int = 0, flushes: int = 0,
    ) -> "AccuracyReport":
        return cls(
            model=model,
            workload=workload,
            oae_accuracy=stats.oae_accuracy,
            direction_accuracy=stats.direction_accuracy,
            target_accuracy=stats.target_accuracy,
            misprediction_rate=stats.misprediction_rate,
            btb_evictions=stats.btb_evictions,
            rerandomizations=rerandomizations,
            flushes=flushes,
        )


@dataclass(frozen=True, slots=True)
class PerformanceReport:
    """Cycle-approximate performance metrics for one model on one workload."""

    model: str
    workload: str
    instructions: float
    cycles: float
    direction_accuracy: float
    target_accuracy: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def normalized(value: float, baseline: float) -> float:
    """Safe normalisation used for "relative to unprotected" series."""
    return value / baseline if baseline else 0.0


def reduction(protected: float, baseline: float) -> float:
    """Absolute reduction (baseline − protected), the paper's Figure 4/5 y-axis."""
    return baseline - protected
