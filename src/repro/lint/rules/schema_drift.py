"""``schema-drift`` (project): serialized field sets may not move silently.

Every persisted or served artifact in this repo carries a schema tag
(``repro.scenario/v1``, ``repro.store.record/v1``, ``RESULT_SCHEMA_VERSION``,
...), and the store's cache-invalidation rule is exactly that tag: a record
whose field set changes without its version string bumping is
indistinguishable from the old records already on disk — warm caches then
serve the old shape forever.  PR 5 enforced this by convention; this rule
enforces it by analysis.

The analysis extracts the tree's **schema surface**: for every dict literal
that cites a schema constant (an envelope) and every ``@dataclass`` in a
schema-bearing module, the entry's field set plus the version values it is
tied to.  The checked-in ``api-surface.json`` records the last *intentional*
surface.  On every project scan the two are diffed:

* fields changed while every tied version value stayed put → the silent
  drift the store cannot detect — the finding says to bump the version;
* anything else out of sync (new entry, removed entry, fields changed with
  a bump, version bumped alone) → the surface file is stale; re-record it
  with ``repro lint --write-surface`` so the *next* drift has a correct
  reference point.

Either way the scan fails until ``api-surface.json`` matches the tree again,
which is what keeps the recorded surface trustworthy.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.lint.findings import Finding, Scope, Severity
from repro.lint.framework import Project, Rule, register_rule
from repro.lint.rules._ast import project_finding

#: Schema tag of the ``api-surface.json`` document itself.
SURFACE_SCHEMA = "repro.api-surface/v1"


def surface_payload(analysis) -> dict[str, Any]:
    """The ``api-surface.json`` document for the analyzed tree (location
    fields stripped: the surface records *what* is serialized, not where)."""
    entries = []
    for entry in analysis.surface_entries():
        entries.append({
            "id": entry["id"],
            "kind": entry["kind"],
            "constants": dict(sorted(entry["constants"].items())),
            "fields": list(entry["fields"]),
        })
    return {"schema": SURFACE_SCHEMA, "entries": entries}


def _field_diff(old: list[str], new: list[str]) -> str:
    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    parts = []
    if added:
        parts.append(f"added {', '.join(added)}")
    if removed:
        parts.append(f"removed {', '.join(removed)}")
    return "; ".join(parts) or "reordered"


def _check(project: Project) -> Iterator[Finding]:
    analysis = project.analysis
    if analysis is None:
        return
    current = {entry["id"]: entry for entry in analysis.surface_entries()}
    doc = project.surface_doc
    if doc is None:
        if current:
            anchor = min(current.values(),
                         key=lambda entry: (entry["path"], entry["line"]))
            yield project_finding(
                RULE, anchor["path"], anchor["line"],
                f"{len(current)} schema-tagged entr(ies) found but no "
                "schema surface is recorded; check in api-surface.json via "
                "`repro lint --write-surface`")
        return
    recorded = {entry["id"]: entry for entry in doc.get("entries", ())
                if isinstance(entry, dict) and "id" in entry}
    surface_path = project.surface_path or "api-surface.json"
    for entry_id in sorted(set(current) | set(recorded)):
        now = current.get(entry_id)
        was = recorded.get(entry_id)
        if was is None:
            yield project_finding(
                RULE, now["path"], now["line"],
                f"schema entry {entry_id} ({now['kind']}) is not recorded "
                f"in {surface_path}; re-record with `repro lint "
                "--write-surface`")
            continue
        if now is None:
            yield project_finding(
                RULE, surface_path, 1,
                f"recorded schema entry {entry_id} no longer exists in the "
                f"tree; re-record {surface_path} with `repro lint "
                "--write-surface`")
            continue
        fields_moved = list(was.get("fields", ())) != list(now["fields"])
        old_constants = dict(was.get("constants", ()))
        bumped = any(old_constants.get(name) not in (None, value)
                     for name, value in now["constants"].items())
        if fields_moved and not bumped:
            yield project_finding(
                RULE, now["path"], now["line"],
                f"fields of schema entry {entry_id} changed "
                f"({_field_diff(list(was.get('fields', ())), now['fields'])}) "
                "but its version "
                f"({', '.join(f'{k}={v}' for k, v in sorted(now['constants'].items()))}) "
                "did not bump; stored records with the old shape become "
                "indistinguishable — bump the version string")
        elif fields_moved or old_constants != now["constants"]:
            yield project_finding(
                RULE, now["path"], now["line"],
                f"schema entry {entry_id} changed with a version bump; "
                f"{surface_path} is stale — re-record with `repro lint "
                "--write-surface`")


RULE = register_rule(Rule(
    id="schema-drift",
    severity=Severity.ERROR,
    description="a schema-tagged envelope/dataclass field set changed "
                "without bumping its version string (or api-surface.json "
                "is out of date)",
    check=_check,
    scope=Scope.PROJECT,
))
