"""``hot-path``: replay hot paths keep ``__slots__`` and dispatch-free loops.

PR 2/4/6 bought their speedups partly by giving every per-access object
``__slots__`` (no dict allocation per instance, faster attribute loads) and
by eliminating per-item ``isinstance`` dispatch from the replay loops.  Both
regress silently — a new helper class or a convenient type check costs a few
percent that no test fails on.  This rule pins them:

* every class in the hot modules (``repro.bpu.*`` structures and the vector
  engine) must declare ``__slots__`` or be a ``@dataclass(slots=True)``;
  ``typing.Protocol`` / enum / exception classes are exempt (never
  instantiated per access);
* no ``isinstance`` call inside a loop in the optimized replay modules
  (``repro.sim.fastpath``, ``repro.sim.vector``) or the ``repro.bpu``
  structures.  The *reference* replay loops in ``bpu_sim``/``smt`` keep
  their item-type discrimination by design and are outside this scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.framework import ModuleUnit, Project, Rule, register_rule
from repro.lint.rules._ast import (
    dataclass_slots,
    finding_at,
    has_own_slots,
)

#: Modules whose classes are allocated on the per-access/per-span hot path.
SLOTS_SCOPE = ("repro.bpu.", "repro.sim.vector")

#: Optimized replay modules that must stay free of per-item isinstance.
LOOP_SCOPE = ("repro.bpu.", "repro.sim.fastpath", "repro.sim.vector")

#: Base classes whose subclasses are exempt from the slots requirement.
_EXEMPT_BASES = frozenset({
    "Protocol", "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "NamedTuple", "TypedDict", "Exception", "BaseException",
})


def _is_exempt(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        try:
            name = ast.unparse(base).split(".")[-1]
        except Exception:  # pragma: no cover - unparse of odd bases
            continue
        if name in _EXEMPT_BASES or name.endswith("Error"):
            return True
    return False


def _check_slots(unit: ModuleUnit) -> Iterator[Finding]:
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _is_exempt(node):
            continue
        if has_own_slots(node) or dataclass_slots(node):
            continue
        yield finding_at(
            RULE, unit, node,
            f"class {node.name} in hot module {unit.module} lacks "
            "__slots__; per-access objects must not allocate a __dict__ "
            "(declare __slots__ or use @dataclass(slots=True))")


def _check_loops(unit: ModuleUnit) -> Iterator[Finding]:
    loops = [node for node in ast.walk(unit.tree)
             if isinstance(node, (ast.For, ast.AsyncFor, ast.While))]
    seen: set[int] = set()
    for loop in loops:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id == "isinstance":
                if id(node) in seen:
                    continue
                seen.add(id(node))
                yield finding_at(
                    RULE, unit, node,
                    "isinstance() inside a replay-path loop reintroduces "
                    "per-item dispatch; hoist the type decision out of the "
                    "loop (registry protocol, enum tag, or pre-split "
                    "columns)")


def _check(project: Project) -> Iterator[Finding]:
    for unit in project.in_scope(SLOTS_SCOPE):
        yield from _check_slots(unit)
    for unit in project.in_scope(LOOP_SCOPE):
        yield from _check_loops(unit)


RULE = register_rule(Rule(
    id="hot-path",
    severity=Severity.WARNING,
    description="hot-path hygiene: __slots__ on repro.bpu/vector classes, "
                "no per-item isinstance in optimized replay loops",
    check=_check,
))
