"""``determinism``: no hidden nondeterminism on the fingerprint/result path.

The content-addressed store (PR 5) caches records by a fingerprint over a
job's *declared* inputs.  Any value that leaks into a result from outside
those inputs — wall-clock time, kernel entropy, an unseeded RNG, randomized
``str`` hashing, set iteration order — makes identical fingerprints map to
different payloads and silently poisons every warm run.  This rule bans the
known sources in the modules on that path: the engine, the fingerprint module
itself (``repro.store.keys``), the experiment drivers, and trace generation.

Out of scope by design: ``repro.bench`` (a timing harness measures wall time)
and the rest of ``repro.store`` (e.g. the disk store's temp-file staleness
clock never reaches a payload).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.framework import Project, Rule, register_rule
from repro.lint.rules._ast import canonical_call, finding_at, import_aliases

#: Modules on the fingerprint/result path (``.`` suffix = whole subtree).
SCOPE = (
    "repro.engine", "repro.engine.",
    "repro.store.keys",
    "repro.experiments", "repro.experiments.",
    "repro.trace", "repro.trace.",
)

#: Canonical call name → why it is banned here.
BANNED_CALLS = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "process-relative time",
    "time.monotonic_ns": "process-relative time",
    "time.perf_counter": "process-relative time",
    "time.perf_counter_ns": "process-relative time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "kernel entropy",
    "uuid.uuid1": "host/time-derived identity",
    "uuid.uuid4": "kernel entropy",
}

#: Set-producing expressions whose direct iteration order is undefined.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


def _flag(rule: Rule, unit, node, name: str, why: str) -> Finding:
    return finding_at(
        rule, unit, node,
        f"{name}() is {why}; on the fingerprint/result path every value "
        "must derive from declared job inputs (seeds, params)")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
    return False


def _check_call(rule: Rule, unit, aliases, node: ast.Call) -> Iterator[Finding]:
    name = canonical_call(aliases, node)
    if name is None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            yield finding_at(
                rule, unit, node,
                "builtin hash() is randomized per process for str/bytes "
                "(PYTHONHASHSEED); use zlib.crc32 or hashlib for stable keys")
        return
    why = BANNED_CALLS.get(name)
    if why is not None:
        yield _flag(rule, unit, node, name, why)
        return
    if name == "hash":
        yield finding_at(
            rule, unit, node,
            "builtin hash() is randomized per process for str/bytes "
            "(PYTHONHASHSEED); use zlib.crc32 or hashlib for stable keys")
        return
    if name.startswith("secrets."):
        yield _flag(rule, unit, node, name, "kernel entropy")
        return
    if name == "random.Random":
        if not node.args:
            yield _flag(rule, unit, node, name,
                        "an unseeded RNG (seeded from OS entropy)")
        return
    if name.startswith("random."):
        yield _flag(rule, unit, node, name,
                    "the shared module-level RNG (unseeded, cross-call state)")
        return
    if name == "numpy.random.default_rng":
        if not node.args:
            yield _flag(rule, unit, node, name,
                        "an unseeded RNG (seeded from OS entropy)")
        return
    if name.startswith("numpy.random."):
        yield _flag(rule, unit, node, name,
                    "the legacy global NumPy RNG (process-wide hidden state)")


def _check_set_iteration(rule: Rule, unit, tree: ast.Module) -> Iterator[Finding]:
    iterables: list[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
    for iterable in iterables:
        if _is_set_expr(iterable):
            yield finding_at(
                rule, unit, iterable,
                "iterating a set directly has no defined order; wrap it in "
                "sorted() before anything that feeds serialization")


def _check(project: Project) -> Iterator[Finding]:
    for unit in project.in_scope(SCOPE):
        aliases = import_aliases(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                yield from _check_call(RULE, unit, aliases, node)
        yield from _check_set_iteration(RULE, unit, unit.tree)


RULE = register_rule(Rule(
    id="determinism",
    severity=Severity.ERROR,
    description="nondeterministic call or set iteration on the "
                "fingerprint/result path (engine, store.keys, experiments, "
                "trace)",
    check=_check,
))
