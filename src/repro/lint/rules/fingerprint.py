"""``fingerprint-coverage``: serialized fields must be fingerprinted.

The cache-correctness contract of :mod:`repro.store.keys`: every field of a
:class:`~repro.engine.grid.Job` (and of a
:class:`~repro.engine.scenario.Scenario`) that can shape a serialized result
must feed the content-address, or two logically different runs would collide
on one cache key.  Exclusions must be *explicit* — named in the
``JOB_FINGERPRINT_EXEMPT`` / ``SCENARIO_FINGERPRINT_EXEMPT`` constants next
to the fingerprint functions, with a comment saying why (e.g. ``index`` is
presentation, not identity).  This rule cross-references the dataclass
definitions against the attribute reads in the fingerprint functions and the
exemption constants, so adding a field without deciding its cache identity is
a lint error, and a stale exemption (field removed, or exempted *and*
fingerprinted) is flagged too — the mechanical form of the
``RESULT_SCHEMA_VERSION`` invalidation rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.framework import ModuleUnit, Project, Rule, register_rule
from repro.lint.rules._ast import finding_at, string_set_constant

#: (dataclass module, class name, fingerprint function, exemption constant).
CONTRACTS = (
    ("repro.engine.grid", "Job", "job_fingerprint_fields",
     "JOB_FINGERPRINT_EXEMPT"),
    ("repro.engine.scenario", "Scenario", "scenario_fingerprint",
     "SCENARIO_FINGERPRINT_EXEMPT"),
)

#: Module holding the fingerprint functions and exemption constants.
KEYS_MODULE = "repro.store.keys"


def _dataclass_fields(unit: ModuleUnit, class_name: str) -> dict[str, ast.AST]:
    for node in unit.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: dict[str, ast.AST] = {}
            for child in node.body:
                if isinstance(child, ast.AnnAssign) and isinstance(
                        child.target, ast.Name):
                    if not child.target.id.startswith("_"):
                        fields[child.target.id] = child
            return fields
    return {}


def _function(unit: ModuleUnit, name: str) -> ast.FunctionDef | None:
    for node in unit.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _read_attributes(func: ast.FunctionDef) -> set[str]:
    """Attribute names read off the function's first parameter."""
    if not func.args.args:
        return set()
    param = func.args.args[0].arg
    reads: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == param:
                reads.add(node.attr)
    return reads


def _check_contract(keys_unit: ModuleUnit, data_unit: ModuleUnit,
                    class_name: str, func_name: str,
                    exempt_name: str) -> Iterator[Finding]:
    fields = _dataclass_fields(data_unit, class_name)
    func = _function(keys_unit, func_name)
    if func is None:
        yield finding_at(
            RULE, keys_unit, keys_unit.tree,
            f"fingerprint function {func_name}() not found; the "
            f"{class_name} coverage contract cannot be checked")
        return
    if not fields:
        yield finding_at(
            RULE, data_unit, data_unit.tree,
            f"dataclass {class_name} not found in {data_unit.module}; the "
            "fingerprint coverage contract cannot be checked")
        return
    reads = _read_attributes(func)
    exempt = string_set_constant(keys_unit.tree, exempt_name)
    if exempt is None:
        yield finding_at(
            RULE, keys_unit, func,
            f"exemption constant {exempt_name} is missing; declare it (even "
            "empty) next to the fingerprint function so exclusions are "
            "explicit")
        exempt = set()
    for name, node in sorted(fields.items()):
        if name in reads or name in exempt:
            continue
        yield finding_at(
            RULE, data_unit, node,
            f"{class_name}.{name} is neither read by {func_name}() nor "
            f"listed in {exempt_name}; fingerprint it or exempt it "
            "explicitly (two runs differing only in this field would share "
            "a cache key)")
    for name in sorted(exempt):
        if name not in fields:
            yield finding_at(
                RULE, keys_unit, func,
                f"{exempt_name} exempts {name!r}, which is not a field of "
                f"{class_name}; drop the stale entry")
        elif name in reads:
            yield finding_at(
                RULE, keys_unit, func,
                f"{exempt_name} exempts {name!r}, but {func_name}() reads "
                "it; drop the contradictory entry")


def _check(project: Project) -> Iterator[Finding]:
    keys_unit = project.by_module(KEYS_MODULE)
    if keys_unit is None or keys_unit.tree is None:
        return
    for data_module, class_name, func_name, exempt_name in CONTRACTS:
        data_unit = project.by_module(data_module)
        if data_unit is None or data_unit.tree is None:
            # Scanning keys.py alone (or a fixture subset) is not a coverage
            # violation; the contract needs both sides in the scan set.
            continue
        yield from _check_contract(
            keys_unit, data_unit, class_name, func_name, exempt_name)


RULE = register_rule(Rule(
    id="fingerprint-coverage",
    severity=Severity.ERROR,
    description="Job/Scenario fields must feed the store fingerprint or be "
                "explicitly exempted in repro.store.keys",
    check=_check,
))
