"""Small AST helpers shared by the rule modules (no registration here)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.framework import ModuleUnit, Rule


def finding_at(rule: Rule, unit: ModuleUnit, node: ast.AST,
               message: str) -> Finding:
    """A :class:`Finding` for ``rule`` anchored at ``node`` in ``unit``."""
    return Finding(
        rule=rule.id, severity=rule.severity, path=unit.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message, scope=rule.scope,
    )


def project_finding(rule: Rule, path: str, line: int,
                    message: str, col: int = 1) -> Finding:
    """A :class:`Finding` for a project rule anchored by path/line (project
    rules locate witnesses through analysis summaries, not AST nodes)."""
    return Finding(
        rule=rule.id, severity=rule.severity, path=path,
        line=line, col=col, message=message, scope=rule.scope,
    )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute chain rooted at a plain name, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → canonical dotted origin for every import in ``tree``.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import Random``
    maps ``Random -> random.Random``.  Lets rules reason about canonical names
    regardless of the import spelling.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def canonical_call(aliases: dict[str, str], node: ast.Call) -> str | None:
    """The canonical dotted name a call resolves to, through the import map."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def self_attribute_chain(node: ast.AST) -> str | None:
    """``"x"`` for ``self.x`` / ``self.x.y`` / ``self.x[k]`` targets: the
    first-level attribute of an access rooted at ``self``, else ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if (isinstance(node, ast.Attribute)
                and isinstance(parent, ast.Name) and parent.id == "self"):
            return node.attr
        node = parent
    return None


def class_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child


def has_own_slots(node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``__slots__`` directly."""
    for child in node.body:
        targets: list[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = child.targets
        elif isinstance(child, ast.AnnAssign):
            targets = [child.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def dataclass_slots(node: ast.ClassDef) -> bool:
    """Whether the class is decorated ``@dataclass(..., slots=True)``."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value is True:
                    return True
    return False


def string_set_constant(tree: ast.Module, name: str) -> set[str] | None:
    """The value of a module-level ``NAME = {...}`` / ``frozenset({...})``
    assignment of string constants, or ``None`` when absent."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name) and t.id == name
                   for t in node.targets):
            continue
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id in ("frozenset", "set") and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            elements = value.elts
        else:
            return None
        result: set[str] = set()
        for element in elements:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                result.add(element.value)
            else:
                return None
        return result
    return None


def string_tuple_constant(tree: ast.Module, name: str) -> tuple[str, ...] | None:
    """The value of a module-level ``NAME = ("a", ...)`` assignment."""
    values = string_set_constant(tree, name)
    if values is None:
        return None
    return tuple(sorted(values))
