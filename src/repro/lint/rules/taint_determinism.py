"""``taint-determinism`` (project): no nondeterminism reaches a fingerprint.

The module-scoped ``determinism`` rule bans wall-clock/entropy calls *inside*
the fingerprint-path modules — but a helper one module over can launder the
same value::

    # repro/util/stamp.py
    def build_stamp():
        return time.time()          # fine by the module rule: not in scope

    # repro/store/keys.py
    payload["stamp"] = build_stamp()
    fingerprint_of(payload)          # nondeterministic fingerprint!

This rule closes that hole interprocedurally.  Its *sinks* are the two
functions every fingerprint funnels through — ``repro.store.keys:
canonical_json`` and ``repro.store.keys:fingerprint_of`` — plus, via the
sink-parameter fixpoint, every function that forwards a parameter into them
(``job_fingerprint``, ``scenario_fingerprint``, ...).  Its *sources* are
:data:`repro.lint.graph.NONDETERMINISM_SOURCES` (wall clock, ``os.urandom``,
uuid1/uuid4, ``secrets``, module-level ``random``, unseeded RNG
constructors, builtin ``hash``).  A finding fires where a call argument that
feeds a sink parameter carries a source — directly in the argument
expression, or through any chain of calls whose returns are (transitively)
tainted.  The message names the source, the sink, and the laundering
function when there is one.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, Scope, Severity
from repro.lint.framework import Project, Rule, register_rule
from repro.lint.rules._ast import project_finding

#: Fully-sinking functions: every argument ends up in a fingerprint digest.
SINK_ROOTS = (
    "repro.store.keys:canonical_json",
    "repro.store.keys:fingerprint_of",
)


def _check(project: Project) -> Iterator[Finding]:
    analysis = project.analysis
    if analysis is None:
        return
    from repro.lint.graph import NONDETERMINISM_SOURCES

    for flow in analysis.sink_flows(SINK_ROOTS):
        why = NONDETERMINISM_SOURCES.get(flow["source"], "nondeterministic")
        via = (f" laundered through {flow['via']}" if flow["via"] is not None
               else "")
        yield project_finding(
            RULE, flow["path"], flow["line"],
            f"{flow['source']} ({why}) flows into fingerprint sink "
            f"{flow['sink']}{via}; fingerprinted payloads must be "
            "deterministic functions of the experiment spec",
            col=flow["col"])


RULE = register_rule(Rule(
    id="taint-determinism",
    severity=Severity.ERROR,
    description="a wall-clock/entropy/unseeded-RNG value flows through a "
                "call chain into a fingerprinted or canonical-JSON payload",
    check=_check,
    scope=Scope.PROJECT,
))
