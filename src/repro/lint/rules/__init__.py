"""Built-in lint rules.  Importing this package registers every rule.

Each module encodes one repository invariant:

* :mod:`~repro.lint.rules.determinism` — nothing nondeterministic on the
  fingerprint/result path;
* :mod:`~repro.lint.rules.fingerprint` — serialized job/scenario fields are
  fingerprinted or explicitly exempted;
* :mod:`~repro.lint.rules.threadsafety` — serve-tier shared state mutates
  only under its lock;
* :mod:`~repro.lint.rules.parity` — models join the vector backend fully or
  not at all;
* :mod:`~repro.lint.rules.hotpath` — replay hot paths keep ``__slots__`` and
  stay free of per-item ``isinstance`` dispatch.
"""

from repro.lint.rules import (  # noqa: F401  (import-time registration)
    determinism,
    fingerprint,
    hotpath,
    parity,
    threadsafety,
)
