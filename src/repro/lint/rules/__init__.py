"""Built-in lint rules.  Importing this package registers every rule.

Each module encodes one repository invariant:

* :mod:`~repro.lint.rules.determinism` — nothing nondeterministic on the
  fingerprint/result path;
* :mod:`~repro.lint.rules.fingerprint` — serialized job/scenario fields are
  fingerprinted or explicitly exempted;
* :mod:`~repro.lint.rules.threadsafety` — serve-tier shared state mutates
  only under its lock;
* :mod:`~repro.lint.rules.parity` — models join the vector backend fully or
  not at all;
* :mod:`~repro.lint.rules.hotpath` — replay hot paths keep ``__slots__`` and
  stay free of per-item ``isinstance`` dispatch.

Project-scoped rules (run under ``repro lint --project``, backed by the
interprocedural analysis in :mod:`repro.lint.graph`):

* :mod:`~repro.lint.rules.lock_order` — the cross-module lock-acquisition
  graph is cycle-free and no lock is held across blocking I/O;
* :mod:`~repro.lint.rules.taint_determinism` — no nondeterminism source
  flows through any call chain into a fingerprint sink;
* :mod:`~repro.lint.rules.schema_drift` — serialized field sets match the
  checked-in ``api-surface.json`` and only move with a version bump.
"""

from repro.lint.rules import (  # noqa: F401  (import-time registration)
    determinism,
    fingerprint,
    hotpath,
    lock_order,
    parity,
    schema_drift,
    taint_determinism,
    threadsafety,
)
