"""``thread-safety``: serve-tier shared state mutates only under its lock.

``repro serve`` executes scenario POSTs on :class:`ThreadingHTTPServer`
handler threads, so everything in :mod:`repro.store` is multi-thread
reachable — PR 5's review fixed a dozen unlocked-global bugs in that tier by
hand; this rule detects the same shapes mechanically:

* **module-level mutable state** (dicts/lists/sets built at import time)
  mutated inside a function without a held lock;
* **inconsistently locked attributes**: in a class that owns a lock
  (``self._lock = threading.Lock()`` or a ``field(default_factory=
  threading.Lock)`` dataclass field), any attribute that is mutated under a
  ``with ...lock...:`` block somewhere must be mutated under it everywhere —
  one bare mutation reintroduces the lost-increment race the lock exists to
  prevent;
* **bare read-modify-write** (``self.x += ...``, ``self.x[k] = ...``) outside
  any lock in a lock-owning class — the ``StoreCounters`` bug shape.

``__init__`` is exempt (construction is single-threaded), and classes without
a lock are not judged — whether an object is shared across threads is a
design fact the lock attribute declares.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.framework import (
    MUTATING_METHODS,
    ModuleUnit,
    Project,
    Rule,
    register_rule,
)
from repro.lint.rules._ast import dotted_name, finding_at, self_attribute_chain

#: Modules reachable from the threaded serve tier.  The metrics registry
#: (``repro.obs``) is mutated from every request handler and job worker, so
#: it carries the same lock discipline as the store.
SCOPE = ("repro.store", "repro.store.", "repro.obs", "repro.obs.")

#: Callables whose result is shared mutable module state when assigned at
#: module level.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
})

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore"})


def _is_lock_value(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _LOCK_FACTORIES:
            return True
        # dataclasses: field(default_factory=threading.Lock)
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                factory = dotted_name(keyword.value)
                if factory is not None and \
                        factory.split(".")[-1] in _LOCK_FACTORIES:
                    return True
    return False


def _owns_lock(node: ast.ClassDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and _is_lock_value(child.value):
            return True
        if isinstance(child, ast.AnnAssign) and child.value is not None \
                and _is_lock_value(child.value):
            return True
    return False


def _with_holds_lock(node: ast.With) -> bool:
    for item in node.items:
        if "lock" in ast.unparse(item.context_expr).lower():
            return True
    return False


@dataclass(slots=True)
class _Mutation:
    """One mutation site: which first-level attr/global, where, how."""

    name: str
    node: ast.AST
    kind: str  # "augassign" | "subscript" | "delete" | "call"
    locked: bool


def _walk_mutations(func: ast.AST, *, of_self: bool,
                    globals_: frozenset[str] = frozenset(),
                    locked: bool = False) -> Iterator[_Mutation]:
    """Yield mutation events in ``func``, tracking ``with <lock>`` regions.

    ``of_self=True`` reports mutations rooted at ``self``; otherwise
    mutations of the module-level names in ``globals_``.
    """

    def root_name(target: ast.AST) -> str | None:
        if of_self:
            return self_attribute_chain(target)
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in globals_:
            return node.id
        return None

    def visit(node: ast.AST, locked: bool) -> Iterator[_Mutation]:
        if isinstance(node, ast.With):
            inner = locked or _with_holds_lock(node)
            for child in node.body:
                yield from visit(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later, possibly on another thread; judge their
            # bodies without the enclosing lock context.
            for child in node.body:
                yield from visit(child, False)
            return
        if isinstance(node, ast.AugAssign):
            name = root_name(node.target)
            if name is not None:
                yield _Mutation(name, node, "augassign", locked)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript,)):
                    name = root_name(target)
                    if name is not None:
                        yield _Mutation(name, node, "subscript", locked)
                elif not of_self and isinstance(target, ast.Name) \
                        and target.id in globals_:
                    yield _Mutation(target.id, node, "rebind", locked)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = root_name(target)
                    if name is not None:
                        yield _Mutation(name, node, "delete", locked)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                name = root_name(node.func.value)
                if name is not None:
                    yield _Mutation(name, node, "call", locked)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, locked)

    yield from visit(func, locked)


def _module_globals(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set))
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            mutable = name is not None and \
                name.split(".")[-1] in _MUTABLE_FACTORIES
        if mutable:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _check_module_globals(unit: ModuleUnit) -> Iterator[Finding]:
    globals_ = _module_globals(unit.tree)
    if not globals_:
        return
    for node in unit.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        for mutation in _walk_mutations(node, of_self=False, globals_=globals_):
            if mutation.locked:
                continue
            yield finding_at(
                RULE, unit, mutation.node,
                f"module-level mutable {mutation.name!r} is mutated without "
                "a held lock; serve-tier handler threads share module state")


def _check_class(unit: ModuleUnit, node: ast.ClassDef) -> Iterator[Finding]:
    if not _owns_lock(node):
        return
    events: list[_Mutation] = []
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name in ("__init__", "__new__", "__post_init__"):
            continue
        events.extend(_walk_mutations(method, of_self=True))
    guarded = {event.name for event in events if event.locked}
    for event in events:
        if event.locked:
            continue
        if event.name in guarded:
            yield finding_at(
                RULE, unit, event.node,
                f"attribute self.{event.name} of lock-owning class "
                f"{node.name} is mutated both under its lock and (here) "
                "without it; hold the lock for every mutation")
        elif event.kind in ("augassign", "subscript", "delete"):
            yield finding_at(
                RULE, unit, event.node,
                f"bare {event.kind} of self.{event.name} in lock-owning "
                f"class {node.name}; read-modify-write on shared objects "
                "loses updates across threads — mutate under the lock")


def _check(project: Project) -> Iterator[Finding]:
    for unit in project.in_scope(SCOPE):
        yield from _check_module_globals(unit)
        for node in unit.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from _check_class(unit, node)


RULE = register_rule(Rule(
    id="thread-safety",
    severity=Severity.ERROR,
    description="serve-tier shared state (module globals, lock-owning "
                "classes in repro.store) mutated without its lock",
    check=_check,
))
