"""``lock-order`` (project): deadlock-shaped lock usage across modules.

``repro serve`` runs handlers on :class:`ThreadingHTTPServer` threads; each
one may take the service's execution lock, the disk store's index lock, and
the counters' lock on a single request path.  The module-scoped
``thread-safety`` rule proves each mutation is *locked*; this rule proves the
locks compose: it builds the project-wide lock-acquisition graph — an edge
``A → B`` wherever ``B`` is acquired while ``A`` is held, whether the
acquisition is lexically nested or buried three calls deep — and reports:

* **cycles** in that graph (two threads taking the same pair of locks in
  opposite orders is the classic deadlock; the fix is a documented global
  order);
* **blocking I/O under a lock**: a held-lock call chain that reaches
  ``time.sleep``, a socket/HTTP request, a subprocess, or a worker-pool wait
  (:data:`repro.lint.graph.BLOCKING_CALLS`) serializes every other thread
  behind an unbounded wait.  Local file I/O is deliberately not "blocking":
  the disk store writes under its index lock by design.

Lock identities come from the analysis summaries: ``module:Class.attr`` for
``self._lock``-style locks, ``module:NAME`` for module-level ones.  Findings
anchor at the witness call; messages stay line-free so baselines survive
unrelated edits.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding, Scope, Severity
from repro.lint.framework import Project, Rule, register_rule
from repro.lint.rules._ast import project_finding


def _lock_display(analysis, lock_id: str) -> str:
    kind = analysis.lock_kind(lock_id)
    return f"{lock_id} ({kind})" if kind else lock_id


def _check(project: Project) -> Iterator[Finding]:
    analysis = project.analysis
    if analysis is None:
        return
    edges = analysis.lock_order_edges()

    # Deadlock cycles: one finding per strongly-connected lock set, anchored
    # at the lexically-first witness edge inside the cycle.
    for cycle in analysis.lock_cycles():
        members = set(cycle)
        witnesses = sorted(
            (edge for pair, edge in edges.items()
             if pair[0] in members and pair[1] in members),
            key=lambda edge: (edge["path"], edge["line"]))
        order = " vs ".join(
            f"{held} -> {acquired}"
            for held, acquired in sorted(pair for pair in edges
                                         if pair[0] in members
                                         and pair[1] in members))
        anchor = witnesses[0]
        yield project_finding(
            RULE, anchor["path"], anchor["line"],
            f"potential deadlock: locks {', '.join(cycle)} are acquired in "
            f"conflicting orders ({order}); establish and document a single "
            "global acquisition order")

    # Blocking I/O while holding a lock: direct externals and call chains.
    blocking = analysis.blocking_functions()
    from repro.lint.graph import is_blocking_call

    reported: set[tuple[str, str, str]] = set()
    for fn_id, record in analysis.iter_functions():
        module = analysis.module_of(fn_id)
        for call in record["calls"]:
            if not call["held"]:
                continue
            internal, external = analysis.resolve_call(module, call)
            hits: list[tuple[str, str]] = []  # (blocking name, chain text)
            for name in sorted(set(external)):
                if is_blocking_call(name):
                    hits.append((name, f"{fn_id} -> {name}"))
            for callee in sorted(set(internal)):
                if callee in blocking:
                    chain = [fn_id] + analysis.blocking_chain(callee)
                    hits.append((blocking[callee][0], " -> ".join(chain)))
            for name, chain in hits:
                for lock in call["held"]:
                    key = (lock, name, fn_id)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield project_finding(
                        RULE, analysis.path_of(fn_id), call["line"],
                        f"blocking call {name} is reachable while holding "
                        f"{_lock_display(analysis, lock)}: {chain}; every "
                        "other thread contending for the lock waits behind "
                        "this I/O", col=call["col"])


RULE = register_rule(Rule(
    id="lock-order",
    severity=Severity.ERROR,
    description="project-wide lock-acquisition graph has a cycle (potential "
                "deadlock) or blocking I/O runs under a held lock",
    check=_check,
    scope=Scope.PROJECT,
))
