"""``backend-parity``: models join the vector backend fully or not at all.

The replay backends are parity-tested byte-identical, and the store answers
for all of them with one fingerprint — so the vector surface must never be
*half*-implemented.  The shapes this rule enforces (see
:mod:`repro.bpu.mapping` and :mod:`repro.sim.vector` for the idiom):

* an override of ``vector_kernel`` / ``vector_maps`` / ``vector_encode``
  must gate on its **exact class** (``type(self) is ...``), delegate to a
  wrapped component / kernel factory, or be a bare ``return None`` — a
  behavioural subclass must never inherit a mismatched kernel;
* a mapping-provider subclass that overrides any scalar map method must
  *decide* its vector story by defining ``vector_maps`` itself (even if that
  is ``return None`` — explicit fallback, not silent inheritance), and a
  codec overriding ``encode``/``decode`` must define ``vector_encode``;
* every guarded span stepper in :mod:`repro.sim.vector` (class name ending
  ``Stepper``) must implement the full ``STEPPER_PROTOCOL`` declared there,
  so a new direction predictor cannot plug in a partial stepper.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.framework import ModuleUnit, Project, Rule, register_rule
from repro.lint.rules._ast import finding_at, string_tuple_constant

#: Modules carrying the vector-backend surface.
SCOPE = ("repro.bpu.", "repro.core.", "repro.sim.vector")

#: The scalar map methods of :class:`repro.bpu.mapping.MappingProvider`;
#: overriding any of them changes table addressing, which the vector maps
#: mirror exactly.
PROVIDER_MAP_METHODS = frozenset({
    "btb_key", "pht_index_1level", "pht_index_2level",
    "tage_index", "tage_tag", "perceptron_index",
})

#: Scalar codec methods mirrored by ``vector_encode``.
CODEC_METHODS = frozenset({"encode", "decode"})

#: Module declaring the span-stepper protocol constant.
VECTOR_MODULE = "repro.sim.vector"
STEPPER_PROTOCOL_NAME = "STEPPER_PROTOCOL"

_VECTOR_OVERRIDES = ("vector_kernel", "vector_maps", "vector_encode")


def _body_statements(func: ast.FunctionDef) -> list[ast.stmt]:
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant) and isinstance(
            body[0].value.value, str):
        body = body[1:]  # docstring
    return [stmt for stmt in body
            if not isinstance(stmt, (ast.Import, ast.ImportFrom))]


def _returns_none_only(func: ast.FunctionDef) -> bool:
    body = _body_statements(func)
    return len(body) == 1 and isinstance(body[0], ast.Return) and (
        body[0].value is None or (
            isinstance(body[0].value, ast.Constant)
            and body[0].value.value is None))


def _has_exact_type_gate(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            operands = [node.left, *node.comparators]
            for operand in operands:
                if isinstance(operand, ast.Call) and isinstance(
                        operand.func, ast.Name) and operand.func.id == "type":
                    return True
    return False


def _delegates(func: ast.FunctionDef) -> bool:
    """Whether the override routes through a component or kernel factory."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _VECTOR_OVERRIDES or attr.endswith("_kernel"):
                return True
    return False


def _check_override(unit: ModuleUnit, cls: ast.ClassDef,
                    func: ast.FunctionDef) -> Iterator[Finding]:
    if _returns_none_only(func):
        return
    if _has_exact_type_gate(func) or _delegates(func):
        return
    yield finding_at(
        RULE, unit, func,
        f"{cls.name}.{func.name}() neither gates on its exact class "
        "(type(self) is ...) nor delegates to a gated factory/component; a "
        "behavioural subclass would silently inherit a mismatched vector "
        "surface")


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        try:
            names.append(ast.unparse(base))
        except Exception:  # pragma: no cover - unparse of odd bases
            continue
    return names


def _check_half_join(unit: ModuleUnit, cls: ast.ClassDef) -> Iterator[Finding]:
    defined = {stmt.name for stmt in cls.body
               if isinstance(stmt, ast.FunctionDef)}
    bases = _base_names(cls)
    is_provider = any(base.endswith("MappingProvider") for base in bases)
    is_codec = any(base.endswith("TargetCodec") for base in bases)
    if is_provider and defined & PROVIDER_MAP_METHODS \
            and "vector_maps" not in defined:
        overridden = ", ".join(sorted(defined & PROVIDER_MAP_METHODS))
        yield finding_at(
            RULE, unit, cls,
            f"{cls.name} overrides scalar map method(s) {overridden} but "
            "not vector_maps(); define it (return None for an explicit "
            "fallback) so the class cannot half-join the vector backend")
    if is_codec and defined & CODEC_METHODS and "vector_encode" not in defined:
        overridden = ", ".join(sorted(defined & CODEC_METHODS))
        yield finding_at(
            RULE, unit, cls,
            f"{cls.name} overrides codec method(s) {overridden} but not "
            "vector_encode(); define it (return None for an explicit "
            "fallback) so the class cannot half-join the vector backend")


def _check_steppers(unit: ModuleUnit) -> Iterator[Finding]:
    steppers = [node for node in ast.walk(unit.tree)
                if isinstance(node, ast.ClassDef)
                and node.name.endswith("Stepper")]
    if not steppers:
        return
    protocol = string_tuple_constant(unit.tree, STEPPER_PROTOCOL_NAME)
    if protocol is None:
        yield finding_at(
            RULE, unit, unit.tree,
            f"{unit.module} defines span steppers but no "
            f"{STEPPER_PROTOCOL_NAME} constant naming the guarded-stepper "
            "protocol methods")
        return
    for cls in steppers:
        defined = {stmt.name for stmt in cls.body
                   if isinstance(stmt, ast.FunctionDef)}
        missing = [name for name in protocol if name not in defined]
        if missing:
            yield finding_at(
                RULE, unit, cls,
                f"span stepper {cls.name} is missing guarded-stepper "
                f"protocol method(s): {', '.join(missing)}")


def _check(project: Project) -> Iterator[Finding]:
    for unit in project.in_scope(SCOPE):
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and \
                        stmt.name in _VECTOR_OVERRIDES:
                    yield from _check_override(unit, node, stmt)
            yield from _check_half_join(unit, node)
        if unit.module == VECTOR_MODULE:
            yield from _check_steppers(unit)


RULE = register_rule(Rule(
    id="backend-parity",
    severity=Severity.ERROR,
    description="vector-backend surface must be exact-class gated and "
                "complete (no half-joined kernels, providers, codecs, or "
                "steppers)",
    check=_check,
))
