"""``repro.lint`` — AST-based invariant checks for this repository.

The test suite can only spot-check the three invariants the system rests on;
this package encodes them as static-analysis rules so every change is checked
mechanically:

* **determinism** — results are content-addressed by fingerprint (PR 5), so
  any hidden nondeterminism on the fingerprint/result path silently poisons
  the cache;
* **backend parity** — every replay backend must stay bit-identical (PR 4/6),
  so a model must never half-join the vector backend;
* **serve-tier thread safety** — everything reachable from ``repro serve``'s
  threaded handlers must be lock-disciplined.

Module-scoped rules walk one file's AST at a time.  Project-scoped rules
(``repro lint --project``) additionally query the interprocedural analysis in
:mod:`repro.lint.graph` — a call graph plus per-function summaries, cached
content-addressed under ``.lint-cache/`` (:mod:`repro.lint.cache`) — to prove
cross-module invariants: lock-order soundness, taint-free fingerprints, and a
stable serialized schema surface (``api-surface.json``).  Nothing is imported
or executed — AST only.  Findings can be suppressed inline (``# repro-lint:
disable=<rule> -- <why>``) or grandfathered in a checked-in baseline file
(``lint-baseline.json``); see :mod:`repro.lint.framework` and
:mod:`repro.lint.baseline`.  The CLI front end is ``python -m repro lint``
(:mod:`repro.lint.cli`).
"""

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    baseline_payload,
    load_baseline,
)
from repro.lint.cache import CACHE_SCHEMA, DEFAULT_CACHE_DIR, SummaryCache
from repro.lint.findings import LINT_SCHEMA, Finding, Scope, Severity
from repro.lint.framework import (
    LintReport,
    ModuleUnit,
    Project,
    Rule,
    analyze_project,
    list_rules,
    load_builtin_rules,
    register_rule,
    rule_by_id,
    run_lint,
)
from repro.lint.graph import (
    ANALYSIS_VERSION,
    ProjectAnalysis,
    summarize_module,
)

__all__ = [
    "ANALYSIS_VERSION",
    "BASELINE_SCHEMA",
    "CACHE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_DIR",
    "Finding",
    "LINT_SCHEMA",
    "LintReport",
    "ModuleUnit",
    "Project",
    "ProjectAnalysis",
    "Rule",
    "Scope",
    "Severity",
    "SummaryCache",
    "analyze_project",
    "baseline_payload",
    "list_rules",
    "load_baseline",
    "load_builtin_rules",
    "register_rule",
    "rule_by_id",
    "run_lint",
    "summarize_module",
]
