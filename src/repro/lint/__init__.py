"""``repro.lint`` — AST-based invariant checks for this repository.

The test suite can only spot-check the three invariants the system rests on;
this package encodes them as static-analysis rules so every change is checked
mechanically:

* **determinism** — results are content-addressed by fingerprint (PR 5), so
  any hidden nondeterminism on the fingerprint/result path silently poisons
  the cache;
* **backend parity** — every replay backend must stay bit-identical (PR 4/6),
  so a model must never half-join the vector backend;
* **serve-tier thread safety** — everything reachable from ``repro serve``'s
  threaded handlers must be lock-disciplined.

Rules walk the AST only — nothing is imported or executed.  Findings can be
suppressed inline (``# repro-lint: disable=<rule> -- <why>``) or grandfathered
in a checked-in baseline file (``lint-baseline.json``); see
:mod:`repro.lint.framework` and :mod:`repro.lint.baseline`.  The CLI front end
is ``python -m repro lint`` (:mod:`repro.lint.cli`).
"""

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_BASELINE_NAME,
    baseline_payload,
    load_baseline,
)
from repro.lint.findings import LINT_SCHEMA, Finding, Severity
from repro.lint.framework import (
    LintReport,
    ModuleUnit,
    Project,
    Rule,
    list_rules,
    load_builtin_rules,
    register_rule,
    rule_by_id,
    run_lint,
)

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LINT_SCHEMA",
    "LintReport",
    "ModuleUnit",
    "Project",
    "Rule",
    "Severity",
    "baseline_payload",
    "list_rules",
    "load_baseline",
    "load_builtin_rules",
    "register_rule",
    "rule_by_id",
    "run_lint",
]
