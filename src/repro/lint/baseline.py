"""The lint baseline: checked-in grandfathered findings.

When a new rule lands, pre-existing violations that are deliberate (or whose
fix is deferred to a named follow-up) are recorded here instead of being
suppressed inline, so the CI gate stays red for *new* findings only.  Entries
match on ``(rule, path, message)`` — no line numbers, so unrelated edits never
churn the file, while fixing (or reworking) the flagged code makes its entry
stale.  ``repro lint --write-baseline`` regenerates the file from a fresh
scan; the shipped baseline is pinned by a self-check test against ``src/``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.lint.findings import Finding

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "repro.lint-baseline/v1"

#: Conventional baseline filename, looked up in the working directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


def baseline_payload(findings: Iterable[Finding]) -> dict[str, Any]:
    """The serialized form of ``findings`` as a baseline document."""
    entries = sorted(
        {finding.baseline_key for finding in findings})
    return {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in entries
        ],
    }


def dump_baseline(findings: Iterable[Finding], path: str | Path) -> int:
    """Write ``findings`` as a baseline file; returns the entry count."""
    payload = baseline_payload(findings)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(payload["entries"])


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Read a baseline file into the match-key set :func:`run_lint` takes."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{str(path)!r} is not a {BASELINE_SCHEMA} baseline file")
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {str(path)!r} has no entry list")
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        try:
            keys.add((entry["rule"], entry["path"], entry["message"]))
        except (TypeError, KeyError):
            raise ValueError(
                f"baseline {str(path)!r} has a malformed entry: {entry!r}"
            ) from None
    return keys
