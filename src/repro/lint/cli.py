"""``python -m repro lint`` — the CLI front end of :mod:`repro.lint`.

Exit codes follow the convention the CI gate relies on: **0** clean (no
active finding — suppressed and baselined ones do not count), **1** findings,
**2** usage error (unknown rule, missing path, unreadable baseline).

``--json`` emits the versioned ``repro.lint/v1`` envelope — the same
``{"schema", "spec", "result"}`` shape as every other ``--json`` artifact —
to stdout (bare flag) or to a file (``--json PATH``), so CI can upload and
diff reports.  ``--list-rules`` prints the sorted rule registry like the
other pinned listings; ``--write-baseline`` regenerates the grandfathered
findings file from a fresh scan.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    dump_baseline,
    load_baseline,
)
from repro.lint.findings import LINT_SCHEMA
from repro.lint.framework import LintReport, list_rules, run_lint


def lint_envelope(report: LintReport) -> dict[str, Any]:
    """The ``repro.lint/v1`` findings envelope for ``report``."""
    return {"schema": LINT_SCHEMA, "spec": "lint",
            "result": report.to_payload()}


def format_rules() -> str:
    """The sorted rule listing (id, severity, one-line description)."""
    rules = list_rules()
    width = max(len(rule.id) for rule in rules)
    return "\n".join(
        f"{rule.id:{width}s}  {rule.severity.value:7s}  {rule.description}"
        for rule in rules)


def format_report(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    tally = (f"{len(report.findings)} finding(s), "
             f"{report.suppressed} suppressed, {report.baselined} baselined")
    lines.append(f"lint: {tally}" if report.findings
                 else f"lint: clean ({tally})")
    return "\n".join(lines)


def add_lint_parser(subparsers) -> None:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    parser = subparsers.add_parser(
        "lint",
        help="run the repository's AST invariant checks "
             "(determinism, fingerprint coverage, thread safety, backend "
             "parity, hot-path hygiene)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)")
    parser.add_argument(
        "--rule", action="append", metavar="ID", default=None,
        help="run only this rule (repeatable; default: all rules)")
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the repro.lint/v1 findings envelope to PATH "
             "(bare --json: stdout)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the sorted rule registry and exit")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="grandfathered-findings file "
             f"(default: {DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument(
        "--no-baseline", dest="use_baseline", action="store_false",
        default=True, help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from this scan's findings and exit 0")
    parser.set_defaults(handler=cmd_lint)


def _resolve_baseline(args: argparse.Namespace):
    """The baseline key set for this run (or ``None``), honouring flags."""
    if not args.use_baseline:
        return None, None
    if args.baseline is not None:
        if not os.path.exists(args.baseline) and not args.write_baseline:
            raise ValueError(
                f"baseline file {args.baseline!r} does not exist")
        path = args.baseline
    elif os.path.exists(DEFAULT_BASELINE_NAME):
        path = DEFAULT_BASELINE_NAME
    else:
        return None, None
    if args.write_baseline or not os.path.exists(path):
        return None, path
    return load_baseline(path), path


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler for ``repro lint``; returns the process exit code."""
    if args.list_rules:
        print(format_rules())
        return 0
    baseline, baseline_path = _resolve_baseline(args)
    report = run_lint(args.paths, rule_ids=args.rule, baseline=baseline)
    if args.write_baseline:
        target = baseline_path or args.baseline or DEFAULT_BASELINE_NAME
        count = dump_baseline(report.findings, target)
        print(f"baseline written to {target} ({count} entrie(s))")
        return 0
    if args.json:
        payload = lint_envelope(report)
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"JSON written to {args.json}")
    if args.json != "-":
        print(format_report(report))
    return 0 if report.clean else 1
