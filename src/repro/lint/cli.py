"""``python -m repro lint`` — the CLI front end of :mod:`repro.lint`.

Exit codes follow the convention the CI gate relies on: **0** clean (no
active finding — suppressed and baselined ones do not count), **1** findings,
**2** usage error (unknown rule, missing path, unreadable baseline/surface).

``--json`` emits the versioned ``repro.lint/v2`` envelope — the same
``{"schema", "spec", "result"}`` shape as every other ``--json`` artifact —
to stdout (bare flag) or to a file (``--json PATH``), so CI can upload and
diff reports.  ``--list-rules`` prints the sorted rule registry like the
other pinned listings; ``--write-baseline`` regenerates the grandfathered
findings file from a fresh scan.

``--project`` turns on the interprocedural rules (lock-order,
taint-determinism, schema-drift) on top of the module rules.  Project mode
reads/writes the content-addressed summary cache under ``--cache-dir``
(default ``.lint-cache/``; ``--no-cache`` disables it) and compares the
tree's schema surface against ``--surface`` (default ``api-surface.json``
when present).  ``--write-surface`` re-records the surface after an
intentional schema change — the analysis-side analogue of
``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    dump_baseline,
    load_baseline,
)
from repro.lint.cache import DEFAULT_CACHE_DIR
from repro.lint.findings import LINT_SCHEMA
from repro.lint.framework import (
    LintReport,
    analyze_project,
    list_rules,
    run_lint,
)

#: Default schema-surface file (repo-root relative), like the baseline.
DEFAULT_SURFACE_NAME = "api-surface.json"


def lint_envelope(report: LintReport) -> dict[str, Any]:
    """The ``repro.lint/v2`` findings envelope for ``report``."""
    return {"schema": LINT_SCHEMA, "spec": "lint",
            "result": report.to_payload()}


def format_rules() -> str:
    """The sorted rule listing (id, severity, scope, one-line description)."""
    rules = list_rules()
    width = max(len(rule.id) for rule in rules)
    return "\n".join(
        f"{rule.id:{width}s}  {rule.severity.value:7s}  "
        f"{rule.scope.value:7s}  {rule.description}"
        for rule in rules)


def format_report(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    tally = (f"{len(report.findings)} finding(s), "
             f"{report.suppressed} suppressed, {report.baselined} baselined")
    if report.project is not None:
        stats = report.project
        tally += (f"; analysis: {stats.get('analyzed', 0)} analyzed, "
                  f"{stats.get('cached', 0)} cached")
    lines.append(f"lint: {tally}" if report.findings
                 else f"lint: clean ({tally})")
    return "\n".join(lines)


def add_lint_parser(subparsers) -> None:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    parser = subparsers.add_parser(
        "lint",
        help="run the repository's AST invariant checks "
             "(determinism, fingerprint coverage, thread safety, backend "
             "parity, hot-path hygiene; --project adds lock-order, "
             "taint-determinism, schema-drift)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)")
    parser.add_argument(
        "--rule", action="append", metavar="ID", default=None,
        help="run only this rule (repeatable; default: all rules; selecting "
             "a project rule builds the analysis even without --project)")
    parser.add_argument(
        "--project", action="store_true",
        help="enable the project-scoped interprocedural rules "
             "(lock-order, taint-determinism, schema-drift)")
    parser.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the repro.lint/v2 findings envelope to PATH "
             "(bare --json: stdout)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the sorted rule registry and exit")
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="grandfathered-findings file "
             f"(default: {DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument(
        "--no-baseline", dest="use_baseline", action="store_false",
        default=True, help="ignore any baseline file")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from this scan's findings and exit 0")
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="summary cache directory for project analysis "
             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument(
        "--no-cache", dest="use_cache", action="store_false", default=True,
        help="analyze every module fresh; do not read or write the cache")
    parser.add_argument(
        "--surface", metavar="PATH", default=None,
        help="schema-surface file for the schema-drift rule "
             f"(default: {DEFAULT_SURFACE_NAME} when present)")
    parser.add_argument(
        "--write-surface", action="store_true",
        help="re-record the schema surface from this scan and exit 0 "
             "(after an intentional schema change)")
    parser.set_defaults(handler=cmd_lint)


def _resolve_baseline(args: argparse.Namespace):
    """The baseline key set for this run (or ``None``), honouring flags."""
    if not args.use_baseline:
        return None, None
    if args.baseline is not None:
        if not os.path.exists(args.baseline) and not args.write_baseline:
            raise ValueError(
                f"baseline file {args.baseline!r} does not exist")
        path = args.baseline
    elif os.path.exists(DEFAULT_BASELINE_NAME):
        path = DEFAULT_BASELINE_NAME
    else:
        return None, None
    if args.write_baseline or not os.path.exists(path):
        return None, path
    return load_baseline(path), path


def _resolve_surface(args: argparse.Namespace):
    """``(surface_doc, surface_path)`` for this run, honouring flags."""
    if args.surface is not None:
        if not os.path.exists(args.surface) and not args.write_surface:
            raise ValueError(
                f"surface file {args.surface!r} does not exist")
        path = args.surface
    elif os.path.exists(DEFAULT_SURFACE_NAME):
        path = DEFAULT_SURFACE_NAME
    else:
        return None, None
    if args.write_surface or not os.path.exists(path):
        return None, path
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"surface file {path!r} is not a JSON object")
    return doc, path


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler for ``repro lint``; returns the process exit code."""
    if args.list_rules:
        print(format_rules())
        return 0
    cache_dir = args.cache_dir if args.use_cache else None
    surface_doc, surface_path = _resolve_surface(args)
    if args.write_surface:
        # Surface recording is its own fast path: build the analysis (via
        # the same cache) and serialize what the tree declares today.
        from repro.lint.rules.schema_drift import surface_payload

        analysis = analyze_project(args.paths, cache_dir)
        target = surface_path or args.surface or DEFAULT_SURFACE_NAME
        payload = surface_payload(analysis)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"schema surface written to {target} "
              f"({len(payload['entries'])} entry(ies))")
        return 0
    baseline, baseline_path = _resolve_baseline(args)
    report = run_lint(args.paths, rule_ids=args.rule, baseline=baseline,
                      project_mode=args.project, cache_dir=cache_dir,
                      surface_doc=surface_doc, surface_path=surface_path)
    if args.write_baseline:
        target = baseline_path or args.baseline or DEFAULT_BASELINE_NAME
        count = dump_baseline(report.findings, target)
        print(f"baseline written to {target} ({count} entry(ies))")
        return 0
    if args.json:
        payload = lint_envelope(report)
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"JSON written to {args.json}")
    if args.json != "-":
        print(format_report(report))
    return 0 if report.clean else 1
