"""The lint framework: rule registry, module parsing, suppressions, runner.

Rules are :class:`Rule` records registered by id (:func:`register_rule`); each
rule's ``check`` receives the whole parsed :class:`Project` and yields
:class:`~repro.lint.findings.Finding` objects, so cross-module rules (e.g.
fingerprint coverage, which relates ``engine.grid`` to ``store.keys``) use the
same interface as per-module ones.

Suppressions are line-scoped and justified, never file-scoped::

    started = time.perf_counter()  # repro-lint: disable=<rule> -- <why>

The marker suppresses the named rule(s) on that line.  The framework itself
polices suppression hygiene under the always-on ``suppression`` rule: unknown
rule ids, missing ``-- <why>`` justifications, and (when the full rule set
runs) suppressions that no longer suppress anything are findings in their own
right — which is what keeps suppressions narrow and current.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any, Callable, Iterable, Iterator

from repro.lint.findings import Finding, Scope, Severity

#: Suppression marker: ``# repro-lint: disable=<id>[,<id>...] -- <why>``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(.*\S))?\s*$")

#: Mutating container method names several rules reason about.
MUTATING_METHODS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered lint rule.

    ``check`` is ``None`` only for framework-implemented rules (``syntax``,
    ``suppression``) which the runner handles itself but which still live in
    the registry so ``--list-rules`` shows them and suppression markers can
    validate their ids.

    ``scope`` declares how much of the tree the rule needs:
    :attr:`Scope.MODULE` rules run on every scan, :attr:`Scope.PROJECT` rules
    need the interprocedural analysis and run only under ``--project`` (or
    when selected explicitly with ``--rule``, which forces the analysis).
    """

    id: str
    severity: Severity
    description: str
    check: Callable[["Project"], Iterable[Finding]] | None = None
    scope: Scope = Scope.MODULE


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register ``rule`` under its id; refuses silent overwrites."""
    if rule.id in _RULES:
        raise ValueError(f"lint rule {rule.id!r} is already registered")
    _RULES[rule.id] = rule
    return rule


def rule_by_id(rule_id: str) -> Rule:
    load_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(
            f"unknown lint rule {rule_id!r}; registered rules: {known}"
        ) from None


def list_rules() -> list[Rule]:
    """All registered rules, sorted by id (a stable listing like list-models)."""
    load_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def load_builtin_rules() -> None:
    """Import the modules that register the built-in rules (idempotent)."""
    import repro.lint.rules  # noqa: F401  (import-time registration)


# Framework-implemented rules: registered so their ids are first-class.
SYNTAX_RULE = register_rule(Rule(
    id="syntax",
    severity=Severity.ERROR,
    description="file cannot be parsed as Python (framework rule)",
))

SUPPRESSION_RULE = register_rule(Rule(
    id="suppression",
    severity=Severity.WARNING,
    description="suppression marker is malformed, unjustified, or unused "
                "(framework rule)",
))


@dataclass(slots=True)
class _SuppressionMark:
    """One parsed ``# repro-lint: disable=...`` marker."""

    line: int
    rule_ids: tuple[str, ...]
    justification: str | None
    used: bool = False


@dataclass(slots=True)
class ModuleUnit:
    """One parsed source file.

    ``module`` is the dotted module name derived from the path (everything
    from the last ``repro`` path component on), which is what rules scope on;
    files outside a ``repro`` tree fall back to their stem so fixture snippets
    can still be scanned.
    """

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module | None
    suppressions: dict[int, list[_SuppressionMark]] = field(default_factory=dict)

    def lines(self) -> list[str]:
        return self.source.splitlines()


def module_name_for(path: Path) -> str:
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts:
        tail = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        tail[-1] = name
        if name == "__init__":
            tail.pop()
        return ".".join(tail)
    return name


def _parse_suppressions(unit: ModuleUnit) -> None:
    for lineno, line in enumerate(unit.lines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        ids = tuple(part.strip() for part in match.group(1).split(",")
                    if part.strip())
        mark = _SuppressionMark(
            line=lineno, rule_ids=ids, justification=match.group(2))
        unit.suppressions.setdefault(lineno, []).append(mark)


@dataclass(slots=True)
class Project:
    """Every module of one lint run, addressable by dotted name.

    In project mode the runner attaches the interprocedural view before any
    rule runs: ``analysis`` is the :class:`repro.lint.graph.ProjectAnalysis`
    built from (possibly cached) module summaries, and ``surface_doc`` /
    ``surface_path`` carry the loaded ``api-surface.json`` for the
    schema-drift rule.  Module-scope rules ignore all three (``analysis`` is
    ``None`` on a plain scan).
    """

    modules: list[ModuleUnit]
    analysis: Any = None
    surface_doc: dict[str, Any] | None = None
    surface_path: str | None = None

    def by_module(self, name: str) -> ModuleUnit | None:
        for unit in self.modules:
            if unit.module == name:
                return unit
        return None

    def in_scope(self, prefixes: tuple[str, ...]) -> Iterator[ModuleUnit]:
        """Modules whose dotted name matches one of ``prefixes`` (a prefix
        ending in ``.`` matches the subtree; otherwise the exact module)."""
        for unit in self.modules:
            if unit.tree is None:
                continue
            for prefix in prefixes:
                if unit.module == prefix or (
                        prefix.endswith(".") and unit.module.startswith(prefix)):
                    yield unit
                    break


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run, pre-sorted and ready to render."""

    rules: list[str]
    paths: list[str]
    findings: list[Finding]
    suppressed: int
    baselined: int
    timing: dict[str, float] = field(default_factory=dict)
    project: dict[str, Any] | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_payload(self) -> dict[str, Any]:
        """The ``result`` half of the ``repro.lint/v2`` envelope.

        ``timing`` maps rule id → seconds spent in its check; ``project``
        (present only when the interprocedural analysis ran) carries the
        module/analyzed/cached counts and the summary cache's
        hit/miss/write counters.
        """
        payload: dict[str, Any] = {
            "rules": list(self.rules),
            "paths": list(self.paths),
            "findings": [finding.to_dict() for finding in self.findings],
            "counts": {
                "active": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
            },
            "timing": {rule: round(seconds, 6)
                       for rule, seconds in sorted(self.timing.items())},
        }
        if self.project is not None:
            payload["project"] = dict(self.project)
        return payload


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted; rejects missing paths."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(
                candidate for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            raise ValueError(f"lint path {str(path)!r} does not exist")
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def parse_project(paths: Iterable[str | Path]) -> tuple[Project, list[Finding]]:
    """Parse every file into a :class:`Project`; syntax errors become
    ``syntax`` findings instead of aborting the run."""
    units: list[ModuleUnit] = []
    findings: list[Finding] = []
    for path in discover_files(paths):
        rel = str(PurePosixPath(*path.parts))
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            tree = None
            findings.append(Finding(
                rule=SYNTAX_RULE.id, severity=SYNTAX_RULE.severity,
                path=rel, line=error.lineno or 1, col=(error.offset or 1),
                message=f"file does not parse: {error.msg}"))
        unit = ModuleUnit(path=path, rel=rel, module=module_name_for(path),
                          source=source, tree=tree)
        _parse_suppressions(unit)
        units.append(unit)
    return Project(modules=units), findings


def _resolve_rules(rule_ids: Iterable[str] | None,
                   project_mode: bool = False) -> list[Rule]:
    load_builtin_rules()
    if rule_ids is None:
        return [rule for rule in list_rules()
                if rule.check is not None
                and (project_mode or rule.scope is Scope.MODULE)]
    return [rule_by_id(rule_id) for rule_id in rule_ids]


def _apply_suppressions(project: Project,
                        findings: list[Finding]) -> tuple[list[Finding], int]:
    active: list[Finding] = []
    suppressed = 0
    by_rel = {unit.rel: unit for unit in project.modules}
    for finding in findings:
        unit = by_rel.get(finding.path)
        marks = unit.suppressions.get(finding.line, []) if unit else []
        hit = next((mark for mark in marks if finding.rule in mark.rule_ids),
                   None)
        if hit is not None:
            hit.used = True
            suppressed += 1
        else:
            active.append(finding)
    return active, suppressed


def _suppression_hygiene(project: Project,
                         ran_rule_ids: set[str] | None) -> list[Finding]:
    """Malformed/unknown/unjustified markers are always findings; *unused*
    markers only when every rule the marker names actually ran this scan
    (``ran_rule_ids``) — a marker for a project rule is not stale just
    because this was a module-mode scan, nor under a ``--rule`` filter."""
    load_builtin_rules()
    findings: list[Finding] = []
    for unit in project.modules:
        for marks in unit.suppressions.values():
            for mark in marks:
                for rule_id in mark.rule_ids:
                    if rule_id not in _RULES:
                        findings.append(Finding(
                            rule=SUPPRESSION_RULE.id,
                            severity=SUPPRESSION_RULE.severity,
                            path=unit.rel, line=mark.line, col=1,
                            message=f"suppression names unknown rule "
                                    f"{rule_id!r}"))
                if not mark.rule_ids:
                    findings.append(Finding(
                        rule=SUPPRESSION_RULE.id,
                        severity=SUPPRESSION_RULE.severity,
                        path=unit.rel, line=mark.line, col=1,
                        message="suppression disables no rule"))
                if not mark.justification:
                    findings.append(Finding(
                        rule=SUPPRESSION_RULE.id,
                        severity=SUPPRESSION_RULE.severity,
                        path=unit.rel, line=mark.line, col=1,
                        message="suppression lacks a '-- <why>' justification"))
                if (ran_rule_ids is not None and not mark.used
                        and mark.rule_ids
                        and all(rule_id in ran_rule_ids
                                for rule_id in mark.rule_ids)):
                    findings.append(Finding(
                        rule=SUPPRESSION_RULE.id,
                        severity=SUPPRESSION_RULE.severity,
                        path=unit.rel, line=mark.line, col=1,
                        message="suppression matched no finding; remove it "
                                f"(disable={','.join(mark.rule_ids)})"))
    return findings


def _build_analysis(project: Project, cache_dir: str | Path | None):
    """Attach the interprocedural analysis to ``project`` (idempotent)."""
    if project.analysis is not None:
        return project.analysis
    # Local import: graph (and cache) are only paid for in project mode.
    from repro.lint.cache import SummaryCache
    from repro.lint.graph import build_analysis

    cache = SummaryCache(cache_dir) if cache_dir is not None else None
    project.analysis = build_analysis(
        [unit for unit in project.modules if unit.tree is not None], cache)
    return project.analysis


def analyze_project(paths: Iterable[str | Path],
                    cache_dir: str | Path | None = None):
    """Parse ``paths`` and build just the :class:`ProjectAnalysis` — what
    ``repro lint --write-surface`` uses to record the schema surface."""
    project, _ = parse_project(paths)
    return _build_analysis(project, cache_dir)


def run_lint(paths: Iterable[str | Path],
             rule_ids: Iterable[str] | None = None,
             baseline: set[tuple[str, str, str]] | None = None,
             *,
             project_mode: bool = False,
             cache_dir: str | Path | None = None,
             surface_doc: dict[str, Any] | None = None,
             surface_path: str | None = None) -> LintReport:
    """Run the (selected) rules over ``paths`` and return a report.

    ``baseline`` is a set of grandfathered finding identities
    (:attr:`Finding.baseline_key`); matching findings are counted but not
    reported as active.  ``project_mode`` enables the project-scoped rules
    and builds the interprocedural analysis (through the summary cache at
    ``cache_dir`` when given); selecting a project rule explicitly via
    ``rule_ids`` forces the analysis too.  ``surface_doc``/``surface_path``
    hand the loaded ``api-surface.json`` to the schema-drift rule.
    """
    rules = _resolve_rules(rule_ids, project_mode)
    project, findings = parse_project(paths)
    project.surface_doc = surface_doc
    project.surface_path = surface_path
    if any(rule.scope is Scope.PROJECT and rule.check is not None
           for rule in rules):
        _build_analysis(project, cache_dir)
    timing: dict[str, float] = {}
    for rule in rules:
        if rule.check is None:
            continue
        started = time.perf_counter()
        for finding in rule.check(project):
            if finding.rule != rule.id:
                raise ValueError(
                    f"rule {rule.id!r} produced a finding labelled "
                    f"{finding.rule!r}")
            findings.append(finding)
        timing[rule.id] = time.perf_counter() - started
    active, suppressed = _apply_suppressions(project, findings)
    # Unused-marker hygiene needs to know which rules ran: under a --rule
    # filter it is disabled entirely (historical behavior — a partial scan
    # proves nothing about other markers), otherwise a marker is stale only
    # if every rule it names was part of this scan.
    ran_for_hygiene = (None if rule_ids is not None
                       else {rule.id for rule in rules})
    active.extend(_suppression_hygiene(project, ran_for_hygiene))
    baselined = 0
    if baseline:
        surviving = []
        for finding in active:
            if finding.baseline_key in baseline:
                baselined += 1
            else:
                surviving.append(finding)
        active = surviving
    active.sort(key=lambda finding: finding.sort_key)
    # With no filter the framework rules (syntax, suppression) ran too; the
    # envelope lists everything that was enforced this scan (project rules
    # only in project mode).
    ran = (sorted({rule.id for rule in rules}
                  | {SYNTAX_RULE.id, SUPPRESSION_RULE.id})
           if rule_ids is None else [rule.id for rule in rules])
    analysis = project.analysis
    return LintReport(
        rules=ran,
        paths=[str(path) for path in paths],
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        timing=timing,
        project=dict(analysis.stats) if analysis is not None else None,
    )
