"""Project-wide interprocedural analysis: summaries, call graph, fixpoints.

This module is what turns :mod:`repro.lint` from a per-file AST scanner into
a whole-program analysis.  It works in two phases:

1. **Summarization** (:func:`summarize_module`) — one pass over a module's
   AST produces a plain-JSON *module summary*: every function's calls (with
   resolution hints), the locks it acquires and holds at each call site,
   taint atoms describing which nondeterminism sources / parameters / callee
   results flow into each call argument and return value, class attribute
   types, schema-tagged constants, and envelope dict literals.  Summaries
   depend only on the module's own source, which is what makes them
   cacheable by content hash (:mod:`repro.lint.cache`).

2. **Analysis** (:class:`ProjectAnalysis`) — the summaries of every scanned
   module are stitched into a project view: call targets are resolved against
   the project's modules/classes (name resolution over module attributes,
   class-local method resolution, attribute- and return-type candidates,
   conservative fallback on dynamic calls), and the interprocedural facts the
   project rules query are computed as fixpoints over the call graph:
   transitive lock acquisition (lock-order), transitive blocking I/O
   (lock-order), tainted returns and sink-reaching parameters
   (taint-determinism).

Nothing here is imported or executed from the analyzed tree — like the rest
of ``repro.lint`` this is AST-only.

**Call target mini-language.**  Summaries record call targets as strings so
they serialize; resolution happens at analysis time:

========================  ====================================================
``l:<qual>``              module-local def (``helper`` or ``Cls.method``)
``d:<dotted>``            canonical dotted name through the import map
                          (``repro.store.keys.fingerprint_of``, ``time.time``)
``a:<Cls>:<attr>:<m>``    method ``m`` on ``self.<attr>`` in local class
                          ``Cls`` (resolved via the class's attribute types)
``t:<dotted-type>:<m>``   method ``m`` on a value of known class type
``r:<m>|<inner-target>``  method ``m`` on the result of another call
                          (resolved via the callee's return types)
``u:``                    dynamic/unresolvable — the conservative fallback
========================  ====================================================

**Taint atoms** (per call argument and per return value):

``s:<name>``  a nondeterminism source call appears in the expression;
``p:<i>``     the enclosing function's parameter ``i`` appears in it;
``c:<tgt>``   the result of a call to ``<tgt>`` appears in it.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Any, Iterable, Iterator

#: Bump to invalidate every cached module summary (the analysis version is
#: folded into the cache key, so stale-format summaries miss instead of lie).
ANALYSIS_VERSION = 1

#: Canonical call name → why its value is nondeterministic.  The taint rule
#: treats these as sources wherever they appear in the project (the
#: module-scoped ``determinism`` rule additionally bans them outright inside
#: the fingerprint-path modules).
NONDETERMINISM_SOURCES = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.monotonic": "process-relative time",
    "time.monotonic_ns": "process-relative time",
    "time.perf_counter": "process-relative time",
    "time.perf_counter_ns": "process-relative time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "kernel entropy",
    "uuid.uuid1": "host/time-derived identity",
    "uuid.uuid4": "kernel entropy",
    "hash": "per-process randomized hashing (PYTHONHASHSEED)",
}

#: External callables that block the calling thread (network, sleep,
#: subprocesses, worker-pool waits).  Entries ending in ``.`` match the whole
#: dotted prefix.  Local file I/O is deliberately absent: the disk store's
#: reads/writes under its index lock are its design, not a bug.
BLOCKING_CALLS = (
    "time.sleep",
    "concurrent.futures.as_completed",
    "concurrent.futures.wait",
    "subprocess.",
    "socket.",
    "urllib.request.",
    "http.client.",
    "requests.",
    "select.",
)

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})


def is_blocking_call(name: str) -> bool:
    """Whether a canonical dotted external name is in :data:`BLOCKING_CALLS`."""
    return any(name == entry or (entry.endswith(".")
                                 and name.startswith(entry))
               for entry in BLOCKING_CALLS)

#: Pseudo-function name for statements at module level.
MODULE_BODY = "<module>"

#: Constant-name / value patterns that mark a schema-tagged constant.
_SCHEMA_TAG_RE = re.compile(r"^[a-z][a-z0-9_.\-]*/v\d+$")
_SCHEMA_NAME_RE = re.compile(r"SCHEMA")


def source_sha256(module: str, source: str) -> str:
    """Content hash a summary is keyed by: module name + source + version."""
    digest = hashlib.sha256()
    digest.update(f"{module}\0{ANALYSIS_VERSION}\0".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


# --------------------------------------------------------------------------
# Summarization: one module's AST → a plain-JSON summary
# --------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name != "*":
                    aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}")
    return aliases


class _ModuleContext:
    """Shared per-module state the summarizer threads through its walks."""

    __slots__ = ("module", "aliases", "local_defs", "local_classes")

    def __init__(self, module: str, tree: ast.Module):
        self.module = module
        self.aliases = _import_aliases(tree)
        self.local_defs: set[str] = set()
        self.local_classes: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.local_defs.add(node.name)
                self.local_classes.add(node.name)

    def canonical(self, name: str) -> str:
        """Resolve the head of a dotted name through the import map."""
        head, _, rest = name.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            if head in self.local_classes:
                origin = f"{self.module}.{head}"
            else:
                return name
        return f"{origin}.{rest}" if rest else origin


def _annotation_types(node: ast.AST | None, ctx: _ModuleContext) -> list[str]:
    """Candidate class types named by an annotation (``T | None`` → ``[T]``)."""
    if node is None:
        return []
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_types(node.left, ctx)
                + _annotation_types(node.right, ctx))
    if isinstance(node, ast.Constant):
        return []  # None / string annotations: no candidate
    if isinstance(node, ast.Subscript):
        return _annotation_types(node.value, ctx)
    name = _dotted(node)
    if name is None or name in ("None", "Any", "Optional"):
        return []
    return [ctx.canonical(name)]


def _value_types(node: ast.AST, ctx: _ModuleContext,
                 param_types: dict[str, list[str]]) -> list[str]:
    """Candidate class types of an assigned expression (flow-insensitive)."""
    if isinstance(node, ast.IfExp):
        return (_value_types(node.body, ctx, param_types)
                + _value_types(node.orelse, ctx, param_types))
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is not None:
            return [ctx.canonical(name)]
        return []
    if isinstance(node, ast.Name):
        return list(param_types.get(node.id, ()))
    if isinstance(node, ast.BoolOp):
        types: list[str] = []
        for value in node.values:
            types.extend(_value_types(value, ctx, param_types))
        return types
    return []


def _lock_kind(node: ast.AST) -> str | None:
    """``"Lock"``/``"RLock"``/... when ``node`` constructs a lock."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name is not None and name.split(".")[-1] in _LOCK_FACTORIES:
            return name.split(".")[-1]
        for keyword in node.keywords:
            if keyword.arg == "default_factory":
                factory = _dotted(keyword.value)
                if factory is not None and \
                        factory.split(".")[-1] in _LOCK_FACTORIES:
                    return factory.split(".")[-1]
    return None


class _FunctionSummarizer:
    """Summarize one function (or the module body): calls, locks, taint."""

    def __init__(self, ctx: _ModuleContext, qual: str,
                 func: ast.FunctionDef | ast.AsyncFunctionDef | None,
                 body: list[ast.stmt], class_name: str | None,
                 class_methods: set[str], module_locks: dict[str, str]):
        self.ctx = ctx
        self.qual = qual
        self.class_name = class_name
        self.class_methods = class_methods
        self.module_locks = module_locks
        self.body = body
        self.params: list[str] = []
        self.param_types: dict[str, list[str]] = {}
        if func is not None:
            args = func.args
            for arg in (*args.posonlyargs, *args.args):
                self.params.append(arg.arg)
                types = _annotation_types(arg.annotation, ctx)
                if types:
                    self.param_types[arg.arg] = types
        self.locks: list[dict[str, Any]] = []
        self.lock_edges: list[dict[str, Any]] = []
        self.calls: list[dict[str, Any]] = []
        self.returns: set[str] = set()
        self.return_types: set[str] = set()
        self.var_types: dict[str, list[str]] = dict(self.param_types)
        self._bindings: dict[str, list[ast.AST]] = {}
        self._atom_cache: dict[str, set[str] | None] = {}
        self._collect_bindings()

    # ---------------------------------------------------------------- setup

    def _collect_bindings(self) -> None:
        """Name → bound expressions and local variable types, one pass."""
        for node in self._walk_own(self.body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._bindings.setdefault(target.id, []).append(
                            node.value)
                        for typ in _value_types(node.value, self.ctx,
                                                self.param_types):
                            self.var_types.setdefault(target.id, [])
                            if typ not in self.var_types[target.id]:
                                self.var_types[target.id].append(typ)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                if node.value is not None:
                    self._bindings.setdefault(node.target.id, []).append(
                        node.value)
                for typ in _annotation_types(node.annotation, self.ctx):
                    self.var_types.setdefault(node.target.id, [])
                    if typ not in self.var_types[node.target.id]:
                        self.var_types[node.target.id].append(typ)

    def _walk_own(self, body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested def/class bodies."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    continue
                stack.append(child)

    # ------------------------------------------------------------- targets

    def _targets_of(self, func: ast.AST) -> list[str]:
        """Resolution hints for a call's function expression."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.ctx.local_defs:
                return [f"l:{name}"]
            return [f"d:{self.ctx.canonical(name)}"]
        if isinstance(func, ast.Attribute):
            method = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self.class_name is not None:
                    if method in self.class_methods:
                        return [f"l:{self.class_name}.{method}"]
                    return ["u:"]
                types = self.var_types.get(base.id)
                if types:
                    return [f"t:{typ}:{method}" for typ in types]
                dotted = _dotted(func)
                if dotted is not None:
                    return [f"d:{self.ctx.canonical(dotted)}"]
                return ["u:"]
            if isinstance(base, ast.Attribute):
                chain = _dotted(base)
                if chain is not None and chain.startswith("self.") and \
                        self.class_name is not None:
                    parts = chain.split(".")
                    if len(parts) == 2:
                        return [f"a:{self.class_name}:{parts[1]}:{method}"]
                    return ["u:"]
                dotted = _dotted(func)
                if dotted is not None:
                    return [f"d:{self.ctx.canonical(dotted)}"]
                return ["u:"]
            if isinstance(base, ast.Call):
                inner = self._targets_of(base.func)
                return [f"r:{method}|{target}" for target in inner
                        if target != "u:"] or ["u:"]
            return ["u:"]
        return ["u:"]

    # ---------------------------------------------------------------- atoms

    def _source_of(self, target: str, node: ast.Call) -> str | None:
        """The nondeterminism source a call target names, if any."""
        if not target.startswith("d:"):
            return None
        name = target[2:]
        if name in ("random.Random", "numpy.random.default_rng"):
            return None if node.args else name
        if name in NONDETERMINISM_SOURCES:
            return name
        if name.startswith("secrets."):
            return name
        if name.startswith("random.") or name.startswith("numpy.random."):
            return name
        return None

    def _name_atoms(self, name: str, visiting: set[str]) -> set[str]:
        if name in visiting:
            return set()
        cached = self._atom_cache.get(name)
        if cached is not None:
            return cached
        visiting.add(name)
        atoms: set[str] = set()
        for bound in self._bindings.get(name, ()):
            atoms |= self._atoms(bound, visiting)
        visiting.discard(name)
        self._atom_cache[name] = atoms
        return atoms

    def _atoms(self, node: ast.AST, visiting: set[str] | None = None) -> set[str]:
        """Taint atoms of an expression (flow-insensitive, over-approximate:
        any call/source/parameter appearing anywhere in the expression —
        including call arguments — marks the whole value)."""
        visiting = visiting if visiting is not None else set()
        atoms: set[str] = set()
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            if isinstance(current, ast.Call):
                for target in self._targets_of(current.func):
                    source = self._source_of(target, current)
                    if source is not None:
                        atoms.add(f"s:{source}")
                    elif target != "u:":
                        atoms.add(f"c:{target}")
                # The func expression can hide nested calls of its own
                # (``os.urandom(8).hex()``): traverse it too.
                stack.append(current.func)
                stack.extend(current.args)
                stack.extend(kw.value for kw in current.keywords)
                continue
            if isinstance(current, ast.Name):
                if current.id in self.params:
                    atoms.add(f"p:{self.params.index(current.id)}")
                elif current.id in self._bindings:
                    atoms |= self._name_atoms(current.id, visiting)
                continue
            stack.extend(ast.iter_child_nodes(current))
        return atoms

    # ----------------------------------------------------------------- walk

    def _lock_id(self, expr: ast.AST) -> str | None:
        """Canonical id of the lock a ``with`` item acquires, if it looks
        like one (the heuristic: the expression mentions "lock")."""
        text = ast.unparse(expr)
        if "lock" not in text.lower() and "sem" not in text.lower():
            return None
        module = self.ctx.module
        chain = _dotted(expr)
        if chain is not None:
            if chain.startswith("self.") and self.class_name is not None:
                return f"{module}:{self.class_name}.{chain.split('.')[1]}"
            head = chain.split(".")[0]
            if head in self.module_locks:
                return f"{module}:{head}"
            return f"{module}:{chain}"
        return f"{module}:{text}"

    def run(self) -> dict[str, Any]:
        self._visit_body(self.body, held=())
        return {
            "line": getattr(self.body[0], "lineno", 1) if self.body else 1,
            "params": self.params,
            "locks": self.locks,
            "lock_edges": self.lock_edges,
            "calls": self.calls,
            "returns": sorted(self.returns),
            "return_types": sorted(self.return_types),
        }

    def _visit_body(self, body: Iterable[ast.stmt],
                    held: tuple[str, ...]) -> None:
        for stmt in body:
            self._visit(stmt, held)

    def _visit(self, node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly on another thread or outside
            # the lock: judge its body with nothing held.
            self._visit_body(node.body, held=())
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                lock = self._lock_id(item.context_expr)
                if lock is not None:
                    line = item.context_expr.lineno
                    self.locks.append({"id": lock, "line": line})
                    for outer in held:
                        if outer != lock:
                            self.lock_edges.append(
                                {"from": outer, "to": lock, "line": line})
                    acquired.append(lock)
                else:
                    self._scan_expr(item.context_expr, held)
                if item.optional_vars is not None:
                    self._scan_expr(item.optional_vars, held)
            inner = held + tuple(lock for lock in acquired
                                 if lock not in held)
            self._visit_body(node.body, inner)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.returns |= self._atoms(node.value)
                self._record_return_types(node.value)
                self._scan_expr(node.value, held)
            return
        # Generic statement: scan its expressions for calls, then recurse
        # into compound bodies with the same held set.
        for field_name, value in ast.iter_fields(node):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                items = value if isinstance(value, list) else [value]
                for item in items:
                    if isinstance(item, ast.ExceptHandler):
                        self._visit_body(item.body, held)
                    elif isinstance(item, ast.AST):
                        self._visit(item, held)
                continue
            if isinstance(value, ast.AST):
                self._scan_expr(value, held)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        self._scan_expr(item, held)

    def _record_return_types(self, expr: ast.AST) -> None:
        if isinstance(expr, ast.IfExp):
            self._record_return_types(expr.body)
            self._record_return_types(expr.orelse)
            return
        if isinstance(expr, ast.Call):
            name = _dotted(expr.func)
            if name is not None:
                self.return_types.add(f"d:{self.ctx.canonical(name)}")
            return
        if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name) and expr.value.id == "self":
            self.return_types.add(f"sa:{expr.attr}")
            return
        if isinstance(expr, ast.Name):
            for typ in self.var_types.get(expr.id, ()):
                self.return_types.add(f"d:{typ}")

    def _scan_expr(self, expr: ast.AST, held: tuple[str, ...]) -> None:
        """Record every call in an expression with the current held set."""
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            targets = self._targets_of(node.func)
            args = [sorted(self._atoms(arg)) for arg in node.args]
            kwargs = {kw.arg: sorted(self._atoms(kw.value))
                      for kw in node.keywords if kw.arg is not None}
            self.calls.append({
                "targets": targets,
                "line": node.lineno,
                "col": node.col_offset + 1,
                "held": list(held),
                "args": args,
                "kwargs": kwargs,
            })


def _summarize_class(ctx: _ModuleContext, node: ast.ClassDef,
                     module_locks: dict[str, str],
                     functions: dict[str, dict[str, Any]]) -> dict[str, Any]:
    methods = {child.name for child in node.body
               if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))}
    attr_types: dict[str, list[str]] = {}
    lock_attrs: dict[str, str] = {}
    is_dataclass = False
    for decorator in node.decorator_list:
        name = _dotted(decorator.func if isinstance(decorator, ast.Call)
                       else decorator)
        if name is not None and name.split(".")[-1] == "dataclass":
            is_dataclass = True
    fields: list[str] = []
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name):
            if not child.target.id.startswith("_"):
                fields.append(child.target.id)
            kind = _lock_kind(child.value) if child.value is not None else None
            if kind is not None:
                lock_attrs[child.target.id] = kind
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    kind = _lock_kind(child.value)
                    if kind is not None:
                        lock_attrs[target.id] = kind
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        summarizer = functions.get(f"{node.name}.{method.name}")
        param_types = {}
        args = method.args
        for arg in (*args.posonlyargs, *args.args):
            types = _annotation_types(arg.annotation, ctx)
            if types:
                param_types[arg.arg] = types
        for sub in ast.walk(method):
            targets: list[tuple[str, ast.AST | None]] = []
            if isinstance(sub, ast.Assign):
                targets = [(t, sub.value) for t in sub.targets]
            elif isinstance(sub, ast.AnnAssign):
                targets = [(sub.target, sub.value)]
                ann_types = _annotation_types(sub.annotation, ctx)
            for target, value in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                kind = _lock_kind(value) if value is not None else None
                if kind is not None:
                    lock_attrs[attr] = kind
                candidates: list[str] = []
                if value is not None:
                    candidates.extend(_value_types(value, ctx, param_types))
                if isinstance(sub, ast.AnnAssign):
                    candidates.extend(ann_types)
                for typ in candidates:
                    attr_types.setdefault(attr, [])
                    if typ not in attr_types[attr]:
                        attr_types[attr].append(typ)
    del functions  # summaries already hold method records
    bases = []
    for base in node.bases:
        name = _dotted(base)
        if name is not None:
            bases.append(ctx.canonical(name))
    return {
        "line": node.lineno,
        "methods": sorted(methods),
        "bases": bases,
        "attr_types": {key: sorted(val) for key, val in
                       sorted(attr_types.items())},
        "lock_attrs": dict(sorted(lock_attrs.items())),
        "is_dataclass": is_dataclass,
        "fields": fields,
    }


def _schema_constants(tree: ast.Module) -> dict[str, dict[str, Any]]:
    constants: dict[str, dict[str, Any]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Constant):
            continue
        value = node.value.value
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            tagged = (isinstance(value, str)
                      and _SCHEMA_TAG_RE.match(value) is not None)
            versioned = (name.endswith("SCHEMA_VERSION")
                         and isinstance(value, (int, str)))
            if tagged or versioned:
                constants[name] = {"value": str(value), "line": node.lineno}
    return constants


def _envelope_sites(ctx: _ModuleContext,
                    tree: ast.Module) -> list[dict[str, Any]]:
    """Dict literals that reference a schema-looking constant by name.

    Only the reference *names* are recorded; whether they resolve to an
    actual schema constant is decided at analysis time with the whole
    project's constant registry in hand.
    """
    sites: list[dict[str, Any]] = []

    def visit(node: ast.AST, owner: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = node.name if owner == MODULE_BODY else f"{owner}.{node.name}"
            for child in ast.iter_child_nodes(node):
                visit(child, inner)
            return
        if isinstance(node, ast.ClassDef):
            for child in ast.iter_child_nodes(node):
                visit(child, node.name)
            return
        if isinstance(node, ast.Dict):
            refs: list[str] = []
            for value in node.values:
                dotted = _dotted(value)
                if dotted is None:
                    continue
                if _SCHEMA_NAME_RE.search(dotted.split(".")[-1]):
                    refs.append(ctx.canonical(dotted))
            if refs:
                keys: list[str] = []
                dynamic = False
                for key in node.keys:
                    if key is None:
                        dynamic = True  # ** expansion
                    elif isinstance(key, ast.Constant) and isinstance(
                            key.value, str):
                        keys.append(key.value)
                    else:
                        dynamic = True
                sites.append({
                    "owner": owner,
                    "line": node.lineno,
                    "constants": sorted(set(refs)),
                    "keys": sorted(set(keys)),
                    "dynamic": dynamic,
                })
        for child in ast.iter_child_nodes(node):
            visit(child, owner)

    for top in tree.body:
        visit(top, MODULE_BODY)
    return sites


def summarize_module(module: str, rel: str, tree: ast.Module) -> dict[str, Any]:
    """The serializable whole-module summary the project analysis consumes."""
    ctx = _ModuleContext(module, tree)
    module_locks: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            kind = _lock_kind(node.value)
            if kind is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module_locks[target.id] = kind

    functions: dict[str, dict[str, Any]] = {}

    def summarize_function(qual: str, func, body, class_name, methods) -> None:
        summarizer = _FunctionSummarizer(
            ctx, qual, func, body, class_name, methods, module_locks)
        record = summarizer.run()
        if func is not None:
            record["line"] = func.lineno
        functions[qual] = record

    module_level = [stmt for stmt in tree.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
    summarize_function(MODULE_BODY, None, module_level, None, set())
    classes: dict[str, dict[str, Any]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summarize_function(node.name, node, node.body, None, set())
        elif isinstance(node, ast.ClassDef):
            methods = {child.name for child in node.body if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef))}
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summarize_function(f"{node.name}.{child.name}", child,
                                       child.body, node.name, methods)
            classes[node.name] = _summarize_class(
                ctx, node, module_locks, functions)

    return {
        "module": module,
        "path": rel,
        "functions": functions,
        "classes": classes,
        "module_locks": module_locks,
        "schema_constants": _schema_constants(tree),
        "envelopes": _envelope_sites(ctx, tree),
    }


# --------------------------------------------------------------------------
# Project analysis: summaries → call graph → interprocedural fixpoints
# --------------------------------------------------------------------------


class ProjectAnalysis:
    """The whole-program view the project-scoped rules query.

    Function ids are ``"<module>:<qualname>"`` (``repro.store.serve:
    ExperimentService.submit``); lock ids are ``"<module>:<Class>.<attr>"``
    or ``"<module>:<NAME>"`` for module-level locks.
    """

    def __init__(self, summaries: dict[str, dict[str, Any]],
                 stats: dict[str, Any] | None = None):
        self.summaries = summaries
        self.stats = dict(stats or {})
        self.functions: dict[str, dict[str, Any]] = {}
        self.classes: dict[str, dict[str, Any]] = {}
        self.paths: dict[str, str] = {}
        self.constants: dict[str, str] = {}
        for module, summary in summaries.items():
            self.paths[module] = summary["path"]
            for qual, record in summary["functions"].items():
                self.functions[f"{module}:{qual}"] = record
            for name, record in summary["classes"].items():
                self.classes[f"{module}.{name}"] = record
            for name, record in summary["schema_constants"].items():
                self.constants[f"{module}:{name}"] = record["value"]
        self._resolve_cache: dict[tuple[str, str], tuple[str, ...]] = {}
        self._acquires: dict[str, set[str]] | None = None
        self._blocking: dict[str, tuple[str, str | None]] | None = None
        self._tainted: dict[str, dict[str, str | None]] | None = None

    # ------------------------------------------------------------ utilities

    def module_of(self, fn_id: str) -> str:
        return fn_id.partition(":")[0]

    def path_of(self, fn_id: str) -> str:
        return self.paths.get(self.module_of(fn_id), "?")

    def function(self, fn_id: str) -> dict[str, Any] | None:
        return self.functions.get(fn_id)

    def iter_functions(self) -> Iterator[tuple[str, dict[str, Any]]]:
        for fn_id in sorted(self.functions):
            yield fn_id, self.functions[fn_id]

    def lock_kind(self, lock_id: str) -> str | None:
        module, _, rest = lock_id.partition(":")
        summary = self.summaries.get(module)
        if summary is None:
            return None
        cls, _, attr = rest.partition(".")
        if attr:
            record = summary["classes"].get(cls)
            if record is not None:
                return record["lock_attrs"].get(attr)
            return None
        return summary["module_locks"].get(rest)

    # ------------------------------------------------------------ resolution

    def _method_on(self, class_path: str, method: str,
                   seen: frozenset[str] = frozenset()) -> str | None:
        """Resolve ``method`` on a dotted class path (base classes walked)."""
        record = self.classes.get(class_path)
        if record is None or class_path in seen:
            return None
        module = class_path.rsplit(".", 1)[0]
        # The class path embeds the module: strip class name, the remainder
        # must be a scanned module for the method to be project-internal.
        for candidate_module in self.summaries:
            if class_path.startswith(candidate_module + "."):
                cls = class_path[len(candidate_module) + 1:]
                if "." in cls:
                    continue
                if method in record["methods"]:
                    return f"{candidate_module}:{cls}.{method}"
        for base in record["bases"]:
            found = self._method_on(base, method, seen | {class_path})
            if found is not None:
                return found
        return None

    def _resolve_dotted(self, dotted: str) -> tuple[str, ...]:
        """A dotted name → project fn ids, or itself (external) if unknown."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.summaries:
                continue
            rest = parts[cut:]
            summary = self.summaries[module]
            if len(rest) == 1:
                name = rest[0]
                if name in summary["classes"]:
                    ctor = f"{module}:{name}.__init__"
                    return (ctor,) if ctor in self.functions else ()
                if name in summary["functions"]:
                    return (f"{module}:{name}",)
                return ()  # a constant or re-export: not a call edge
            if len(rest) == 2 and rest[0] in summary["classes"]:
                found = self._method_on(f"{module}.{rest[0]}", rest[1])
                return (found,) if found is not None else ()
            return ()
        return (dotted,)  # external

    def _class_of_target(self, module: str, target: str) -> tuple[str, ...]:
        """Class paths a call target constructs (for return-type chaining)."""
        if target.startswith("l:"):
            name = target[2:]
            if name in self.summaries.get(module, {}).get("classes", {}):
                return (f"{module}.{name}",)
            return ()
        if target.startswith("d:"):
            dotted = target[2:]
            if dotted in self.classes:
                return (dotted,)
        return ()

    def _return_classes(self, fn_id: str) -> tuple[str, ...]:
        record = self.functions.get(fn_id)
        if record is None:
            return ()
        module = self.module_of(fn_id)
        qual = fn_id.partition(":")[2]
        results: list[str] = []
        for ref in record["return_types"]:
            if ref.startswith("d:"):
                dotted = ref[2:]
                if dotted in self.classes:
                    results.append(dotted)
            elif ref.startswith("sa:") and "." in qual:
                cls = qual.split(".")[0]
                class_record = self.summaries[module]["classes"].get(cls)
                if class_record is not None:
                    for typ in class_record["attr_types"].get(ref[3:], ()):
                        if typ in self.classes:
                            results.append(typ)
        return tuple(dict.fromkeys(results))

    def resolve(self, module: str, target: str) -> tuple[str, ...]:
        """Resolve one call-target string to project fn ids and/or external
        dotted names (externals keep their dotted form; dynamic → empty)."""
        key = (module, target)
        cached = self._resolve_cache.get(key)
        if cached is not None:
            return cached
        self._resolve_cache[key] = ()  # cycle guard for r: chains
        resolved: tuple[str, ...] = ()
        if target.startswith("l:"):
            qual = target[2:]
            summary = self.summaries.get(module)
            if summary is not None:
                if qual in summary["classes"]:
                    ctor = f"{module}:{qual}.__init__"
                    resolved = (ctor,) if ctor in self.functions else ()
                elif qual in summary["functions"]:
                    resolved = (f"{module}:{qual}",)
        elif target.startswith("d:"):
            resolved = self._resolve_dotted(target[2:])
        elif target.startswith("a:"):
            _, cls, attr, method = target.split(":", 3)
            record = self.summaries.get(module, {}).get(
                "classes", {}).get(cls)
            if record is not None:
                found = []
                for typ in record["attr_types"].get(attr, ()):
                    fn = self._method_on(typ, method)
                    if fn is not None:
                        found.append(fn)
                resolved = tuple(found)
        elif target.startswith("t:"):
            _, typ, method = target.split(":", 2)
            fn = self._method_on(typ, method)
            resolved = (fn,) if fn is not None else ()
        elif target.startswith("r:"):
            method, _, inner = target[2:].partition("|")
            found = []
            for inner_id in self.resolve(module, inner):
                if ":" not in inner_id:
                    continue  # external result: unknown type
                for class_path in (self._class_of_target(
                        module, f"d:{inner_id.replace(':', '.', 1)}")
                        or self._return_classes(inner_id)):
                    fn = self._method_on(class_path, method)
                    if fn is not None:
                        found.append(fn)
                # Constructor chain: Cls(...).method()
                if inner_id.endswith(".__init__"):
                    class_path = inner_id.replace(":", ".", 1)[:-len(".__init__")]
                    fn = self._method_on(class_path, method)
                    if fn is not None:
                        found.append(fn)
            resolved = tuple(dict.fromkeys(found))
        self._resolve_cache[key] = resolved
        return resolved

    def resolve_call(self, module: str,
                     call: dict[str, Any]) -> tuple[list[str], list[str]]:
        """``(project fn ids, external dotted names)`` for one call record."""
        internal: list[str] = []
        external: list[str] = []
        for target in call["targets"]:
            for resolved in self.resolve(module, target):
                if ":" in resolved:
                    internal.append(resolved)
                else:
                    external.append(resolved)
        return internal, external

    # -------------------------------------------------------------- imports

    def import_graph(self) -> dict[str, set[str]]:
        """Module → project modules it calls into (resolved call graph
        projected onto modules)."""
        graph: dict[str, set[str]] = {module: set() for module in self.summaries}
        for fn_id, record in self.functions.items():
            module = self.module_of(fn_id)
            for call in record["calls"]:
                internal, _ = self.resolve_call(module, call)
                for callee in internal:
                    target_module = self.module_of(callee)
                    if target_module != module:
                        graph[module].add(target_module)
        return graph

    # ------------------------------------------------------------ fixpoints

    def transitive_acquires(self) -> dict[str, set[str]]:
        """Locks a call to each function may end up acquiring (transitive)."""
        if self._acquires is not None:
            return self._acquires
        acquires: dict[str, set[str]] = {}
        for fn_id, record in self.functions.items():
            acquires[fn_id] = {lock["id"] for lock in record["locks"]}
        changed = True
        while changed:
            changed = False
            for fn_id, record in self.functions.items():
                module = self.module_of(fn_id)
                for call in record["calls"]:
                    internal, _ = self.resolve_call(module, call)
                    for callee in internal:
                        extra = acquires.get(callee, set()) - acquires[fn_id]
                        if extra:
                            acquires[fn_id] |= extra
                            changed = True
        self._acquires = acquires
        return acquires

    def lock_order_edges(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Directed ``held → acquired`` lock pairs with one witness each."""
        acquires = self.transitive_acquires()
        edges: dict[tuple[str, str], dict[str, Any]] = {}

        def record_edge(held: str, acquired: str, fn_id: str, line: int,
                        via: str | None) -> None:
            if held == acquired:
                return
            key = (held, acquired)
            if key not in edges:
                edges[key] = {"fn": fn_id, "path": self.path_of(fn_id),
                              "line": line, "via": via}

        for fn_id, record in self.iter_functions():
            for edge in record["lock_edges"]:
                record_edge(edge["from"], edge["to"], fn_id, edge["line"],
                            None)
            module = self.module_of(fn_id)
            for call in record["calls"]:
                if not call["held"]:
                    continue
                internal, _ = self.resolve_call(module, call)
                for callee in sorted(set(internal)):
                    for lock in sorted(acquires.get(callee, ())):
                        for held in call["held"]:
                            record_edge(held, lock, fn_id, call["line"],
                                        callee)
        return edges

    def lock_cycles(self) -> list[tuple[str, ...]]:
        """Cycles in the lock-order graph (each as a sorted lock-id tuple)."""
        edges = self.lock_order_edges()
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
            graph.setdefault(acquired, set())
        # Tarjan SCC, iterative.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        cycles: list[tuple[str, ...]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(sorted(graph[child]))))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        cycles.append(tuple(sorted(component)))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return sorted(cycles)

    def blocking_functions(self) -> dict[str, tuple[str, str | None]]:
        """Functions that (transitively) call into blocking I/O:
        fn id → (blocking external name, direct callee on the path or None)."""
        if self._blocking is not None:
            return self._blocking
        blocking: dict[str, tuple[str, str | None]] = {}
        for fn_id, record in self.iter_functions():
            module = self.module_of(fn_id)
            for call in record["calls"]:
                _, external = self.resolve_call(module, call)
                for name in sorted(external):
                    if is_blocking_call(name):
                        blocking.setdefault(fn_id, (name, None))
        changed = True
        while changed:
            changed = False
            for fn_id, record in self.iter_functions():
                if fn_id in blocking:
                    continue
                module = self.module_of(fn_id)
                for call in record["calls"]:
                    internal, _ = self.resolve_call(module, call)
                    for callee in sorted(set(internal)):
                        if callee in blocking and callee != fn_id:
                            blocking[fn_id] = (blocking[callee][0], callee)
                            changed = True
                            break
                    if fn_id in blocking:
                        break
        self._blocking = blocking
        return blocking

    def blocking_chain(self, fn_id: str) -> list[str]:
        """Readable call chain from ``fn_id`` down to the blocking call."""
        blocking = self.blocking_functions()
        chain: list[str] = []
        seen: set[str] = set()
        current: str | None = fn_id
        while current is not None and current not in seen:
            seen.add(current)
            chain.append(current)
            name, via = blocking[current]
            if via is None:
                chain.append(name)
                break
            current = via
        return chain

    def tainted_returns(self) -> dict[str, dict[str, str | None]]:
        """Functions whose return value may carry a nondeterminism source:
        fn id → {source name: laundering callee or None (direct)}."""
        if self._tainted is not None:
            return self._tainted
        tainted: dict[str, dict[str, str | None]] = {}
        for fn_id, record in self.iter_functions():
            direct = {atom[2:]: None for atom in record["returns"]
                      if atom.startswith("s:")}
            if direct:
                tainted[fn_id] = dict(direct)
        changed = True
        while changed:
            changed = False
            for fn_id, record in self.iter_functions():
                module = self.module_of(fn_id)
                for atom in record["returns"]:
                    if not atom.startswith("c:"):
                        continue
                    for callee in self.resolve(module, atom[2:]):
                        if ":" not in callee:
                            continue
                        for source in sorted(tainted.get(callee, ())):
                            current = tainted.setdefault(fn_id, {})
                            if source not in current:
                                current[source] = callee
                                changed = True
        self._tainted = tainted
        return tainted

    def sink_params(self, roots: Iterable[str]) -> dict[str, set[int]]:
        """Parameter indices of each function that flow into a fingerprint
        sink (transitively).  ``roots`` are fully-sinking fn ids: every
        parameter of a root reaches the sink by definition."""
        sinking: dict[str, set[int]] = {}
        for root in roots:
            record = self.functions.get(root)
            if record is not None:
                sinking[root] = set(range(len(record["params"])))
        changed = True
        while changed:
            changed = False
            for fn_id, record in self.iter_functions():
                module = self.module_of(fn_id)
                for call in record["calls"]:
                    internal, _ = self.resolve_call(module, call)
                    for callee in internal:
                        callee_sinks = sinking.get(callee)
                        if not callee_sinks:
                            continue
                        callee_params = self.functions[callee]["params"]
                        offset = 1 if callee_params[:1] == ["self"] else 0
                        for position, atoms in enumerate(call["args"]):
                            if position + offset not in callee_sinks:
                                continue
                            for atom in atoms:
                                if atom.startswith("p:"):
                                    index = int(atom[2:])
                                    mine = sinking.setdefault(fn_id, set())
                                    if index not in mine:
                                        mine.add(index)
                                        changed = True
                        for name, atoms in call["kwargs"].items():
                            if name not in callee_params:
                                continue
                            if callee_params.index(name) not in callee_sinks:
                                continue
                            for atom in atoms:
                                if atom.startswith("p:"):
                                    index = int(atom[2:])
                                    mine = sinking.setdefault(fn_id, set())
                                    if index not in mine:
                                        mine.add(index)
                                        changed = True
        return sinking

    def sink_flows(self, roots: Iterable[str]) -> list[dict[str, Any]]:
        """Every call site where a nondeterminism source reaches a
        fingerprint sink, directly or laundered through a call chain.

        A *flow* is a call whose argument (a) feeds a sink parameter of the
        callee — the callee is a root or passes that parameter down to one —
        and (b) carries a source atom: the source call appears in the
        argument expression itself (``via is None``) or the argument calls a
        function whose return is (transitively) tainted (``via`` names it).
        """
        sinking = self.sink_params(roots)
        tainted = self.tainted_returns()
        flows: list[dict[str, Any]] = []
        seen: set[tuple[str, str, str, int]] = set()
        for fn_id, record in self.iter_functions():
            module = self.module_of(fn_id)
            for call in record["calls"]:
                internal, _ = self.resolve_call(module, call)
                for callee in sorted(set(internal)):
                    callee_sinks = sinking.get(callee)
                    if not callee_sinks:
                        continue
                    callee_params = self.functions[callee]["params"]
                    offset = 1 if callee_params[:1] == ["self"] else 0

                    def sink_atoms() -> Iterator[list[str]]:
                        for position, atoms in enumerate(call["args"]):
                            if position + offset in callee_sinks:
                                yield atoms
                        for name, atoms in call["kwargs"].items():
                            if (name in callee_params and
                                    callee_params.index(name) in callee_sinks):
                                yield atoms

                    for atoms in sink_atoms():
                        for atom in atoms:
                            if atom.startswith("s:"):
                                hits: list[tuple[str, str | None]] = [
                                    (atom[2:], None)]
                            elif atom.startswith("c:"):
                                hits = []
                                for target in self.resolve(module, atom[2:]):
                                    for source in sorted(
                                            tainted.get(target, ())):
                                        hits.append((source, target))
                            else:
                                continue
                            for source, via in hits:
                                key = (fn_id, callee, source, call["line"])
                                if key in seen:
                                    continue
                                seen.add(key)
                                flows.append({
                                    "fn": fn_id, "path": self.path_of(fn_id),
                                    "line": call["line"], "col": call["col"],
                                    "sink": callee, "source": source,
                                    "via": via,
                                })
        flows.sort(key=lambda flow: (flow["path"], flow["line"],
                                     flow["sink"], flow["source"]))
        return flows

    # --------------------------------------------------------- schema surface

    def surface_entries(self) -> list[dict[str, Any]]:
        """The schema surface of the scanned tree: envelope dict literals and
        dataclasses tied to each schema-tagged constant, with their field
        sets.  ``line``/``path`` are for anchoring findings and are stripped
        by :func:`repro.lint.rules.schema_drift.surface_payload`."""
        entries: dict[str, dict[str, Any]] = {}
        for module in sorted(self.summaries):
            summary = self.summaries[module]
            for site in summary["envelopes"]:
                refs: dict[str, str] = {}
                for dotted in site["constants"]:
                    constant = self._constant_id(module, dotted)
                    if constant is not None:
                        refs[constant] = self.constants[constant]
                if not refs:
                    continue
                entry_id = f"{module}:{site['owner']}"
                keys = list(site["keys"]) + (["*"] if site["dynamic"] else [])
                entry = entries.get(entry_id)
                if entry is None:
                    entries[entry_id] = {
                        "id": entry_id, "kind": "envelope",
                        "constants": dict(refs),
                        "fields": sorted(set(keys)),
                        "path": summary["path"], "line": site["line"],
                    }
                else:
                    entry["constants"].update(refs)
                    entry["fields"] = sorted(set(entry["fields"]) | set(keys))
            if summary["schema_constants"]:
                module_constants = {
                    f"{module}:{name}": record["value"]
                    for name, record in sorted(
                        summary["schema_constants"].items())
                }
                for cls in sorted(summary["classes"]):
                    record = summary["classes"][cls]
                    if not record["is_dataclass"]:
                        continue
                    entries[f"{module}:{cls}"] = {
                        "id": f"{module}:{cls}", "kind": "dataclass",
                        "constants": dict(module_constants),
                        "fields": sorted(record["fields"]),
                        "path": summary["path"], "line": record["line"],
                    }
        return [entries[key] for key in sorted(entries)]

    def _constant_id(self, module: str, dotted: str) -> str | None:
        """Resolve a recorded constant reference to a registry id."""
        if "." not in dotted:
            candidate = f"{module}:{dotted}"
            return candidate if candidate in self.constants else None
        head, _, name = dotted.rpartition(".")
        candidate = f"{head}:{name}"
        if candidate in self.constants:
            return candidate
        return None


def build_analysis(units: Iterable[Any], cache: Any = None) -> ProjectAnalysis:
    """Summarize ``units`` (parsed :class:`~repro.lint.framework.ModuleUnit`
    objects) into a :class:`ProjectAnalysis`, using ``cache`` (a
    :class:`repro.lint.cache.SummaryCache`) when given.

    Modules whose summary is served from the cache are *not* re-analyzed —
    the hit/miss bookkeeping lands in ``analysis.stats`` and, via the
    framework, in the ``repro.lint/v2`` envelope.
    """
    summaries: dict[str, dict[str, Any]] = {}
    analyzed = 0
    cached = 0
    for unit in units:
        if unit.tree is None:
            continue
        key = source_sha256(unit.module, unit.source)
        summary = cache.get(key) if cache is not None else None
        if summary is None:
            summary = summarize_module(unit.module, unit.rel, unit.tree)
            analyzed += 1
            if cache is not None:
                cache.put(key, summary)
        else:
            cached += 1
        summaries[unit.module] = summary
    stats = {"modules": analyzed + cached, "analyzed": analyzed,
             "cached": cached}
    if cache is not None:
        stats.update(cache.stats())
    return ProjectAnalysis(summaries, stats)
