"""Incremental analysis cache: content-addressed per-module summaries.

Whole-project analysis re-reads every module on every run; the summaries it
consumes, though, depend only on each module's own source text.  So they get
the same treatment the experiment store gives simulation results: content
addressing.  A summary is stored under the SHA-256 of
``"<module>\\0<ANALYSIS_VERSION>\\0<source>"`` (see
:func:`repro.lint.graph.source_sha256`), which makes invalidation automatic —
edit a module and its key changes; bump the analysis format and *every* key
changes.  There is no eviction and no staleness: a hit is exact by
construction.

Layout mirrors the disk store's sharded objects directory::

    .lint-cache/
      summaries/
        3f/
          3fa4c2...e1.json     # {"schema": "repro.lint-cache/v1",
                               #  "key": "3fa4c2...e1", "summary": {...}}

Writes are atomic (temp file + ``os.replace``) so a Ctrl-C mid-run never
leaves a truncated summary for a later run to trip over; unreadable entries
are treated as misses and rewritten.  Hit/miss/write counters surface in the
``repro.lint/v2`` envelope's ``project`` block — the same cache-effectiveness
discipline ``repro.store`` reports.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

#: Schema tag of each cached summary file.
CACHE_SCHEMA = "repro.lint-cache/v1"

#: Default cache directory (repo-root relative), mirrored by the CLI flag.
DEFAULT_CACHE_DIR = ".lint-cache"


class SummaryCache:
    """Content-addressed store of module summaries under ``root``."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._hits = 0
        self._misses = 0
        self._writes = 0

    def _path_for(self, key: str) -> Path:
        return self.root / "summaries" / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached summary for ``key``, or ``None`` (counted as a miss).

        A corrupt or wrong-schema entry is a miss too: the caller re-analyzes
        and :meth:`put` overwrites it.
        """
        path = self._path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self._misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != CACHE_SCHEMA
                or payload.get("key") != key
                or not isinstance(payload.get("summary"), dict)):
            self._misses += 1
            return None
        self._hits += 1
        return payload["summary"]

    def put(self, key: str, summary: dict[str, Any]) -> None:
        """Store ``summary`` under ``key`` atomically."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA, "key": key, "summary": summary}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._writes += 1

    def stats(self) -> dict[str, int]:
        """Hit/miss/write counters for the envelope's ``project`` block."""
        return {"cache_hits": self._hits, "cache_misses": self._misses,
                "cache_writes": self._writes}
