"""Findings: what a lint rule reports, and how reports serialize.

A :class:`Finding` pins one rule violation to a file and line.  Its identity
for baseline matching is ``(rule, path, message)`` — deliberately *without*
the line number, so grandfathered findings survive unrelated edits that shift
lines, while any change to what the rule actually says about the file makes
the entry stale (see :mod:`repro.lint.baseline`).

Schema v2 adds a ``scope`` to every finding: ``"module"`` findings come from
per-file AST rules and hold for any scan set containing the file;
``"project"`` findings come from the interprocedural rules (lock-order,
taint-determinism, schema-drift) and are only meaningful for a whole-project
scan (``repro lint --project``).  The scope is *not* part of baseline
identity, so ``repro.lint-baseline/v1`` files written before v2 keep
matching — their entries simply default to module scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


#: Schema tag of the ``repro lint --json`` findings envelope.  v2 added the
#: per-finding ``scope`` plus the ``project`` (analysis-cache counters) and
#: ``timing`` (per-rule seconds) result blocks.
LINT_SCHEMA = "repro.lint/v2"


class Severity(str, enum.Enum):
    """How bad a finding is.  Both levels fail the CI gate; severity ranks
    the listing and tells a reader whether the rule claims a live bug
    (``error``) or an invariant erosion (``warning``)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Scope(str, enum.Enum):
    """How much of the tree a rule (and its findings) needs to see.

    ``MODULE`` rules judge files one at a time (plus fixed cross-references
    like the fingerprint contract); their findings hold for any scan set.
    ``PROJECT`` rules need the whole-program view built by
    :mod:`repro.lint.graph` — call graph, lock graph, taint flow — and only
    run under ``repro lint --project`` (or when selected explicitly).
    """

    MODULE = "module"
    PROJECT = "project"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: Registered rule id (``"determinism"``, ...).
        severity: :class:`Severity` of the violation.
        path: Display path of the file, normalized to forward slashes.
        line: 1-based line of the flagged node.
        col: 1-based column of the flagged node.
        message: Human-readable statement of the violation.  Must be stable
            for a given (rule, file) state — it is part of baseline identity.
        scope: :class:`Scope` of the rule that produced it (``module`` unless
            an interprocedural rule reported it).  Not part of baseline
            identity — pre-v2 baseline entries keep matching.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    scope: Scope = Scope.MODULE

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line-number free)."""
        return (self.rule, self.path, self.message)

    @property
    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        """The one-line text form (``path:line:col: severity[rule] message``)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value}[{self.rule}] {self.message}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "scope": self.scope.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
