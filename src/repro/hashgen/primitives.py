"""Hardware primitives used to compose remapping functions (paper Section V-A).

The generator assembles candidate remapping functions from three primitive
families, mirroring the paper:

* **S-boxes** — 3→3 and 4→4 substitution boxes borrowed from the PRESENT and
  SPONGENT lightweight ciphers; they supply non-linearity.
* **P-boxes** — bit permutations; they supply diffusion across S-box
  boundaries at almost zero hardware cost (wires only).
* **C-S boxes** — compression boxes mapping ``m`` input bits to ``n < m``
  output bits using XOR trees; they are non-invertible and perform the size
  reduction every remapping function needs (Table II input widths far exceed
  output widths).

Every primitive carries a transistor-cost estimate (count and critical-path
depth) so generated designs can be checked against the single-cycle hardware
budget (constraint C1).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

#: PRESENT cipher 4-bit S-box (Bogdanov et al., CHES 2007).
PRESENT_SBOX: tuple[int, ...] = (
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
)

#: SPONGENT hash 4-bit S-box (Bogdanov et al., CHES 2011).
SPONGENT_SBOX: tuple[int, ...] = (
    0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6,
)

#: A 3-bit S-box (the inversion-based S-box used in several lightweight designs).
THREE_BIT_SBOX: tuple[int, ...] = (0x7, 0x6, 0x0, 0x4, 0x2, 0x5, 0x1, 0x3)

#: Approximate transistor cost of one 2-input gate (CMOS NAND/NOR ≈ 4,
#: XOR ≈ 8); used for the budget arithmetic of constraint C1.
TRANSISTORS_PER_GATE = 4
TRANSISTORS_PER_XOR = 8
#: Transistor cost and depth of a 4-bit S-box implemented as combinatorial logic.
SBOX4_TRANSISTORS = 28
SBOX4_DEPTH = 6
SBOX3_TRANSISTORS = 18
SBOX3_DEPTH = 5


@dataclass(frozen=True, slots=True)
class PrimitiveCost:
    """Hardware cost estimate of one primitive instance."""

    transistors: int
    critical_path_transistors: int
    wire_crossovers: int = 0


class Primitive(abc.ABC):
    """A combinational building block mapping ``input_bits`` to ``output_bits``."""

    def __init__(self, input_bits: int, output_bits: int):
        if input_bits <= 0 or output_bits <= 0:
            raise ValueError("primitive widths must be positive")
        self.input_bits = input_bits
        self.output_bits = output_bits

    @abc.abstractmethod
    def apply(self, value: int) -> int:
        """Evaluate the primitive on an ``input_bits``-wide integer."""

    @abc.abstractmethod
    def cost(self) -> PrimitiveCost:
        """Hardware cost estimate."""

    @property
    def is_compressing(self) -> bool:
        return self.output_bits < self.input_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.input_bits}->{self.output_bits})"


class SBoxLayer(Primitive):
    """A substitution layer: the input is sliced into nibbles fed through S-boxes.

    Mixing layers are |m| -> |m| (no compression); the S-box table is applied
    to each 3- or 4-bit group, with a trailing narrower group passed through
    unchanged if the width is not a multiple of the box size.
    """

    def __init__(self, input_bits: int, sbox: tuple[int, ...] = PRESENT_SBOX):
        super().__init__(input_bits, input_bits)
        box_bits = (len(sbox) - 1).bit_length()
        if len(sbox) != 1 << box_bits:
            raise ValueError("S-box table length must be a power of two")
        if sorted(sbox) != list(range(len(sbox))):
            raise ValueError("S-box must be a permutation")
        self.sbox = sbox
        self.box_bits = box_bits

    def apply(self, value: int) -> int:
        result = 0
        mask = (1 << self.box_bits) - 1
        position = 0
        while position + self.box_bits <= self.input_bits:
            nibble = (value >> position) & mask
            result |= self.sbox[nibble] << position
            position += self.box_bits
        if position < self.input_bits:
            remainder_mask = (1 << (self.input_bits - position)) - 1
            result |= ((value >> position) & remainder_mask) << position
        return result

    def cost(self) -> PrimitiveCost:
        boxes = self.input_bits // self.box_bits
        if self.box_bits == 4:
            return PrimitiveCost(boxes * SBOX4_TRANSISTORS, SBOX4_DEPTH)
        return PrimitiveCost(boxes * SBOX3_TRANSISTORS, SBOX3_DEPTH)


class PBoxLayer(Primitive):
    """A permutation layer (pure wiring)."""

    def __init__(self, permutation: tuple[int, ...]):
        super().__init__(len(permutation), len(permutation))
        if sorted(permutation) != list(range(len(permutation))):
            raise ValueError("P-box must be a permutation of bit positions")
        self.permutation = permutation

    @classmethod
    def random(cls, bits: int, rng: random.Random) -> "PBoxLayer":
        positions = list(range(bits))
        rng.shuffle(positions)
        return cls(tuple(positions))

    def apply(self, value: int) -> int:
        result = 0
        for source, destination in enumerate(self.permutation):
            if (value >> source) & 1:
                result |= 1 << destination
        return result

    def cost(self) -> PrimitiveCost:
        crossovers = sum(
            1 for source, destination in enumerate(self.permutation) if source != destination
        )
        return PrimitiveCost(transistors=0, critical_path_transistors=0,
                             wire_crossovers=crossovers)


class CompressionLayer(Primitive):
    """A non-invertible XOR-tree compression box (``m`` bits → ``n`` bits).

    Output bit *i* is the XOR of all input bits congruent to *i* modulo the
    output width — the classic folding tree.  Its critical path is the depth
    of the XOR tree, which grows logarithmically with the fan-in.
    """

    def __init__(self, input_bits: int, output_bits: int):
        if output_bits > input_bits:
            raise ValueError("compression layer cannot expand")
        super().__init__(input_bits, output_bits)

    def apply(self, value: int) -> int:
        result = 0
        mask = (1 << self.output_bits) - 1
        remaining = value & ((1 << self.input_bits) - 1)
        while remaining:
            result ^= remaining & mask
            remaining >>= self.output_bits
        return result

    def cost(self) -> PrimitiveCost:
        fan_in = -(-self.input_bits // self.output_bits)  # ceil division
        xor_gates_per_bit = max(0, fan_in - 1)
        total_xors = xor_gates_per_bit * self.output_bits
        depth_gates = max(1, (fan_in - 1).bit_length())
        return PrimitiveCost(
            transistors=total_xors * TRANSISTORS_PER_XOR,
            critical_path_transistors=depth_gates * (TRANSISTORS_PER_XOR // 2),
        )


class KeyMixLayer(Primitive):
    """XORs (a slice of) the ψ key into the state.

    In the hardware design the ST register feeds one XOR per state bit; in
    candidate evaluation the key is a constructor argument so generated
    functions can be tested under many keys.
    """

    def __init__(self, input_bits: int, key: int):
        super().__init__(input_bits, input_bits)
        self.key = key & ((1 << input_bits) - 1)

    def apply(self, value: int) -> int:
        return value ^ self.key

    def cost(self) -> PrimitiveCost:
        return PrimitiveCost(
            transistors=self.input_bits * TRANSISTORS_PER_XOR,
            critical_path_transistors=TRANSISTORS_PER_XOR // 2,
        )


#: Convenience registry of the mixing S-boxes the generator may draw from.
AVAILABLE_SBOXES: dict[str, tuple[int, ...]] = {
    "present": PRESENT_SBOX,
    "spongent": SPONGENT_SBOX,
    "sbox3": THREE_BIT_SBOX,
}
