"""Statistical validation of remapping candidates (constraints C2 and C3).

Two properties are required of every remapping function (paper Section V-A):

* **Uniformity (C2)** — outputs should be spread evenly over the output
  space.  We use the balls-and-bins coefficient of variation: hash many
  random inputs, count how many land in each output bin, and compare the
  spread to what an ideal uniform hash would produce.
* **Avalanche effect (C3)** — flipping any single input bit should flip about
  half of the output bits, for every input and every bit position, with low
  variance (the strict avalanche criterion).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

HashFunction = Callable[[int], int]


@dataclass(frozen=True, slots=True)
class UniformityReport:
    """Balls-and-bins analysis of a candidate's output distribution."""

    samples: int
    bins: int
    coefficient_of_variation: float
    expected_coefficient_of_variation: float
    max_load_ratio: float

    @property
    def normalized_cv(self) -> float:
        """CV relative to the ideal multinomial CV (1.0 = indistinguishable from uniform)."""
        if self.expected_coefficient_of_variation == 0:
            return float("inf")
        return self.coefficient_of_variation / self.expected_coefficient_of_variation


@dataclass(frozen=True, slots=True)
class AvalancheReport:
    """Strict-avalanche-criterion analysis of a candidate."""

    samples: int
    input_bits: int
    output_bits: int
    mean_flip_fraction: float
    flip_fraction_cv: float
    per_input_bit_range: float

    @property
    def satisfies_sac(self) -> bool:
        """Loose strict-avalanche check used by the selection stage."""
        return (
            abs(self.mean_flip_fraction - 0.5) < 0.1
            and self.flip_fraction_cv < 0.35
            and self.per_input_bit_range < 0.35
        )


def measure_uniformity(
    function: HashFunction,
    input_bits: int,
    output_bits: int,
    samples: int = 20_000,
    seed: int = 0,
) -> UniformityReport:
    """Hash ``samples`` random inputs and measure bin-load dispersion."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = random.Random(seed)
    bins = 1 << output_bits
    # Bound memory: for wide outputs, bucket the output space down to 2^16 bins.
    bucket_bits = min(output_bits, 16)
    bucket_count = 1 << bucket_bits
    counts = [0] * bucket_count
    for _ in range(samples):
        value = rng.getrandbits(input_bits)
        output = function(value) & (bins - 1)
        counts[output & (bucket_count - 1)] += 1

    mean = samples / bucket_count
    variance = sum((count - mean) ** 2 for count in counts) / bucket_count
    std = math.sqrt(variance)
    cv = std / mean if mean else float("inf")
    # For a uniform multinomial, Var ≈ mean (Poisson regime), so CV ≈ 1/sqrt(mean).
    expected_cv = 1.0 / math.sqrt(mean) if mean > 0 else float("inf")
    max_load_ratio = max(counts) / mean if mean else float("inf")
    return UniformityReport(
        samples=samples,
        bins=bucket_count,
        coefficient_of_variation=cv,
        expected_coefficient_of_variation=expected_cv,
        max_load_ratio=max_load_ratio,
    )


def measure_avalanche(
    function: HashFunction,
    input_bits: int,
    output_bits: int,
    samples: int = 2_000,
    seed: int = 0,
) -> AvalancheReport:
    """Measure how output bits respond to single-bit input flips.

    For every sampled input λ we flip each input bit position in turn and
    record the fraction of output bits that change; the report aggregates the
    mean, the coefficient of variation across samples, and the spread between
    the most- and least-sensitive input bit positions.
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = random.Random(seed)
    per_sample_fractions: list[float] = []
    per_bit_totals = [0.0] * input_bits
    per_bit_counts = [0] * input_bits

    for _ in range(samples):
        value = rng.getrandbits(input_bits)
        base = function(value)
        flipped_fraction_total = 0.0
        for bit in range(input_bits):
            other = function(value ^ (1 << bit))
            flips = bin((base ^ other) & ((1 << output_bits) - 1)).count("1")
            fraction = flips / output_bits
            flipped_fraction_total += fraction
            per_bit_totals[bit] += fraction
            per_bit_counts[bit] += 1
        per_sample_fractions.append(flipped_fraction_total / input_bits)

    mean = sum(per_sample_fractions) / len(per_sample_fractions)
    variance = sum((f - mean) ** 2 for f in per_sample_fractions) / len(per_sample_fractions)
    cv = math.sqrt(variance) / mean if mean else float("inf")
    per_bit_means = [
        total / count if count else 0.0 for total, count in zip(per_bit_totals, per_bit_counts)
    ]
    bit_range = max(per_bit_means) - min(per_bit_means) if per_bit_means else 0.0
    return AvalancheReport(
        samples=samples,
        input_bits=input_bits,
        output_bits=output_bits,
        mean_flip_fraction=mean,
        flip_fraction_cv=cv,
        per_input_bit_range=bit_range,
    )


@dataclass(frozen=True, slots=True)
class QualityScore:
    """Normalized multi-objective score (0 is ideal) used for final selection."""

    uniformity_penalty: float
    avalanche_mean_penalty: float
    avalanche_cv_penalty: float
    avalanche_range_penalty: float
    critical_path_penalty: float

    @property
    def total(self) -> float:
        return (
            self.uniformity_penalty
            + self.avalanche_mean_penalty
            + self.avalanche_cv_penalty
            + self.avalanche_range_penalty
            + self.critical_path_penalty
        )


def score_candidate(
    uniformity: UniformityReport,
    avalanche: AvalancheReport,
    critical_path_transistors: int,
    max_critical_path_transistors: int,
    weights: tuple[float, float, float, float, float] = (1.0, 1.0, 1.0, 1.0, 1.0),
) -> QualityScore:
    """Combine the measured metrics into the paper's weighted optimization score.

    Each metric is normalized so its optimum is 0 (Equation (1) in the paper);
    all weights default to 1.
    """
    w_uniform, w_mean, w_cv, w_range, w_path = weights
    uniformity_penalty = w_uniform * max(0.0, uniformity.normalized_cv - 1.0)
    avalanche_mean_penalty = w_mean * abs(avalanche.mean_flip_fraction - 0.5) * 2.0
    avalanche_cv_penalty = w_cv * avalanche.flip_fraction_cv
    avalanche_range_penalty = w_range * avalanche.per_input_bit_range
    critical_path_penalty = w_path * (
        critical_path_transistors / max_critical_path_transistors
    ) * 0.25
    return QualityScore(
        uniformity_penalty=uniformity_penalty,
        avalanche_mean_penalty=avalanche_mean_penalty,
        avalanche_cv_penalty=avalanche_cv_penalty,
        avalanche_range_penalty=avalanche_range_penalty,
        critical_path_penalty=critical_path_penalty,
    )
