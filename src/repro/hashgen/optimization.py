"""Final selection of remapping functions (paper Section V-B).

All candidates that satisfied the hardware constraints and passed the C2/C3
measurements are scored with the normalized, equally weighted multi-objective
sum (Equation (1)); the candidate with the smallest total penalty is selected
for each remapping function R1..R4, Rt, Rp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashgen.constraints import HardwareConstraints
from repro.hashgen.generator import EvaluatedCandidate, RemapFunctionGenerator
from repro.hashgen.metrics import QualityScore, score_candidate
from repro.core.remapping import TABLE_II


@dataclass(frozen=True, slots=True)
class ScoredCandidate:
    """A candidate together with its multi-objective score."""

    evaluated: EvaluatedCandidate
    score: QualityScore

    @property
    def total(self) -> float:
        return self.score.total


def rank_candidates(
    candidates: list[EvaluatedCandidate],
    constraints: HardwareConstraints,
    weights: tuple[float, float, float, float, float] = (1.0, 1.0, 1.0, 1.0, 1.0),
) -> list[ScoredCandidate]:
    """Score every candidate and return them sorted best (lowest penalty) first."""
    scored = [
        ScoredCandidate(
            evaluated=candidate,
            score=score_candidate(
                candidate.uniformity,
                candidate.avalanche,
                candidate.critical_path_transistors,
                constraints.max_critical_path_transistors,
                weights,
            ),
        )
        for candidate in candidates
    ]
    return sorted(scored, key=lambda item: item.total)


def select_best(
    candidates: list[EvaluatedCandidate],
    constraints: HardwareConstraints,
) -> ScoredCandidate | None:
    """The paper's final selection: minimum total penalty, all weights equal."""
    ranking = rank_candidates(candidates, constraints)
    return ranking[0] if ranking else None


#: Hardware constraint sets for each remapping function, derived from Table II
#: of the paper (STBPU input width → output width).
REMAP_CONSTRAINTS: dict[str, HardwareConstraints] = {
    label: HardwareConstraints(
        input_bits=spec.stbpu_input_bits,
        output_bits=spec.output_bits,
        max_critical_path_transistors=45,
    )
    for label, spec in TABLE_II.items()
}


def generate_remapping_suite(
    attempts_per_function: int = 30,
    seed: int = 0,
    uniformity_samples: int = 6_000,
    avalanche_samples: int = 120,
) -> dict[str, ScoredCandidate]:
    """Generate and select one hardware design per remapping function.

    Returns a mapping from the function label (``"R1"`` .. ``"Rp"``) to the
    best scoring candidate found for its constraint set.  Functions for which
    no candidate satisfied the constraints are omitted (callers treat that as
    a generation failure and retry with a different seed or more attempts).
    """
    suite: dict[str, ScoredCandidate] = {}
    for index, (label, constraints) in enumerate(REMAP_CONSTRAINTS.items()):
        generator = RemapFunctionGenerator(constraints, seed=seed + index * 1000)
        evaluated = generator.search(
            attempts=attempts_per_function,
            uniformity_samples=uniformity_samples,
            avalanche_samples=avalanche_samples,
        )
        best = select_best(evaluated, constraints)
        if best is not None:
            suite[label] = best
    return suite
