"""Hardware constraints for generated remapping functions (constraint C1).

The paper bounds candidate designs by single-cycle feasibility: modern
processors complete roughly 15–20 gate delays per cycle, which translates to
about 30–45 transistors along the critical path.  The generator additionally
bounds the total transistor budget, the number of layers, and how many wires
a single wire may cross (a routability proxy for the P-boxes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hashgen.primitives import Primitive, PrimitiveCost


@dataclass(frozen=True, slots=True)
class HardwareConstraints:
    """Bounds a candidate remapping function must respect (paper constraint C1)."""

    max_critical_path_transistors: int = 45
    max_total_transistors: int = 6000
    max_layers: int = 12
    max_wire_crossovers: int = 4096
    input_bits: int = 80
    output_bits: int = 22

    def __post_init__(self) -> None:
        if self.input_bits <= 0 or self.output_bits <= 0:
            raise ValueError("input/output widths must be positive")
        if self.output_bits > self.input_bits:
            raise ValueError("remapping functions compress; output must not exceed input")
        if self.max_critical_path_transistors <= 0:
            raise ValueError("critical-path budget must be positive")


@dataclass(frozen=True, slots=True)
class CostSummary:
    """Aggregate hardware cost of a layered design."""

    total_transistors: int
    critical_path_transistors: int
    wire_crossovers: int
    layers: int

    @property
    def estimated_gate_delays(self) -> float:
        """Rough gate-delay equivalent (≈ 2–3 transistors per gate on the path)."""
        return self.critical_path_transistors / 2.5

    def single_cycle_feasible(self, constraints: HardwareConstraints) -> bool:
        return self.critical_path_transistors <= constraints.max_critical_path_transistors


def summarize_cost(layers: list[Primitive]) -> CostSummary:
    """Sum the per-layer costs into a design-level cost summary."""
    total = 0
    critical = 0
    crossovers = 0
    for layer in layers:
        cost: PrimitiveCost = layer.cost()
        total += cost.transistors
        critical += cost.critical_path_transistors
        crossovers += cost.wire_crossovers
    return CostSummary(
        total_transistors=total,
        critical_path_transistors=critical,
        wire_crossovers=crossovers,
        layers=len(layers),
    )


class ConstraintViolation(Exception):
    """Raised when a candidate design cannot possibly satisfy its constraints."""


@dataclass(frozen=True, slots=True)
class ConstraintCheck:
    """Result of checking a (possibly partial) design against the constraints."""

    satisfied: bool
    complete: bool
    violations: tuple[str, ...]


def check_design(
    layers: list[Primitive],
    constraints: HardwareConstraints,
    final_output_bits: int | None = None,
) -> ConstraintCheck:
    """Check a layered design against the hardware constraints.

    A design is *complete* when its final width equals the target output
    width; an incomplete design that has not yet violated any budget is the
    paper's "case iii" (keep extending it).
    """
    violations: list[str] = []
    cost = summarize_cost(layers)
    if cost.critical_path_transistors > constraints.max_critical_path_transistors:
        violations.append(
            f"critical path {cost.critical_path_transistors} exceeds "
            f"{constraints.max_critical_path_transistors} transistors"
        )
    if cost.total_transistors > constraints.max_total_transistors:
        violations.append(
            f"total transistors {cost.total_transistors} exceed "
            f"{constraints.max_total_transistors}"
        )
    if cost.wire_crossovers > constraints.max_wire_crossovers:
        violations.append(
            f"wire crossovers {cost.wire_crossovers} exceed {constraints.max_wire_crossovers}"
        )
    if len(layers) > constraints.max_layers:
        violations.append(f"layer count {len(layers)} exceeds {constraints.max_layers}")

    width = final_output_bits
    if width is None:
        width = layers[-1].output_bits if layers else constraints.input_bits
    complete = width == constraints.output_bits
    return ConstraintCheck(
        satisfied=not violations,
        complete=complete,
        violations=tuple(violations),
    )
