"""Automated remapping-function generation (paper Section V-A).

The generator builds candidate remapping functions layer by layer from the
primitive pool (S-boxes, P-boxes, compression boxes, key mixing).  After each
layer is appended the partial design is tested against the hardware
constraints; designs that violate a budget are discarded, complete designs
that satisfy everything are kept for the optimization stage, and incomplete
designs adjust the primitive-selection weights for the next layer (the three
cases the paper describes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hashgen.constraints import (
    ConstraintCheck,
    HardwareConstraints,
    check_design,
    summarize_cost,
)
from repro.hashgen.metrics import (
    AvalancheReport,
    UniformityReport,
    measure_avalanche,
    measure_uniformity,
)
from repro.hashgen.primitives import (
    AVAILABLE_SBOXES,
    SPONGENT_SBOX,
    CompressionLayer,
    KeyMixLayer,
    PBoxLayer,
    Primitive,
    SBoxLayer,
)


@dataclass(slots=True)
class RemapCandidate:
    """A layered remapping-function candidate.

    The candidate evaluates an ``input_bits``-wide value (the concatenation of
    ψ with the branch address and any history inputs) down to
    ``output_bits``.  Layers are applied in order.
    """

    layers: list[Primitive] = field(default_factory=list)
    input_bits: int = 80
    output_bits: int = 22
    label: str = "candidate"

    def apply(self, value: int) -> int:
        state = value & ((1 << self.input_bits) - 1)
        for layer in self.layers:
            state = layer.apply(state)
        return state & ((1 << self.output_bits) - 1)

    @property
    def current_width(self) -> int:
        return self.layers[-1].output_bits if self.layers else self.input_bits

    def describe(self) -> list[str]:
        """Human-readable per-layer description (used to render Figure 2)."""
        lines = []
        for number, layer in enumerate(self.layers, start=1):
            cost = layer.cost()
            lines.append(
                f"stage {number}: {type(layer).__name__} "
                f"{layer.input_bits}->{layer.output_bits} bits, "
                f"{cost.transistors} transistors "
                f"(path {cost.critical_path_transistors})"
            )
        return lines


@dataclass(slots=True)
class EvaluatedCandidate:
    """A candidate together with its constraint check and quality metrics."""

    candidate: RemapCandidate
    check: ConstraintCheck
    uniformity: UniformityReport
    avalanche: AvalancheReport
    critical_path_transistors: int


class RemapFunctionGenerator:
    """Layer-wise randomized generator of remapping-function candidates.

    Args:
        constraints: Hardware budget and I/O widths the functions must meet.
        seed: PRNG seed for reproducible generation.
        key: ψ value mixed into candidates during evaluation (candidates are
            generated key-agnostic; a concrete key is needed to execute them).
    """

    def __init__(
        self,
        constraints: HardwareConstraints,
        seed: int = 0,
        key: int = 0xA5A5_5A5A,
    ):
        self.constraints = constraints
        self.rng = random.Random(seed)
        self.key = key
        # Selection weights over primitive kinds, adapted while a design grows.
        self._weights = {"sbox": 1.0, "pbox": 1.0, "compress": 1.0, "keymix": 1.0}

    # ----------------------------------------------------------------- layers

    def _choose_kind(self, width: int) -> str:
        kinds = list(self._weights)
        weights = [self._weights[kind] for kind in kinds]
        # A design that is still wider than the target needs compression more
        # urgently the closer it gets to the layer budget.
        if width <= self.constraints.output_bits:
            weights[kinds.index("compress")] = 0.0
        choice = self.rng.choices(kinds, weights=weights, k=1)[0]
        return choice

    def _make_layer(self, kind: str, width: int) -> Primitive:
        if kind == "sbox":
            sbox = AVAILABLE_SBOXES[self.rng.choice(list(AVAILABLE_SBOXES))]
            return SBoxLayer(width, sbox)
        if kind == "pbox":
            return PBoxLayer.random(width, self.rng)
        if kind == "keymix":
            return KeyMixLayer(width, self.key)
        # Compression: shrink toward the target width, at most halving per layer.
        target = max(self.constraints.output_bits, width // 2)
        if target >= width:
            target = max(self.constraints.output_bits, width - 1)
        return CompressionLayer(width, target)

    def _adjust_weights(self, candidate: RemapCandidate) -> None:
        """Paper case iii: bias the next layer toward what the design still needs."""
        width = candidate.current_width
        remaining_layers = self.constraints.max_layers - len(candidate.layers)
        if remaining_layers <= 0:
            return
        if width > self.constraints.output_bits:
            # Needs more compression the fewer layers remain.
            self._weights["compress"] = 2.0 + 4.0 / remaining_layers
        else:
            self._weights["compress"] = 0.5
        has_sbox = any(isinstance(layer, SBoxLayer) for layer in candidate.layers)
        has_keymix = any(isinstance(layer, KeyMixLayer) for layer in candidate.layers)
        self._weights["sbox"] = 0.8 if has_sbox else 2.5
        self._weights["keymix"] = 0.4 if has_keymix else 3.0
        self._weights["pbox"] = 1.0

    # --------------------------------------------------------------- generate

    def generate_candidate(self, label: str = "candidate") -> RemapCandidate | None:
        """Grow one candidate layer by layer; returns ``None`` if it violates budgets."""
        candidate = RemapCandidate(
            input_bits=self.constraints.input_bits,
            output_bits=self.constraints.output_bits,
            label=label,
        )
        self._weights = {"sbox": 2.0, "pbox": 1.0, "compress": 1.5, "keymix": 3.0}
        for _ in range(self.constraints.max_layers):
            kind = self._choose_kind(candidate.current_width)
            layer = self._make_layer(kind, candidate.current_width)
            candidate.layers.append(layer)
            check = check_design(candidate.layers, self.constraints)
            if not check.satisfied:
                return None
            if check.complete and len(candidate.layers) >= 3:
                return candidate
            self._adjust_weights(candidate)
        final_check = check_design(candidate.layers, self.constraints)
        if final_check.satisfied and final_check.complete:
            return candidate
        return None

    def evaluate(self, candidate: RemapCandidate,
                 uniformity_samples: int = 8_000,
                 avalanche_samples: int = 300) -> EvaluatedCandidate:
        """Measure a candidate against constraints C2 and C3."""
        cost = summarize_cost(candidate.layers)
        uniformity = measure_uniformity(
            candidate.apply, candidate.input_bits, candidate.output_bits,
            samples=uniformity_samples, seed=self.rng.randrange(1 << 30),
        )
        avalanche = measure_avalanche(
            candidate.apply, candidate.input_bits, candidate.output_bits,
            samples=avalanche_samples, seed=self.rng.randrange(1 << 30),
        )
        return EvaluatedCandidate(
            candidate=candidate,
            check=check_design(candidate.layers, self.constraints),
            uniformity=uniformity,
            avalanche=avalanche,
            critical_path_transistors=cost.critical_path_transistors,
        )

    def search(
        self,
        attempts: int = 50,
        uniformity_samples: int = 8_000,
        avalanche_samples: int = 200,
    ) -> list[EvaluatedCandidate]:
        """Generate and evaluate up to ``attempts`` candidates."""
        evaluated: list[EvaluatedCandidate] = []
        for attempt in range(attempts):
            candidate = self.generate_candidate(label=f"candidate-{attempt}")
            if candidate is None:
                continue
            evaluated.append(
                self.evaluate(candidate, uniformity_samples, avalanche_samples)
            )
        return evaluated


def build_reference_r1(constraints: HardwareConstraints | None = None,
                       key: int = 0xA5A5_5A5A) -> RemapCandidate:
    """Construct the paper's Figure 2 R1-style design explicitly.

    Five stages: substitution (S-boxes), permutation, key mix, compression,
    substitution — staying within the single-cycle transistor budget.  The
    function maps the 80-bit (ψ ‖ branch address) input to the 22-bit
    index/tag/offset output of R1.
    """
    constraints = constraints or HardwareConstraints(input_bits=80, output_bits=22)
    rng = random.Random(1)
    wide = constraints.input_bits
    mid = max(constraints.output_bits, wide // 2)
    layers: list[Primitive] = [
        SBoxLayer(wide),
        PBoxLayer.random(wide, rng),
        SBoxLayer(wide, SPONGENT_SBOX),
        PBoxLayer.random(wide, rng),
        KeyMixLayer(wide, key),
        CompressionLayer(wide, mid),
        SBoxLayer(mid),
        PBoxLayer.random(mid, rng),
        CompressionLayer(mid, constraints.output_bits),
        SBoxLayer(constraints.output_bits, SPONGENT_SBOX),
    ]
    return RemapCandidate(
        layers=layers,
        input_bits=constraints.input_bits,
        output_bits=constraints.output_bits,
        label="R1-reference",
    )
