"""Automated remapping-function generation and validation (paper Section V)."""

from repro.hashgen.primitives import (
    AVAILABLE_SBOXES,
    PRESENT_SBOX,
    SPONGENT_SBOX,
    THREE_BIT_SBOX,
    CompressionLayer,
    KeyMixLayer,
    PBoxLayer,
    Primitive,
    PrimitiveCost,
    SBoxLayer,
)
from repro.hashgen.constraints import (
    ConstraintCheck,
    CostSummary,
    HardwareConstraints,
    check_design,
    summarize_cost,
)
from repro.hashgen.metrics import (
    AvalancheReport,
    QualityScore,
    UniformityReport,
    measure_avalanche,
    measure_uniformity,
    score_candidate,
)
from repro.hashgen.generator import (
    EvaluatedCandidate,
    RemapCandidate,
    RemapFunctionGenerator,
    build_reference_r1,
)
from repro.hashgen.optimization import (
    REMAP_CONSTRAINTS,
    ScoredCandidate,
    generate_remapping_suite,
    rank_candidates,
    select_best,
)

__all__ = [
    "AVAILABLE_SBOXES",
    "PRESENT_SBOX",
    "SPONGENT_SBOX",
    "THREE_BIT_SBOX",
    "CompressionLayer",
    "KeyMixLayer",
    "PBoxLayer",
    "Primitive",
    "PrimitiveCost",
    "SBoxLayer",
    "ConstraintCheck",
    "CostSummary",
    "HardwareConstraints",
    "check_design",
    "summarize_cost",
    "AvalancheReport",
    "QualityScore",
    "UniformityReport",
    "measure_avalanche",
    "measure_uniformity",
    "score_candidate",
    "EvaluatedCandidate",
    "RemapCandidate",
    "RemapFunctionGenerator",
    "build_reference_r1",
    "REMAP_CONSTRAINTS",
    "ScoredCandidate",
    "generate_remapping_suite",
    "rank_candidates",
    "select_best",
]
