"""GEM-style eviction-set construction (Qureshi, ISCA 2019), adapted to the BTB.

The paper's eviction-based analysis assumes the attacker uses the Group
Elimination Method rather than naive guessing: starting from a pool of
candidate branches that collectively evict the victim's BTB entry, the pool is
split into ``W + 1`` groups and groups are discarded one at a time whenever
the remaining candidates still evict the victim, converging on a minimal
eviction set of ``W`` branches.

The implementation here works against any object exposing the
:class:`~repro.bpu.btb.BranchTargetBuffer` interface, so it can be pointed at
an unprotected BTB (where it succeeds quickly) or at an STBPU-protected BTB
(where the keyed remapping and re-randomization destroy its progress).  All
probes are counted so experiments can compare the observable event footprint
to the analytical model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bpu.btb import BranchTargetBuffer


@dataclass(slots=True)
class GEMStatistics:
    """Probe/eviction counts accumulated by one GEM run."""

    probes: int = 0
    installs: int = 0
    evictions_triggered: int = 0
    rounds: int = 0


@dataclass(slots=True)
class GEMResult:
    """Outcome of one eviction-set search."""

    success: bool
    eviction_set: list[int] = field(default_factory=list)
    stats: GEMStatistics = field(default_factory=GEMStatistics)


class GEMEvictionSetBuilder:
    """Group-elimination eviction-set construction against a BTB model.

    Args:
        btb: The branch target buffer under attack (attacker's view: the
            attacker can execute branches at addresses of its choosing and
            observe whether its own entries were evicted).
        rng: Randomness source for candidate address generation.
        address_space: Range of attacker-controlled virtual addresses.
    """

    def __init__(
        self,
        btb: BranchTargetBuffer,
        rng: random.Random | None = None,
        address_space: tuple[int, int] = (0x10_0000, 0x7FFF_FFFF_0000),
    ):
        self.btb = btb
        self.rng = rng if rng is not None else random.Random(0)
        self.address_space = address_space

    # ------------------------------------------------------------------ helpers

    def _random_address(self) -> int:
        low, high = self.address_space
        return self.rng.randrange(low, high) & ~0x3

    def _install(self, address: int, stats: GEMStatistics) -> None:
        before = self.btb.eviction_count
        self.btb.update(address, address + 0x40)
        stats.installs += 1
        if self.btb.eviction_count > before:
            stats.evictions_triggered += 1

    def _victim_present(self, victim: int, stats: GEMStatistics) -> bool:
        stats.probes += 1
        return self.btb.contains(victim)

    def _evicts_victim(self, victim: int, candidates: list[int], stats: GEMStatistics) -> bool:
        """Install the victim, replay the candidates, and test whether it was evicted."""
        self.btb.update(victim, victim + 0x40)
        for address in candidates:
            self._install(address, stats)
        return not self._victim_present(victim, stats)

    # ------------------------------------------------------------------ search

    def build(
        self,
        victim_address: int,
        initial_pool_size: int | None = None,
        max_rounds: int = 512,
    ) -> GEMResult:
        """Find a minimal eviction set for ``victim_address``.

        ``initial_pool_size`` defaults to three times the BTB capacity, enough
        that a random pool almost surely evicts the victim on a deterministic
        mapping.  The search gives up (``success=False``) when the initial
        pool does not evict the victim or when group elimination stops making
        progress — which is the expected outcome against an STBPU whose
        mapping changed under the attacker's feet.
        """
        stats = GEMStatistics()
        ways = self.btb.way_count
        if initial_pool_size is None:
            initial_pool_size = 3 * self.btb.entry_count
        pool = [self._random_address() for _ in range(initial_pool_size)]

        if not self._evicts_victim(victim_address, pool, stats):
            return GEMResult(success=False, stats=stats)

        groups = ways + 1
        while len(pool) > ways and stats.rounds < max_rounds:
            stats.rounds += 1
            group_size = max(1, len(pool) // groups)
            removed_any = False
            for group_start in range(0, len(pool), group_size):
                candidate_pool = pool[:group_start] + pool[group_start + group_size:]
                if not candidate_pool:
                    continue
                if self._evicts_victim(victim_address, candidate_pool, stats):
                    pool = candidate_pool
                    removed_any = True
                    break
            if not removed_any:
                break

        success = len(pool) <= ways * 2 and self._evicts_victim(victim_address, pool, stats)
        return GEMResult(success=success, eviction_set=pool if success else [], stats=stats)
