"""Security-analysis parameters (paper Table III).

The analytical model of Section VI is parameterised by the geometry of the
protected structures: number of ways ``W``, number of sets ``I``, tag entropy
``T``, offset entropy ``O``, and stored-target entropy ``Ω``.  This module
derives those parameters from a :class:`~repro.bpu.common.StructureSizes`
instance so that the analysis always describes the same hardware the
functional simulation uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.trace.branch import STORED_TARGET_BITS


@dataclass(frozen=True, slots=True)
class StructureParameters:
    """Table III parameters for one BPU structure."""

    name: str
    ways: int
    sets: int
    tag_bits: int
    offset_bits: int
    target_bits: int

    @property
    def tag_entropy(self) -> int:
        """``T``: number of distinct tag values."""
        return 1 << self.tag_bits

    @property
    def offset_entropy(self) -> int:
        """``O``: number of distinct offset values."""
        return 1 << self.offset_bits

    @property
    def target_entropy(self) -> int:
        """``Ω``: number of distinct stored-target values."""
        return 1 << self.target_bits

    @property
    def entries(self) -> int:
        return self.ways * self.sets


@dataclass(frozen=True, slots=True)
class AnalysisParameters:
    """Complete parameter set used by the Section VI analysis."""

    btb: StructureParameters
    pht: StructureParameters
    rsb: StructureParameters

    @classmethod
    def from_sizes(cls, sizes: StructureSizes | None = None) -> "AnalysisParameters":
        """Derive the analysis parameters from the simulated structure sizes."""
        sizes = sizes if sizes is not None else StructureSizes()
        btb = StructureParameters(
            name="STBTB",
            ways=sizes.btb_ways,
            sets=sizes.btb_sets,
            tag_bits=sizes.btb_tag_bits,
            offset_bits=sizes.btb_offset_bits,
            target_bits=STORED_TARGET_BITS,
        )
        pht = StructureParameters(
            name="STPHT",
            ways=1,
            sets=sizes.pht_entries,
            tag_bits=0,
            offset_bits=0,
            target_bits=0,
        )
        rsb = StructureParameters(
            name="STRSB",
            ways=1,
            sets=sizes.rsb_entries,
            tag_bits=0,
            offset_bits=0,
            target_bits=STORED_TARGET_BITS,
        )
        return cls(btb=btb, pht=pht, rsb=rsb)


#: The paper's Skylake-derived default parameters.
SKYLAKE_PARAMETERS = AnalysisParameters.from_sizes(StructureSizes())
