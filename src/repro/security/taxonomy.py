"""Attack-surface taxonomy for collision-based BPU attacks (paper Table I).

Attacks are classified along two axes:

* **collision kind** — whether the colliding entry is *reused* by the other
  party or *evicted*/replaced, and
* **effect locus** — whether the adversarial effect manifests in the
  attacker's own execution (*home*, used for side channels) or in the
  victim's execution (*away*, used to steer victim speculation).

Each of the three structures (BTB, PHT, RSB) populates the four quadrants,
with the exception that PHT entries are never evicted.  The table also records
the adversarial effect and which STBPU mechanism defeats the vector, making it
a queryable inventory used by the attack simulations and the documentation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Structure(enum.Enum):
    BTB = "BTB"
    PHT = "PHT"
    RSB = "RSB"


class CollisionKind(enum.Enum):
    REUSE = "reuse-based"
    EVICTION = "eviction-based"


class EffectLocus(enum.Enum):
    HOME = "home"
    AWAY = "away"


class Mitigation(enum.Enum):
    """Which STBPU mechanism primarily defeats the vector."""

    KEYED_REMAPPING = "keyed remapping (ψ)"
    TARGET_ENCRYPTION = "target encryption (ϕ)"
    RERANDOMIZATION = "ST re-randomization"
    NOT_APPLICABLE = "not applicable"


@dataclass(frozen=True, slots=True)
class AttackVector:
    """One cell of Table I."""

    structure: Structure
    collision: CollisionKind
    locus: EffectLocus
    steps: tuple[str, ...]
    adversarial_effect: str
    example_attacks: tuple[str, ...]
    primary_mitigation: Mitigation
    secondary_mitigation: Mitigation = Mitigation.RERANDOMIZATION
    possible: bool = True

    @property
    def identifier(self) -> str:
        return f"{self.structure.value}-{self.collision.name}-{self.locus.name}".lower()


ATTACK_SURFACE: tuple[AttackVector, ...] = (
    AttackVector(
        structure=Structure.BTB,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.HOME,
        steps=(
            "victim: jmp s -> d installs (s, d) in BTB",
            "attacker: jmp s -> d' reuses (s, d)",
            "attacker observes its own misprediction",
        ),
        adversarial_effect="leak victim branch source/target addresses",
        example_attacks=("Jump-over-ASLR", "SGX branch shadowing"),
        primary_mitigation=Mitigation.KEYED_REMAPPING,
    ),
    AttackVector(
        structure=Structure.BTB,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.AWAY,
        steps=(
            "attacker: jmp s -> d trains BTB",
            "victim: jmp s -> d' reuses attacker target",
            "victim speculatively executes attacker-chosen d",
        ),
        adversarial_effect="speculative execution of an attacker-chosen gadget",
        example_attacks=("Spectre v2", "SgxPectre", "transient trojans"),
        primary_mitigation=Mitigation.TARGET_ENCRYPTION,
    ),
    AttackVector(
        structure=Structure.BTB,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.HOME,
        steps=(
            "attacker: jmp s -> d installs (s, d)",
            "victim: jmp s' -> d' with H(s) = H(s') evicts (s, d)",
            "attacker observes its own misprediction",
        ),
        adversarial_effect="leak victim branch virtual address / activity",
        example_attacks=("BTB eviction side channel",),
        primary_mitigation=Mitigation.KEYED_REMAPPING,
    ),
    AttackVector(
        structure=Structure.BTB,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.AWAY,
        steps=(
            "victim: jmp s -> d installs (s, d)",
            "attacker primes the set with colliding branches",
            "victim falls back to static prediction",
        ),
        adversarial_effect="force static prediction / speculative gadget at fall-through",
        example_attacks=("eviction-based Spectre variants", "DoS slowdown"),
        primary_mitigation=Mitigation.KEYED_REMAPPING,
    ),
    AttackVector(
        structure=Structure.PHT,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.HOME,
        steps=(
            "victim: conditional jt s -> d updates PHT counter",
            "attacker: jnt at colliding index reuses counter state",
            "attacker observes its own misprediction",
        ),
        adversarial_effect="leak victim taken/not-taken pattern",
        example_attacks=("BranchScope", "BlueThunder", "branch prediction analysis"),
        primary_mitigation=Mitigation.KEYED_REMAPPING,
    ),
    AttackVector(
        structure=Structure.PHT,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.AWAY,
        steps=(
            "attacker trains the colliding counter to a chosen direction",
            "victim conditional branch reuses the counter",
            "victim speculatively executes the wrong path",
        ),
        adversarial_effect="steer victim direction speculation (Spectre v1-style gadgets)",
        example_attacks=("conditional-branch mistraining",),
        primary_mitigation=Mitigation.KEYED_REMAPPING,
    ),
    AttackVector(
        structure=Structure.PHT,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.HOME,
        steps=("PHT entries are saturating counters and are never evicted",),
        adversarial_effect="none",
        example_attacks=(),
        primary_mitigation=Mitigation.NOT_APPLICABLE,
        possible=False,
    ),
    AttackVector(
        structure=Structure.PHT,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.AWAY,
        steps=("PHT entries are saturating counters and are never evicted",),
        adversarial_effect="none",
        example_attacks=(),
        primary_mitigation=Mitigation.NOT_APPLICABLE,
        possible=False,
    ),
    AttackVector(
        structure=Structure.RSB,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.HOME,
        steps=(
            "victim: call s -> d pushes s+1",
            "attacker: ret pops and reuses s+1",
            "attacker observes its own misprediction",
        ),
        adversarial_effect="leak victim call pattern / return addresses",
        example_attacks=("RSB side channels",),
        primary_mitigation=Mitigation.TARGET_ENCRYPTION,
    ),
    AttackVector(
        structure=Structure.RSB,
        collision=CollisionKind.REUSE,
        locus=EffectLocus.AWAY,
        steps=(
            "attacker: call s -> d pushes a malicious return target",
            "victim: ret pops and speculates with it",
            "victim speculatively executes attacker-chosen code",
        ),
        adversarial_effect="speculative execution at attacker-chosen address",
        example_attacks=("SpectreRSB", "ret2spec"),
        primary_mitigation=Mitigation.TARGET_ENCRYPTION,
    ),
    AttackVector(
        structure=Structure.RSB,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.HOME,
        steps=(
            "attacker fills the RSB",
            "victim calls evict the attacker's entries",
            "attacker observes its own misprediction",
        ),
        adversarial_effect="leak victim call activity",
        example_attacks=("RSB occupancy channel",),
        primary_mitigation=Mitigation.RERANDOMIZATION,
    ),
    AttackVector(
        structure=Structure.RSB,
        collision=CollisionKind.EVICTION,
        locus=EffectLocus.AWAY,
        steps=(
            "victim: call s -> d pushes s+1",
            "attacker overflows the RSB with a call loop",
            "victim return falls back to static / indirect prediction",
        ),
        adversarial_effect="force fall-back prediction, enabling gadget speculation",
        example_attacks=("RSB overflow attacks",),
        primary_mitigation=Mitigation.TARGET_ENCRYPTION,
    ),
)


def vectors(
    structure: Structure | None = None,
    collision: CollisionKind | None = None,
    locus: EffectLocus | None = None,
    only_possible: bool = False,
) -> list[AttackVector]:
    """Query the attack surface along any combination of the Table I axes."""
    selected = []
    for vector in ATTACK_SURFACE:
        if structure is not None and vector.structure is not structure:
            continue
        if collision is not None and vector.collision is not collision:
            continue
        if locus is not None and vector.locus is not locus:
            continue
        if only_possible and not vector.possible:
            continue
        selected.append(vector)
    return selected


def table_rows() -> list[dict[str, str]]:
    """Render the taxonomy as flat rows (used by the Table I benchmark/report)."""
    rows = []
    for vector in ATTACK_SURFACE:
        rows.append(
            {
                "structure": vector.structure.value,
                "collision": vector.collision.value,
                "locus": vector.locus.value,
                "possible": "yes" if vector.possible else "no",
                "effect": vector.adversarial_effect,
                "mitigation": vector.primary_mitigation.value,
                "examples": ", ".join(vector.example_attacks),
            }
        )
    return rows
