"""Reuse-based side-channel attacks (Table I, reuse/home quadrants).

Two concrete attacks are modelled:

* :class:`BTBReuseSideChannel` — the Jump-over-ASLR / branch-shadowing
  pattern: the attacker executes a branch at the *same virtual address* as a
  victim branch and infers, from whether its own access reuses a BTB entry,
  whether (and where) the victim executed.
* :class:`PHTReuseSideChannel` — the BranchScope pattern: the attacker probes
  a PHT counter that collides with the victim's secret-dependent conditional
  branch and recovers the victim's taken/not-taken bit.

Against the unprotected BPU both channels leak with high accuracy.  Against
STBPU the keyed per-process remapping removes the deterministic collision, so
the recovered bits are uncorrelated with the secret, and sustained probing
only drives the misprediction counters toward re-randomization.
"""

from __future__ import annotations

import random

from repro.bpu.common import BranchPredictorModel
from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    VICTIM_CONTEXT,
    AttackHarness,
    AttackOutcome,
    make_branch,
)
from repro.trace.branch import BranchType


class BTBReuseSideChannel:
    """Detect whether the victim executed a branch at a known virtual address."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def run(self, trials: int = 200, victim_branch_ip: int = 0x0000_5555_1234_0040) -> AttackOutcome:
        """Run ``trials`` detection rounds and report the inference accuracy.

        In each round the victim either executes its branch or stays idle
        (a secret coin flip); the attacker then executes a branch at the same
        virtual address with a different target and uses "my access hit in the
        BTB" as the detection signal.
        """
        correct = 0
        victim_target = victim_branch_ip + 0x400
        attacker_target = victim_branch_ip + 0x9000
        for trial in range(trials):
            victim_executed = self.rng.random() < 0.5
            if victim_executed:
                self.harness.victim_access(
                    make_branch(victim_branch_ip, victim_target,
                                BranchType.DIRECT_JUMP, VICTIM_CONTEXT)
                )
            self.harness.context_switch(ATTACKER_CONTEXT)
            probe = self.harness.attacker_access(
                make_branch(victim_branch_ip, attacker_target,
                            BranchType.DIRECT_JUMP, ATTACKER_CONTEXT)
            )
            # Detection signal: the probe found an entry whose target is not the
            # attacker's own (i.e. the attacker's fetch was redirected to the
            # victim's target and then mispredicted) — the classic reuse signal.
            inferred = probe.btb_hit and not probe.target_correct
            if inferred == victim_executed:
                correct += 1
            # The attacker's own access installs an entry; executing a flushing
            # filler branch stream would be the realistic cleanup, but for the
            # signal model it suffices that the next victim install overwrites
            # the same entry on the unprotected BPU.
        accuracy = correct / trials
        return AttackOutcome(
            name="btb-reuse-side-channel",
            protected=self.harness.is_protected,
            success=accuracy > 0.75,
            success_metric=accuracy,
            attempts=trials,
            observation=self.harness.observation,
            details={"inference_accuracy": accuracy},
        )


class PHTReuseSideChannel:
    """BranchScope-style recovery of a victim's secret-dependent direction bits."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def run(self, secret_bits: int = 128,
            victim_branch_ip: int = 0x0000_5555_2222_0100) -> AttackOutcome:
        """Recover ``secret_bits`` direction bits of the victim's conditional branch.

        Per bit: the attacker first drives the colliding counter to a weak
        state with its own conditional branch at the same address, lets the
        victim execute its secret-dependent branch three times, then probes
        with a not-taken branch — a misprediction on the probe means the
        counter moved toward taken, i.e. the secret bit was 1.
        """
        recovered_correct = 0
        taken_target = victim_branch_ip + 0x200
        for _ in range(secret_bits):
            secret_bit = self.rng.random() < 0.5

            # Prime: several not-taken executions drive the shared counter low.
            for _ in range(3):
                self.harness.attacker_access(
                    make_branch(victim_branch_ip, victim_branch_ip + 4,
                                BranchType.CONDITIONAL, ATTACKER_CONTEXT, taken=False)
                )
            # Victim executes its secret-dependent branch a few times.
            for _ in range(4):
                self.harness.victim_access(
                    make_branch(victim_branch_ip,
                                taken_target if secret_bit else victim_branch_ip + 4,
                                BranchType.CONDITIONAL, VICTIM_CONTEXT, taken=secret_bit)
                )
            # Probe: a not-taken attacker execution mispredicts iff the counter
            # was dragged toward taken by the victim.
            probe = self.harness.attacker_access(
                make_branch(victim_branch_ip, victim_branch_ip + 4,
                            BranchType.CONDITIONAL, ATTACKER_CONTEXT, taken=False)
            )
            inferred_bit = not probe.direction_correct
            if inferred_bit == secret_bit:
                recovered_correct += 1

        accuracy = recovered_correct / secret_bits
        return AttackOutcome(
            name="pht-reuse-side-channel",
            protected=self.harness.is_protected,
            success=accuracy > 0.75,
            success_metric=accuracy,
            attempts=secret_bits,
            observation=self.harness.observation,
            details={"bit_recovery_accuracy": accuracy},
        )
