"""Eviction-based attacks (Table I, eviction quadrants).

The attacker primes BTB sets with its own branches and later detects, from
mispredictions on its own re-executions, that the victim's branch evicted one
of the primed entries — leaking whether (and roughly where) the victim
executed.  On the unprotected BPU the attacker can compute which addresses
map to the victim's set; against STBPU it must guess, so detection accuracy
collapses to chance while the eviction counter races toward re-randomization.
"""

from __future__ import annotations

import random

from repro.bpu.common import BranchPredictorModel
from repro.bpu.mapping import BaselineMappingProvider
from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    VICTIM_CONTEXT,
    AttackHarness,
    AttackOutcome,
    make_branch,
)
from repro.trace.branch import BranchType


class BTBEvictionSideChannel:
    """Prime+probe on BTB sets to detect victim branch activity."""

    def __init__(self, model: BranchPredictorModel, ways: int = 8, sets: int = 512, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)
        self.ways = ways
        self.sets = sets
        self._baseline_mapping = BaselineMappingProvider()

    def _priming_addresses(self, victim_ip: int, count: int) -> list[int]:
        """Addresses the attacker uses to prime the victim's set.

        On the unprotected BPU the attacker can construct addresses that land
        in the victim's set by stepping the index-forming bits; it does the
        same arithmetic here regardless of protection (it cannot know the
        keyed mapping), which is exactly why the attack degrades under STBPU.
        """
        victim_key = self._baseline_mapping.btb_mode1(victim_ip)
        addresses = []
        stride = self.sets << 5  # keep the baseline index bits, vary the tag bits
        base = (victim_ip & ~((self.sets - 1) << 5)) | (victim_key.index << 5)
        for way in range(count):
            addresses.append((base + (way + 1) * stride) & 0xFFFF_FFFF_FFFF)
        return addresses

    def run(self, trials: int = 100,
            victim_branch_ip: int = 0x0000_5555_7777_0500) -> AttackOutcome:
        """Run prime+probe rounds and report victim-activity detection accuracy."""
        correct = 0
        prime_set = self._priming_addresses(victim_branch_ip, self.ways)
        victim_target = victim_branch_ip + 0x300
        for _ in range(trials):
            # Prime: fill the presumed victim set with attacker entries.
            for address in prime_set:
                self.harness.attacker_access(
                    make_branch(address, address + 0x40,
                                BranchType.DIRECT_JUMP, ATTACKER_CONTEXT)
                )
            # Victim secretly executes (or not).
            victim_executed = self.rng.random() < 0.5
            self.harness.context_switch(VICTIM_CONTEXT)
            if victim_executed:
                self.harness.victim_access(
                    make_branch(victim_branch_ip, victim_target,
                                BranchType.DIRECT_JUMP, VICTIM_CONTEXT)
                )
            self.harness.context_switch(ATTACKER_CONTEXT)
            # Probe: a miss (misprediction) on any primed entry signals eviction.
            evicted = False
            for address in prime_set:
                probe = self.harness.attacker_access(
                    make_branch(address, address + 0x40,
                                BranchType.DIRECT_JUMP, ATTACKER_CONTEXT)
                )
                if not probe.btb_hit:
                    evicted = True
            if evicted == victim_executed:
                correct += 1

        accuracy = correct / trials
        return AttackOutcome(
            name="btb-eviction-side-channel",
            protected=self.harness.is_protected,
            success=accuracy > 0.75,
            success_metric=accuracy,
            attempts=trials,
            observation=self.harness.observation,
            details={"detection_accuracy": accuracy},
        )


class RSBOverflowAttack:
    """Force the victim's returns to fall back to the indirect predictor.

    The attacker overflows the shared RSB with a deep call chain; the victim's
    subsequent return then pops attacker-pushed (and, under STBPU,
    attacker-encrypted) values or underflows entirely.  The measured quantity
    is the fraction of victim returns whose predicted target equals an
    attacker-pushed address.
    """

    def __init__(self, model: BranchPredictorModel, rsb_entries: int = 16, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rsb_entries = rsb_entries
        self.rng = random.Random(seed)

    def run(self, trials: int = 100,
            victim_return_ip: int = 0x0000_5555_8888_0600) -> AttackOutcome:
        poisoned = 0
        attacker_call_base = 0x0000_5555_8888_4000
        for _ in range(trials):
            # Attacker fills the RSB with its own return addresses.
            for slot in range(self.rsb_entries + 2):
                call_ip = attacker_call_base + slot * 0x40
                self.harness.attacker_access(
                    make_branch(call_ip, call_ip + 0x800,
                                BranchType.DIRECT_CALL, ATTACKER_CONTEXT)
                )
            self.harness.context_switch(VICTIM_CONTEXT)
            result = self.harness.victim_access(
                make_branch(victim_return_ip, victim_return_ip + 0x100,
                            BranchType.RETURN, VICTIM_CONTEXT)
            )
            predicted = result.prediction.target
            if predicted is not None:
                offset = predicted - attacker_call_base
                if 0 <= offset < (self.rsb_entries + 2) * 0x40 + 8:
                    poisoned += 1
            self.harness.context_switch(ATTACKER_CONTEXT)

        rate = poisoned / trials
        return AttackOutcome(
            name="rsb-overflow",
            protected=self.harness.is_protected,
            success=rate > 0.5,
            success_metric=rate,
            attempts=trials,
            observation=self.harness.observation,
            details={"victim_poisoned_return_rate": rate},
        )
