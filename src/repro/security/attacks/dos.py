"""Denial-of-service attacks on the BPU (paper Section VI-A.6).

Rather than leaking data, the attacker tries to slow the victim down by
destroying its useful predictor state:

* **eviction DoS** — evict the BTB entries behind the victim's hot branches so
  every victim branch misses, and
* **reuse DoS** — plant bogus targets the victim will speculatively follow,
  paying a squash penalty each time.

STBPU cannot remove the first attack entirely (the BTB is still shared), but
the attacker is blind to the keyed mapping and must flood indiscriminately;
the second attack additionally runs into target encryption, which turns
planted targets into garbage addresses that do not match any victim gadget.
The experiment measures the victim's misprediction rate on a fixed hot loop
with and without the attacker's interference.
"""

from __future__ import annotations

import random

from repro.bpu.common import BranchPredictorModel
from repro.bpu.mapping import BaselineMappingProvider
from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    VICTIM_CONTEXT,
    AttackHarness,
    AttackOutcome,
    make_branch,
)
from repro.trace.branch import BranchType


class BPUDenialOfService:
    """Measure the slowdown an attacker can impose on a victim's hot branches."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def _victim_round(self, hot_branches: list[tuple[int, int]]) -> tuple[int, int]:
        """Execute the victim's hot branches once; return (accesses, mispredictions)."""
        mispredictions = 0
        for ip, target in hot_branches:
            result = self.harness.victim_access(
                make_branch(ip, target, BranchType.DIRECT_JUMP, VICTIM_CONTEXT)
            )
            if result.mispredicted:
                mispredictions += 1
        return len(hot_branches), mispredictions

    def run(
        self,
        rounds: int = 50,
        hot_branch_count: int = 32,
        attacker_branches_per_round: int = 512,
    ) -> AttackOutcome:
        """Interleave attacker flooding with victim execution of a hot loop."""
        base_ip = 0x0000_5555_9999_0000
        hot_branches = [
            (base_ip + index * 0x40, base_ip + index * 0x40 + 0x2000)
            for index in range(hot_branch_count)
        ]

        # Warm-up and undisturbed baseline measurement.
        self.harness.context_switch(VICTIM_CONTEXT)
        self._victim_round(hot_branches)
        baseline_accesses = 0
        baseline_misses = 0
        for _ in range(rounds):
            accesses, misses = self._victim_round(hot_branches)
            baseline_accesses += accesses
            baseline_misses += misses
        baseline_rate = baseline_misses / baseline_accesses if baseline_accesses else 0.0

        # Attacked phase: the attacker floods between victim rounds.  The
        # attacker assumes the legacy (deterministic) mapping and constructs
        # addresses that land in the victim's BTB sets under that mapping —
        # precise eviction on the unprotected design, blind flooding under
        # STBPU where the real mapping is keyed by a token it does not know.
        mapping = BaselineMappingProvider()
        targeted: list[int] = []
        sets = mapping.sizes.btb_sets
        for ip, _ in hot_branches:
            victim_index = mapping.btb_mode1(ip).index
            base = (ip & ~((sets - 1) << 5)) | (victim_index << 5)
            for way in range(10):
                targeted.append((base + (way + 1) * (sets << 5)) & 0xFFFF_FFFF_FFFF)

        attacked_accesses = 0
        attacked_misses = 0
        for _ in range(rounds):
            self.harness.context_switch(ATTACKER_CONTEXT)
            for flood_index in range(attacker_branches_per_round):
                address = targeted[flood_index % len(targeted)]
                self.harness.attacker_access(
                    make_branch(address, address + 0x40,
                                BranchType.DIRECT_JUMP, ATTACKER_CONTEXT)
                )
            self.harness.context_switch(VICTIM_CONTEXT)
            accesses, misses = self._victim_round(hot_branches)
            attacked_accesses += accesses
            attacked_misses += misses
        attacked_rate = attacked_misses / attacked_accesses if attacked_accesses else 0.0

        slowdown = attacked_rate - baseline_rate
        return AttackOutcome(
            name="bpu-denial-of-service",
            protected=self.harness.is_protected,
            success=slowdown > 0.25,
            success_metric=slowdown,
            attempts=rounds,
            observation=self.harness.observation,
            details={
                "baseline_misprediction_rate": baseline_rate,
                "attacked_misprediction_rate": attacked_rate,
                "induced_misprediction_increase": slowdown,
            },
        )
