"""Shared infrastructure for executable attack simulations.

The attack modules drive a predictor model (unprotected
:class:`~repro.bpu.composite.CompositeBPU` or an
:class:`~repro.core.stbpu.STBPU`) with hand-crafted attacker and victim branch
records and observe the micro-architectural signals a real attacker would
have: whether its own branches hit or mispredicted, and what speculative
target the victim would have followed.  Running the identical attack against
the unprotected and protected models is how the repository demonstrates each
Table I vector and its STBPU mitigation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bpu.common import AccessResult, BranchPredictorModel
from repro.trace.branch import BranchRecord, BranchType, PrivilegeMode

#: Default context identifiers used across the attack simulations.
ATTACKER_CONTEXT = 100
VICTIM_CONTEXT = 200


@dataclass(slots=True)
class AttackObservation:
    """Raw per-access observations accumulated while an attack runs."""

    attacker_accesses: int = 0
    victim_accesses: int = 0
    attacker_mispredictions: int = 0
    attacker_btb_hits: int = 0
    evictions_triggered: int = 0
    rerandomizations: int = 0


@dataclass(slots=True)
class AttackOutcome:
    """Summary of one attack experiment."""

    name: str
    protected: bool
    success: bool
    success_metric: float
    attempts: int
    observation: AttackObservation = field(default_factory=AttackObservation)
    details: dict[str, float] = field(default_factory=dict)


def make_branch(
    ip: int,
    target: int,
    branch_type: BranchType = BranchType.DIRECT_JUMP,
    context_id: int = ATTACKER_CONTEXT,
    taken: bool = True,
    mode: PrivilegeMode = PrivilegeMode.USER,
) -> BranchRecord:
    """Convenience constructor for attack branch records."""
    return BranchRecord(
        ip=ip, target=target, taken=taken, branch_type=branch_type,
        context_id=context_id, mode=mode,
    )


class AttackHarness:
    """Runs attacker/victim accesses against one predictor model and keeps score.

    The harness speaks only the uniform
    :class:`~repro.bpu.common.BranchPredictorModel` protocol —
    ``access_with_events()`` for accesses and ``protection_stats()`` for
    protection-mechanism counters — so any registry-registered protection
    scheme is scored correctly, not just the built-in concrete classes.
    """

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.model = model
        self.rng = random.Random(seed)
        self.observation = AttackObservation()

    @property
    def is_protected(self) -> bool:
        """Whether the model implements any protection mechanism.

        A protection scheme advertises itself by reporting counters from
        :meth:`~repro.bpu.common.BranchPredictorModel.protection_stats`;
        unprotected predictors report none.
        """
        return bool(self.model.protection_stats())

    @property
    def randomizes_tokens(self) -> bool:
        """Whether the model re-randomizes secret tokens (STBPU-style).

        Token-based schemes key their mappings and encrypt stored targets, so
        attacks that must plant a *specific* value switch strategy against
        them (the planted value decrypts with a token the attacker cannot
        know).
        """
        return "rerandomizations" in self.model.protection_stats()

    def _rerandomization_count(self) -> int:
        return int(self.model.protection_stats().get("rerandomizations", 0))

    def _access(self, branch: BranchRecord) -> AccessResult:
        before = self._rerandomization_count()
        result = self.model.access_with_events(branch)
        after = self._rerandomization_count()
        if after > before:
            self.observation.rerandomizations += after - before
        if result.btb_eviction:
            self.observation.evictions_triggered += 1
        return result

    def attacker_access(self, branch: BranchRecord) -> AccessResult:
        """Execute one attacker branch and record its observable signals."""
        result = self._access(branch)
        self.observation.attacker_accesses += 1
        if result.mispredicted:
            self.observation.attacker_mispredictions += 1
        if result.btb_hit:
            self.observation.attacker_btb_hits += 1
        return result

    def victim_access(self, branch: BranchRecord) -> AccessResult:
        """Execute one victim branch (the attacker does not see this result)."""
        result = self._access(branch)
        self.observation.victim_accesses += 1
        return result

    def context_switch(self, context_id: int) -> None:
        self.model.on_context_switch(context_id)
