"""Target-injection attacks: Spectre v2 and SpectreRSB (Table I, reuse/away).

The attacker plants a malicious target in a shared structure (BTB or RSB) so
that the victim's next indirect branch or return speculatively executes an
attacker-chosen gadget.  On the unprotected BPU this succeeds as soon as the
attacker's training branch collides with the victim's branch.  Under STBPU the
stored target is encrypted with the attacker's ϕ and decrypted with the
victim's ϕ, so the speculative destination is ``target ⊕ ϕ_a ⊕ ϕ_v`` — an
effectively random address.  Steering it onto the gadget requires on the order
of Ω/2 ≈ 2³¹ attempts, each of which increments the misprediction counter and
re-randomizes the ST long before success (Section VI-A.1).
"""

from __future__ import annotations

import random

from repro.bpu.common import BranchPredictorModel
from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    VICTIM_CONTEXT,
    AttackHarness,
    AttackOutcome,
    make_branch,
)
from repro.trace.branch import BranchType


class SpectreV2Injection:
    """Branch-target injection through the BTB."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def run(
        self,
        attempts: int = 500,
        branch_ip: int = 0x0000_5555_3333_0200,
        gadget_address: int = 0x0000_5555_3333_8000,
    ) -> AttackOutcome:
        """Try to make the victim's indirect branch predict the gadget address.

        Each attempt: the attacker trains the shared indirect-branch entry
        with a chosen target, then the victim executes its indirect branch
        (whose architectural target is elsewhere).  The attack succeeds when
        the victim's *predicted* target equals the gadget address, i.e. the
        CPU would have steered transient execution into the gadget.
        """
        victim_real_target = branch_ip + 0x4000
        successes = 0
        first_success_attempt = 0
        for attempt in range(1, attempts + 1):
            # Under token-based protection the attacker cannot compute which
            # stored value decrypts to the gadget, so the best strategy is
            # varying the trained target; against flushing-style schemes the
            # gadget address can still be planted directly.
            trained_target = (
                (gadget_address ^ self.rng.getrandbits(32))
                if self.harness.randomizes_tokens
                else gadget_address
            )
            self.harness.attacker_access(
                make_branch(branch_ip, trained_target,
                            BranchType.INDIRECT_JUMP, ATTACKER_CONTEXT)
            )
            self.harness.context_switch(VICTIM_CONTEXT)
            victim_result = self.harness.victim_access(
                make_branch(branch_ip, victim_real_target,
                            BranchType.INDIRECT_JUMP, VICTIM_CONTEXT)
            )
            predicted = victim_result.prediction.target
            if predicted is not None and predicted == gadget_address:
                successes += 1
                if not first_success_attempt:
                    first_success_attempt = attempt
            self.harness.context_switch(ATTACKER_CONTEXT)

        rate = successes / attempts
        return AttackOutcome(
            name="spectre-v2-injection",
            protected=self.harness.is_protected,
            success=successes > 0,
            success_metric=rate,
            attempts=attempts,
            observation=self.harness.observation,
            details={
                "speculation_to_gadget_rate": rate,
                "first_success_attempt": float(first_success_attempt),
            },
        )


class SpectreRSBInjection:
    """Return-target injection through the RSB (SpectreRSB / ret2spec)."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def run(
        self,
        attempts: int = 500,
        call_ip: int = 0x0000_5555_4444_0400,
        gadget_address: int = 0x0000_5555_4444_9000,
    ) -> AttackOutcome:
        """Poison the RSB so the victim's return speculates into the gadget.

        Each attempt: the attacker executes a call whose pushed return address
        is the gadget (modelled directly as the pushed value), then the victim
        executes a return whose architectural target is its own caller.  The
        attack succeeds when the victim's predicted return target equals the
        gadget address.
        """
        victim_return_ip = call_ip + 0x1000
        victim_real_return = call_ip + 0x2000
        successes = 0
        for _ in range(attempts):
            # Attacker call: pushes (call fall-through); to aim at the gadget
            # the attacker places its call so that fall-through == gadget.
            attacker_call_ip = (gadget_address - 4) & 0xFFFF_FFFF_FFFF
            self.harness.attacker_access(
                make_branch(attacker_call_ip, attacker_call_ip + 0x600,
                            BranchType.DIRECT_CALL, ATTACKER_CONTEXT)
            )
            self.harness.context_switch(VICTIM_CONTEXT)
            victim_result = self.harness.victim_access(
                make_branch(victim_return_ip, victim_real_return,
                            BranchType.RETURN, VICTIM_CONTEXT)
            )
            predicted = victim_result.prediction.target
            if predicted is not None and predicted == gadget_address:
                successes += 1
            self.harness.context_switch(ATTACKER_CONTEXT)

        rate = successes / attempts
        return AttackOutcome(
            name="spectre-rsb-injection",
            protected=self.harness.is_protected,
            success=successes > 0,
            success_metric=rate,
            attempts=attempts,
            observation=self.harness.observation,
            details={"speculation_to_gadget_rate": rate},
        )
