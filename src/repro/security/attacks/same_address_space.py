"""Same-address-space attacks (transient trojans, Section VI-A.3).

Both the trigger branch and the trojan branch live inside one address space
(one software entity, one ST), so target encryption with ϕ cannot help — the
same token decrypts what it encrypted.  What the unprotected BPU gets wrong is
*address truncation*: only 32 of the 48 virtual-address bits feed the mapping
functions, so two distinct branches whose addresses differ only above bit 31
collide deterministically.  STBPU's remapping functions consume the full
48-bit address, which removes the deterministic collision; the attacker is
left brute-forcing the keyed mapping, with the usual Equation (2) event cost.
"""

from __future__ import annotations

import random

from repro.bpu.common import BranchPredictorModel
from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    AttackHarness,
    AttackOutcome,
    make_branch,
)
from repro.trace.branch import BranchType


class TransientTrojanAttack:
    """Intra-address-space BTB collision between an aliased trigger/trojan pair."""

    def __init__(self, model: BranchPredictorModel, seed: int = 0):
        self.harness = AttackHarness(model, seed)
        self.rng = random.Random(seed)

    def run(
        self,
        trials: int = 200,
        trojan_ip: int = 0x0000_5555_6666_0300,
        gadget_address: int = 0x0000_5555_6666_7000,
    ) -> AttackOutcome:
        """Try to steer a benign-looking branch through an aliased colliding branch.

        The trigger branch sits at ``trojan_ip + 2^32``: identical in the 32
        truncated bits the unprotected hardware uses, distinct in the full
        48-bit address.  The attacker trains the trigger with the gadget
        target, then executes the trojan branch (whose real target is benign)
        and checks whether the prediction redirects to the gadget.
        """
        trigger_ip = trojan_ip + (1 << 32)
        benign_target = trojan_ip + 0x500
        successes = 0
        for _ in range(trials):
            self.harness.attacker_access(
                make_branch(trigger_ip, gadget_address,
                            BranchType.INDIRECT_JUMP, ATTACKER_CONTEXT)
            )
            result = self.harness.attacker_access(
                make_branch(trojan_ip, benign_target,
                            BranchType.INDIRECT_JUMP, ATTACKER_CONTEXT)
            )
            predicted = result.prediction.target
            if predicted is not None and predicted == gadget_address:
                successes += 1

        rate = successes / trials
        return AttackOutcome(
            name="transient-trojan-same-address-space",
            protected=self.harness.is_protected,
            success=rate > 0.5,
            success_metric=rate,
            attempts=trials,
            observation=self.harness.observation,
            details={"collision_activation_rate": rate},
        )
