"""Executable collision-based attack simulations (paper Sections II-B, III, VI)."""

from repro.security.attacks.base import (
    ATTACKER_CONTEXT,
    VICTIM_CONTEXT,
    AttackHarness,
    AttackObservation,
    AttackOutcome,
    make_branch,
)
from repro.security.attacks.reuse import BTBReuseSideChannel, PHTReuseSideChannel
from repro.security.attacks.injection import SpectreRSBInjection, SpectreV2Injection
from repro.security.attacks.same_address_space import TransientTrojanAttack
from repro.security.attacks.eviction import BTBEvictionSideChannel, RSBOverflowAttack
from repro.security.attacks.dos import BPUDenialOfService

__all__ = [
    "ATTACKER_CONTEXT",
    "VICTIM_CONTEXT",
    "AttackHarness",
    "AttackObservation",
    "AttackOutcome",
    "make_branch",
    "BTBReuseSideChannel",
    "PHTReuseSideChannel",
    "SpectreRSBInjection",
    "SpectreV2Injection",
    "TransientTrojanAttack",
    "BTBEvictionSideChannel",
    "RSBOverflowAttack",
    "BPUDenialOfService",
]
