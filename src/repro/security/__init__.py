"""Security analysis and executable attack simulations (paper Section VI)."""

from repro.security.parameters import (
    SKYLAKE_PARAMETERS,
    AnalysisParameters,
    StructureParameters,
)
from repro.security.analysis import (
    AttackComplexitySummary,
    EvictionAttackCost,
    InjectionAttackCost,
    ReuseAttackCost,
    derive_rerandomization_thresholds,
    eviction_attack_cost,
    injection_attack_cost,
    naive_eviction_set_probability,
    reuse_attack_cost,
    same_address_space_attack_cost,
    summarize_attack_complexities,
)
from repro.security.gem import GEMEvictionSetBuilder, GEMResult, GEMStatistics
from repro.security.taxonomy import (
    ATTACK_SURFACE,
    AttackVector,
    CollisionKind,
    EffectLocus,
    Mitigation,
    Structure,
    table_rows,
    vectors,
)

__all__ = [
    "SKYLAKE_PARAMETERS",
    "AnalysisParameters",
    "StructureParameters",
    "AttackComplexitySummary",
    "EvictionAttackCost",
    "InjectionAttackCost",
    "ReuseAttackCost",
    "derive_rerandomization_thresholds",
    "eviction_attack_cost",
    "injection_attack_cost",
    "naive_eviction_set_probability",
    "reuse_attack_cost",
    "same_address_space_attack_cost",
    "summarize_attack_complexities",
    "GEMEvictionSetBuilder",
    "GEMResult",
    "GEMStatistics",
    "ATTACK_SURFACE",
    "AttackVector",
    "CollisionKind",
    "EffectLocus",
    "Mitigation",
    "Structure",
    "table_rows",
    "vectors",
]
