"""Probabilistic fault injection for the serving tier.

The serving stack (``repro serve`` + ``repro.store.jobs``) claims to survive
slow, failing and corrupting stores as well as wedged jobs.  This module is
how that claim is exercised: a :class:`FaultPlan` describes *which* faults to
inject at *what* rates, a :class:`FaultInjector` rolls the (seeded) dice, and
:class:`FaultyStore` applies the rolls to every store round-trip while
delegating real persistence to the wrapped backend.

Faults are injected at the store boundary only — the engine underneath stays
deterministic, so a serving tier that degrades correctly produces envelopes
byte-identical to a fault-free run (the CI chaos smoke pins exactly that).

Plans come from three places, in priority order:

* the CLI: ``repro serve --faults "error=0.2,latency=0.1,seed=7"``,
* the environment: ``REPRO_FAULTS`` with the same mini-language,
* tests constructing :class:`FaultPlan` directly.

This module is intentionally *outside* the determinism lint's scope: it uses
wall-clock sleeps and its RNG is seeded per plan, not per experiment.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import metrics as obs_metrics
from repro.store.base import ResultStore, StoreWrapper

#: Environment variable carrying a fault spec (same syntax as ``--faults``).
FAULTS_ENV = "REPRO_FAULTS"

#: Sentinel payload returned for a corrupted read: schema-invalid for every
#: consumer (job records, envelopes, job state), so each degrades to a miss.
CORRUPT_PAYLOAD = {"schema": "repro.fault/corrupt", "injected": True}

_RATE_FIELDS = frozenset({"error", "latency", "corrupt"})
_SECONDS_FIELDS = frozenset({"latency_seconds", "hang_seconds"})


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Immutable description of the faults to inject and their rates."""

    error_rate: float = 0.0       # P(raise OSError) per store get/put
    latency_rate: float = 0.0     # P(sleep latency_seconds) per get/put
    latency_seconds: float = 0.01
    corrupt_rate: float = 0.0     # P(mangle payload) per successful get
    seed: int = 0                 # injector RNG seed (reproducible chaos)
    hang: str = ""                # substring of scenario names to wedge
    hang_seconds: float = 3600.0  # how long a matched job stays wedged

    def __post_init__(self) -> None:
        for name in ("error_rate", "latency_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault {name} must be in [0, 1], got {rate!r}")
        for name in ("latency_seconds", "hang_seconds"):
            if getattr(self, name) < 0:
                raise ValueError(f"fault {name} must be >= 0")

    @property
    def active(self) -> bool:
        return bool(self.error_rate or self.latency_rate
                    or self.corrupt_rate or self.hang)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the ``key=value,key=value`` fault mini-language.

    Keys: ``error``, ``latency``, ``corrupt`` (rates in ``[0, 1]``),
    ``latency_seconds``, ``hang_seconds`` (non-negative seconds), ``seed``
    (int) and ``hang`` (substring matched against scenario names).
    """
    fields: dict[str, Any] = {}
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, separator, value = clause.partition("=")
        key = key.strip()
        value = value.strip()
        if not separator or not value:
            raise ValueError(f"invalid fault clause {clause!r}: expected key=value")
        if key in _RATE_FIELDS:
            fields[f"{key}_rate"] = float(value)
        elif key in _SECONDS_FIELDS:
            fields[key] = float(value)
        elif key == "seed":
            fields[key] = int(value)
        elif key == "hang":
            fields[key] = value
        else:
            raise ValueError(f"unknown fault key {key!r}")
    return FaultPlan(**fields)


def plan_from_env(environ: dict[str, str] | None = None) -> FaultPlan | None:
    """The ``$REPRO_FAULTS`` plan, or ``None`` when unset/empty."""
    spec = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    return parse_fault_spec(spec) if spec else None


class FaultInjector:
    """Seeded dice plus counters, shared by every wrapper of one plan."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.injected_errors = 0
        self.injected_latency = 0
        self.injected_corruption = 0
        self.hangs = 0

    def roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < rate

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "injected_errors": self.injected_errors,
                "injected_latency": self.injected_latency,
                "injected_corruption": self.injected_corruption,
                "hangs": self.hangs,
            }

    def _count(self, name: str) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)
        # Bridge into the process-wide registry outside our lock (the
        # registry lock stays a leaf).
        obs_metrics.inc("repro_faults_injected_total", kind=name)

    # -- store-facing perturbations -----------------------------------------

    def perturb(self) -> None:
        """Maybe sleep, maybe raise — the prelude of every store round-trip."""
        if self.roll(self.plan.latency_rate):
            self._count("injected_latency")
            time.sleep(self.plan.latency_seconds)
        if self.roll(self.plan.error_rate):
            self._count("injected_errors")
            raise OSError("injected store fault")

    def maybe_corrupt(self, payload: Any) -> Any:
        if payload is not None and self.roll(self.plan.corrupt_rate):
            self._count("injected_corruption")
            return dict(CORRUPT_PAYLOAD)
        return payload

    # -- job-facing hook ----------------------------------------------------

    def maybe_hang(self, name: str,
                   should_abort: Callable[[], bool] | None = None,
                   tick: float = 0.05) -> bool:
        """Wedge the calling job if ``name`` matches the plan's ``hang``.

        Sleeps in short ticks honouring ``should_abort`` so a supervisor that
        fires the job's deadline reclaims the worker promptly.  Returns
        whether a hang was injected.
        """
        if not self.plan.hang or self.plan.hang not in name:
            return False
        self._count("hangs")
        deadline = time.monotonic() + self.plan.hang_seconds
        while time.monotonic() < deadline:
            if should_abort is not None and should_abort():
                break
            time.sleep(min(tick, self.plan.hang_seconds))
        return True


class FaultyStore(StoreWrapper):
    """A store wrapper that injects latency, errors and corruption.

    Counter bookkeeping note: an injected corruption happens *after* the
    inner store counted the read as a hit — callers that validate payloads
    (runner, serve) reclassify it, exactly as they do for real corruption
    that slips past the backend's own checks.
    """

    def __init__(self, inner: ResultStore,
                 plan: FaultPlan | FaultInjector) -> None:
        super().__init__(inner)
        self.injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)

    def get(self, namespace: str, fingerprint: str) -> Any | None:
        self.injector.perturb()
        return self.injector.maybe_corrupt(self.inner.get(namespace, fingerprint))

    def put(self, namespace: str, fingerprint: str, payload: Any) -> None:
        self.injector.perturb()
        self.inner.put(namespace, fingerprint, payload)

    def stats(self) -> dict[str, Any]:
        stats = dict(self.inner.stats())
        stats["faults"] = self.injector.counters()
        return stats

    def live_stats(self) -> dict[str, Any]:
        stats = dict(self.inner.live_stats())
        stats["faults"] = self.injector.counters()
        return stats


def wrap_store(store: ResultStore | None,
               plan: FaultPlan | None) -> tuple[ResultStore | None, FaultInjector | None]:
    """Apply ``plan`` to ``store``; identity when either is absent/inactive."""
    if store is None or plan is None or not plan.active:
        return store, None
    faulty = FaultyStore(store, plan)
    return faulty, faulty.injector
