"""A thin stdlib client for the ``repro serve`` HTTP API.

Mirrors the service/client split of heavyweight-pipeline REST services: the
server owns execution, the client owns patience.  :class:`ReproClient`
submits scenarios (sync or async), polls job state with backoff, streams
SSE progress, and retries transient transport failures (connection refused,
5xx, 429-with-``Retry-After``) a bounded number of times.

POST retries are safe by construction: ``/v1/experiments`` is
content-addressed and single-flight, so re-submitting a scenario never
duplicates work.

Quickstart::

    from repro.client import ReproClient
    client = ReproClient("http://127.0.0.1:8765")
    submitted = client.submit(scenario_data)         # 202 + job handle
    job = client.wait(submitted.fingerprint)          # poll to terminal
    envelope, etag = client.result(submitted.fingerprint)
"""

from __future__ import annotations

import json
import logging
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Iterator

from repro.store.jobs import TERMINAL_STATES

logger = logging.getLogger(__name__)

#: HTTP statuses worth retrying: the request may succeed on a healthier
#: replica or after the transient condition clears.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


class ServeError(RuntimeError):
    """A non-2xx response that survived the client's retry budget."""

    def __init__(self, status: int, message: str,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


@dataclass(slots=True)
class Submitted:
    """Outcome of one submit: either an envelope (hit / sync) or a job."""

    fingerprint: str
    envelope: dict[str, Any] | None
    job: dict[str, Any] | None
    cache: str | None
    etag: str | None

    @property
    def completed(self) -> bool:
        return self.envelope is not None


class ReproClient:
    """Blocking client with bounded retry/backoff around ``repro serve``."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff: float = 0.2,
                 poll_interval: float = 0.2):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.poll_interval = poll_interval

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str, body: bytes | None = None,
                 headers: dict[str, str] | None = None,
                 retry: bool = True) -> tuple[int, dict[str, str], Any]:
        """One logical request: returns ``(status, headers, json payload)``.

        Transport errors and retryable statuses are retried with linear
        backoff (honouring ``Retry-After`` when the server sent one) up to
        the retry budget; whatever happens last is raised or returned.
        """
        attempts = (self.retries if retry else 0) + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._delay(attempt, last_error))
            request = urllib.request.Request(
                self.base_url + path, data=body, method=method,
                headers={"Content-Type": "application/json",
                         **(headers or {})})
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    return (response.status, dict(response.headers),
                            self._decode(response.read()))
            except urllib.error.HTTPError as error:
                payload = self._decode(error.read())
                if error.code in RETRYABLE_STATUSES and attempt < attempts - 1:
                    last_error = error
                    logger.debug("retrying %s %s after HTTP %s",
                                 method, path, error.code)
                    continue
                message = (payload or {}).get("error", error.reason) \
                    if isinstance(payload, dict) else str(error.reason)
                raise ServeError(error.code, str(message),
                                 payload if isinstance(payload, dict)
                                 else None) from error
            except urllib.error.URLError as error:
                if attempt < attempts - 1:
                    last_error = error
                    logger.debug("retrying %s %s after %s", method, path, error)
                    continue
                raise ServeError(0, f"transport failure: {error.reason}") \
                    from error
        raise AssertionError("unreachable")  # pragma: no cover

    def _delay(self, attempt: int, last_error: Exception | None) -> float:
        if isinstance(last_error, urllib.error.HTTPError):
            retry_after = last_error.headers.get("Retry-After")
            if retry_after:
                try:
                    return max(float(retry_after), self.backoff)
                except ValueError:
                    pass
        return self.backoff * attempt

    @staticmethod
    def _decode(raw: bytes) -> Any:
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None

    # ------------------------------------------------------------- API calls

    def submit(self, scenario_data: dict[str, Any], wait: bool = False,
               timeout: float | None = None) -> Submitted:
        """POST a scenario.  Async by default (202 + job handle); ``wait``
        blocks server-side until the job is terminal."""
        path = "/v1/experiments"
        if wait:
            path += "?wait=1"
            if timeout is not None:
                path += f"&timeout={timeout:g}"
        body = json.dumps(scenario_data).encode("utf-8")
        status, headers, payload = self._request("POST", path, body=body)
        fingerprint = headers.get("X-Repro-Fingerprint", "")
        if status == 202:
            return Submitted(fingerprint=payload.get("fingerprint", fingerprint),
                             envelope=None, job=payload,
                             cache=None, etag=None)
        return Submitted(fingerprint=fingerprint, envelope=payload, job=None,
                         cache=headers.get("X-Repro-Cache"),
                         etag=headers.get("ETag"))

    def job(self, fingerprint: str) -> dict[str, Any]:
        """GET the job's current state."""
        _status, _headers, payload = self._request(
            "GET", f"/v1/jobs/{fingerprint}")
        return payload

    def wait(self, fingerprint: str,
             timeout: float | None = None) -> dict[str, Any]:
        """Poll the job until it is terminal (client-side, with backoff).

        Raises :class:`TimeoutError` if ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = self.poll_interval
        while True:
            payload = self.job(fingerprint)
            if payload.get("state") in TERMINAL_STATES:
                return payload
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {fingerprint[:16]} still {payload.get('state')!r} "
                    f"after {timeout:g}s")
            time.sleep(interval)
            interval = min(interval * 1.5, 2.0)

    def cancel(self, fingerprint: str) -> dict[str, Any]:
        """DELETE (cancel) a queued job."""
        _status, _headers, payload = self._request(
            "DELETE", f"/v1/jobs/{fingerprint}", retry=False)
        return payload

    def result(self, fingerprint: str,
               etag: str | None = None) -> tuple[dict[str, Any] | None, str | None]:
        """GET the cached envelope; ``(None, etag)`` on a 304 revalidation."""
        headers = {"If-None-Match": etag} if etag else None
        try:
            _status, response_headers, payload = self._request(
                "GET", f"/v1/experiments/{fingerprint}", headers=headers)
        except ServeError as error:
            if error.status == 304:
                return None, etag
            raise
        return payload, response_headers.get("ETag")

    def stream(self, fingerprint: str) -> Iterator[dict[str, Any]]:
        """Iterate the job's SSE progress events until it is terminal."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{fingerprint}/events")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            for line in response:
                line = line.strip()
                if line.startswith(b"data: "):
                    yield json.loads(line[len(b"data: "):].decode("utf-8"))

    def trace(self, fingerprint: str) -> dict[str, Any]:
        """GET the completed job's span tree (``repro.obstrace/v1``)."""
        _status, _headers, payload = self._request(
            "GET", f"/v1/jobs/{fingerprint}/trace")
        return payload

    def metrics(self) -> str:
        """GET ``/v1/metrics`` as raw Prometheus text (not JSON)."""
        request = urllib.request.Request(self.base_url + "/v1/metrics")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServeError(error.code, str(error.reason)) from error
        except urllib.error.URLError as error:
            raise ServeError(0, f"transport failure: {error.reason}") \
                from error

    def health(self) -> dict[str, Any]:
        """GET ``/healthz`` (no retry — a probe should see degradation)."""
        try:
            _status, _headers, payload = self._request(
                "GET", "/healthz", retry=False)
        except ServeError as error:
            if error.payload:
                return error.payload
            raise
        return payload

    def info(self) -> dict[str, Any]:
        _status, _headers, payload = self._request("GET", "/")
        return payload
