"""Normalized result frames produced by the engine runner.

A :class:`ResultFrame` is an ordered collection of :class:`JobRecord` rows —
one per executed job — with helpers for the two aggregations every experiment
driver needs: pivoting a metric into a ``{workload: {model: value}}`` table
and normalizing it against a baseline model (the paper's "relative to
unprotected" series).  Frames serialize to JSON byte-for-byte
deterministically, which is how the tests pin parallel == serial.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.metrics import normalized as normalized_value


@dataclass(slots=True)
class JobRecord:
    """Outcome of one job: scalar metrics plus an optional structured payload.

    ``seconds`` is the wall-clock time the job took in whatever process ran
    it.  It is excluded from comparison and from :meth:`to_dict` — timings
    vary run to run, and serialized frames must stay byte-identical between
    serial and parallel executions of the same grid.
    """

    index: int
    kind: str
    model: str
    workload: str
    metrics: dict[str, float] = field(default_factory=dict)
    payload: Any = None
    seconds: float = field(default=0.0, compare=False)

    def to_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "index": self.index,
            "kind": self.kind,
            "model": self.model,
            "workload": self.workload,
            "metrics": dict(self.metrics),
        }
        if self.payload is not None:
            row["payload"] = self.payload
        return row

    @classmethod
    def from_dict(cls, data: dict[str, Any], index: int | None = None) -> "JobRecord":
        """Rebuild a record from its :meth:`to_dict` form.

        ``index`` overrides the stored position: a cached record slots into
        whatever grid cell requested it, so its original index is irrelevant.
        ``seconds`` restarts at zero — wall-clock is a property of a run, not
        of a result, and serialized frames never carry it anyway.
        """
        return cls(
            index=int(data["index"] if index is None else index),
            kind=data["kind"],
            model=data["model"],
            workload=data["workload"],
            metrics={str(key): float(value)
                     for key, value in data.get("metrics", {}).items()},
            payload=data.get("payload"),
        )


class ResultFrame:
    """Ordered job records with pivot/normalize/JSON-export helpers."""

    def __init__(self, records: Iterable[JobRecord]):
        self.records = sorted(records, key=lambda record: record.index)
        self._by_cell: dict[tuple[str, str], JobRecord] = {}
        for record in self.records:
            key = (record.model, record.workload)
            if key in self._by_cell:
                raise ValueError(
                    f"duplicate result cell model={record.model!r} "
                    f"workload={record.workload!r}; give the model specs "
                    "distinct labels"
                )
            self._by_cell[key] = record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def models(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.model and record.model not in seen:
                seen.append(record.model)
        return seen

    def workloads(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.workload and record.workload not in seen:
                seen.append(record.workload)
        return seen

    def record(self, model: str, workload: str) -> JobRecord:
        try:
            return self._by_cell[(model, workload)]
        except KeyError:
            raise KeyError(
                f"no record for model={model!r} workload={workload!r}"
            ) from None

    def metric(self, model: str, workload: str, key: str, default: float = 0.0) -> float:
        return self.record(model, workload).metrics.get(key, default)

    def pivot(self, key: str) -> dict[str, dict[str, float]]:
        """``{workload: {model: metrics[key]}}`` over every record carrying it."""
        table: dict[str, dict[str, float]] = {}
        for record in self.records:
            if key in record.metrics:
                table.setdefault(record.workload, {})[record.model] = record.metrics[key]
        return table

    def normalized(self, key: str, baseline_model: str) -> dict[str, dict[str, float]]:
        """Pivot of ``metrics[key]`` divided by the baseline model's value
        for the same workload (baseline column becomes 1.0).

        Raises:
            KeyError: If ``baseline_model`` has no record for some workload —
                a typo'd baseline would otherwise normalize everything to 0.0
                silently.
        """
        table = self.pivot(key)
        result: dict[str, dict[str, float]] = {}
        for workload, row in table.items():
            if baseline_model not in row:
                raise KeyError(
                    f"baseline model {baseline_model!r} has no {key!r} record "
                    f"for workload {workload!r}; models present: {sorted(row)}"
                )
            baseline = row[baseline_model]
            result[workload] = {
                model: normalized_value(value, baseline) for model, value in row.items()
            }
        return result

    def to_dict(self) -> dict[str, Any]:
        return {"records": [record.to_dict() for record in self.records]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
