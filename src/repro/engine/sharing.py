"""Zero-copy trace shipping between the runner and its worker processes.

With the ``fork`` start method, worker processes inherit the parent's trace
cache for free.  Everywhere else (``spawn`` platforms, or pools started with
an explicit ``start_method="spawn"``) every job used to re-generate its trace
from scratch inside the worker.  This module instead packs the *columnar*
form of each distinct trace — the ndarrays the vector backend replays plus a
compact event/segment table — into one :mod:`multiprocessing.shared_memory`
block.  Workers attach the block and map the arrays in place (no copy, no
pickle of per-branch objects) and install :class:`SharedTrace` objects into
their local trace cache.

A :class:`SharedTrace` satisfies every consumer of a real
:class:`~repro.trace.branch.Trace`: the vector backend reads the mapped
arrays directly, while the scalar replay paths (and SMT trace merging)
materialise :class:`~repro.trace.branch.BranchRecord` objects lazily from the
same arrays — bit-identical to the generator's output, paid only when a
scalar path actually runs.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.engine.workloads import TraceKey, install_trace, register_trace_source
from repro.trace.branch import (
    BRANCH_TYPES_BY_CODE,
    BranchRecord,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceArrays,
    TraceEvent,
)

_EVENT_KINDS = tuple(EventKind)
_EVENT_CODE = {kind: code for code, kind in enumerate(_EVENT_KINDS)}
#: Segment sentinel for the final (event-less) run.
_NO_EVENT = -1

#: Column name -> dtype of the shipped per-branch arrays.
_BRANCH_COLUMNS = (
    ("ips", np.uint64),
    ("targets", np.uint64),
    ("takens", np.bool_),
    ("types", np.uint8),
    ("context_ids", np.int64),
    ("kernel_modes", np.bool_),
)

#: Per-segment columns: branch run bounds plus the trailing event (if any).
_SEGMENT_COLUMNS = (
    ("seg_starts", np.int64),
    ("seg_stops", np.int64),
    ("event_kinds", np.int64),
    ("event_contexts", np.int64),
)


class SharedColumns:
    """Columnar trace view backed by shared memory (duck-types ``TraceColumns``).

    The ndarray view is zero-copy; the scalar-path list columns and the
    :class:`BranchRecord` list materialise lazily on first access.
    """

    def __init__(self, item_count: int, arrays: TraceArrays,
                 segments: list[tuple[int, int, TraceEvent | None]]):
        self.item_count = item_count
        self.segments = segments
        self._trace_arrays = arrays
        self._branches: list[BranchRecord] | None = None
        self._lists: dict[str, list] = {}

    def arrays(self) -> TraceArrays:
        return self._trace_arrays

    @property
    def branches(self) -> list[BranchRecord]:
        if self._branches is None:
            arrays = self._trace_arrays
            types = [BRANCH_TYPES_BY_CODE[code] for code in arrays.types.tolist()]
            modes = [PrivilegeMode.KERNEL if kernel else PrivilegeMode.USER
                     for kernel in arrays.kernel_modes.tolist()]
            self._branches = [
                BranchRecord(ip=ip, target=target, taken=taken, branch_type=kind,
                             context_id=context, mode=mode)
                for ip, target, taken, kind, context, mode in zip(
                    arrays.ips.tolist(), arrays.targets.tolist(),
                    arrays.takens.tolist(), types,
                    arrays.context_ids.tolist(), modes)
            ]
        return self._branches

    def _list(self, name: str, build) -> list:
        values = self._lists.get(name)
        if values is None:
            values = build()
            self._lists[name] = values
        return values

    @property
    def ips(self) -> list[int]:
        return self._list("ips", self._trace_arrays.ips.tolist)

    @property
    def targets(self) -> list[int]:
        return self._list("targets", self._trace_arrays.targets.tolist)

    @property
    def takens(self) -> list[bool]:
        return self._list("takens", self._trace_arrays.takens.tolist)

    @property
    def conditionals(self) -> list[bool]:
        return self._list("conditionals",
                          lambda: (self._trace_arrays.types == 0).tolist())

    @property
    def context_ids(self) -> list[int]:
        return self._list("context_ids", self._trace_arrays.context_ids.tolist)


class SharedTrace(Trace):
    """A trace reconstructed from a shipment; items materialise lazily."""

    def __init__(self, name: str, columns: SharedColumns):
        super().__init__(items=[], name=name)
        self._shared = columns

    def columns(self) -> SharedColumns:  # type: ignore[override]
        return self._shared

    def _materialize(self) -> list:
        if not self.items:
            shared = self._shared
            items: list = []
            for start, stop, event in shared.segments:
                items.extend(shared.branches[start:stop])
                if event is not None:
                    items.append(event)
            self.items = items
        return self.items

    def __len__(self) -> int:
        return self._shared.item_count

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index: int):
        return self._materialize()[index]

    def branches(self):
        return iter(self._shared.branches)

    def events(self):
        return iter(event for _, _, event in self._shared.segments
                    if event is not None)


def _segment_table(columns) -> dict[str, np.ndarray]:
    starts, stops, kinds, contexts = [], [], [], []
    for start, stop, event in columns.segments:
        starts.append(start)
        stops.append(stop)
        kinds.append(_NO_EVENT if event is None else _EVENT_CODE[event.kind])
        contexts.append(0 if event is None else event.context_id)
    return {
        "seg_starts": np.array(starts, dtype=np.int64),
        "seg_stops": np.array(stops, dtype=np.int64),
        "event_kinds": np.array(kinds, dtype=np.int64),
        "event_contexts": np.array(contexts, dtype=np.int64),
    }


class TraceShipment:
    """Parent-side packer: distinct traces -> one shared-memory block.

    The descriptor (block name + per-trace array offsets) is tiny and travels
    to workers by pickle; the branch data itself never does.
    """

    def __init__(self, traces: dict[TraceKey, Trace]):
        plans: list[tuple[TraceKey, int, dict[str, np.ndarray]]] = []
        offset = 0
        layout: dict = {}
        for key, trace in traces.items():
            columns = trace.columns()
            arrays = columns.arrays()
            table = _segment_table(columns)
            named = {name: np.ascontiguousarray(getattr(arrays, name))
                     for name, _ in _BRANCH_COLUMNS}
            named.update(table)
            plan: dict[str, tuple[int, str, int]] = {}
            for name, array in named.items():
                plan[name] = (offset, array.dtype.str, array.shape[0])
                offset += array.nbytes
            layout[key] = {"item_count": columns.item_count, "arrays": plan}
            plans.append((key, columns.item_count, named))
        self._shm = None
        if offset:
            self._shm = shared_memory.SharedMemory(create=True, size=offset)
            buffer = self._shm.buf
            for key, _, named in plans:
                for name, array in named.items():
                    start, _, length = layout[key]["arrays"][name]
                    view = np.ndarray((length,), dtype=array.dtype,
                                      buffer=buffer, offset=start)
                    view[:] = array
        self.descriptor = {
            "block": self._shm.name if self._shm is not None else None,
            "traces": layout,
        }

    def close(self) -> None:
        """Release and remove the block (parent side, after the pool exits)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already removed
                pass
            self._shm = None


_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


#: Specs of every attached shipment, keyed by trace key — the cache-miss
#: resolver rebuilds evicted SharedTraces from these mapped blocks.
_SHARED_SPECS: dict[TraceKey, tuple[shared_memory.SharedMemory, dict]] = {}


def _build_shared_trace(shm: shared_memory.SharedMemory, key: TraceKey,
                        spec: dict) -> SharedTrace:
    plan = spec["arrays"]
    mapped = {
        name: np.ndarray((plan[name][2],), dtype=np.dtype(plan[name][1]),
                         buffer=shm.buf, offset=plan[name][0])
        for name, _ in _BRANCH_COLUMNS + _SEGMENT_COLUMNS
    }
    arrays = TraceArrays(
        ips=mapped["ips"], targets=mapped["targets"], takens=mapped["takens"],
        types=mapped["types"], context_ids=mapped["context_ids"],
        kernel_modes=mapped["kernel_modes"],
    )
    segments: list[tuple[int, int, TraceEvent | None]] = []
    for start, stop, kind, context in zip(
            mapped["seg_starts"].tolist(), mapped["seg_stops"].tolist(),
            mapped["event_kinds"].tolist(), mapped["event_contexts"].tolist()):
        event = (None if kind == _NO_EVENT
                 else TraceEvent(_EVENT_KINDS[kind], context_id=context))
        segments.append((start, stop, event))
    return SharedTrace(key[0], SharedColumns(spec["item_count"], arrays, segments))


def _shared_trace_source(key: TraceKey) -> SharedTrace | None:
    """Cache-miss resolver: re-materialise an evicted trace from its block."""
    entry = _SHARED_SPECS.get(key)
    if entry is None:
        return None
    return _build_shared_trace(entry[0], key, entry[1])


register_trace_source(_shared_trace_source)


def attach_shipment(descriptor: dict) -> int:
    """Worker-side: map a shipment and install its traces into the cache.

    Safe to call repeatedly with the same descriptor (one mapping per block
    per process).  Every shipped key is also recorded as a cache-miss source,
    so traces evicted from the bounded LRU later re-materialise from the
    mapped arrays (cheap wrappers) instead of being re-generated.  Returns
    the number of traces installed into the cache.
    """
    block = descriptor["block"]
    if block is None:
        return 0
    installed = 0
    shm = _ATTACHED.get(block)
    first_attach = shm is None
    if first_attach:
        # Workers share the parent's resource tracker on POSIX, so attaching
        # simply re-registers the same name — the parent's unlink remains the
        # single point of removal.
        shm = shared_memory.SharedMemory(name=block)
        _ATTACHED[block] = shm
    for key, spec in descriptor["traces"].items():
        _SHARED_SPECS[key] = (shm, spec)
        if first_attach:
            install_trace(key, _build_shared_trace(shm, key, spec))
            installed += 1
    return installed
