"""Unified simulation engine.

The engine turns the repository's evaluation into a declarative pipeline:

* :mod:`repro.engine.registry` — models addressable by string name
  (``"baseline"``, ``"ST_SKLCond"``, ...) with seed/monitor knobs,
* :mod:`repro.engine.workloads` — workload name resolution plus the shared
  memoised trace cache,
* :mod:`repro.engine.grid` — :class:`SimulationGrid` declarations expanding
  (models × workloads × scale) into deterministic :class:`Job` lists,
* :mod:`repro.engine.runner` — :class:`EngineRunner`, executing job lists
  serially or on a :class:`~concurrent.futures.ProcessPoolExecutor` with
  bit-identical results either way,
* :mod:`repro.engine.results` — normalized :class:`ResultFrame` records
  (baseline-relative OAE / IPC) with JSON export,
* :mod:`repro.engine.spec` — :class:`ExperimentSpec` declarations and the
  experiment registry: every figure/table registers its job builder,
  post-processor, formatter, serializer, CLI options, and result schema,
* :mod:`repro.engine.scenario` — user-authored JSON/TOML scenario files
  (models × workloads × kind × params) validated against the registries and
  runnable with zero code.

All experiment drivers (``repro.experiments.figure2`` .. ``tables``) and the
``python -m repro`` CLI are thin declarations on top of this package; the
CLI's subcommands and help text are generated from the experiment registry.
"""

from repro.engine.grid import (
    SCALE_PRESETS,
    ExperimentScale,
    Job,
    SimulationGrid,
    derive_job_seed,
)
from repro.engine.registry import (
    ModelSpec,
    build_model,
    list_models,
    model_factory,
    register_model,
)
from repro.engine.results import JobRecord, ResultFrame
from repro.engine.runner import (
    DEFAULT_ATTACK_PARAMS,
    EngineRunner,
    attack_names,
    execute_job,
    execute_job_batch,
    job_batches,
)
from repro.engine.scenario import (
    SCENARIO_SCHEMA,
    Scenario,
    ScenarioResult,
    format_scenario,
    load_scenario,
    parse_scenario,
    run_scenario,
    scenario_envelope,
)
from repro.engine.spec import (
    SCALE_OPTIONS,
    ExperimentSpec,
    Option,
    build_scale,
    experiment_spec,
    list_experiments,
    load_builtin_specs,
    register_experiment,
    run_experiment,
)
from repro.engine.workloads import (
    TraceCache,
    clear_trace_cache,
    install_trace,
    resolve_smt_pairs,
    resolve_workloads,
    trace_cache_stats,
    trace_for,
)

__all__ = [
    "SCALE_PRESETS",
    "ExperimentScale",
    "Job",
    "SimulationGrid",
    "derive_job_seed",
    "ModelSpec",
    "build_model",
    "list_models",
    "model_factory",
    "register_model",
    "JobRecord",
    "ResultFrame",
    "DEFAULT_ATTACK_PARAMS",
    "EngineRunner",
    "attack_names",
    "execute_job",
    "execute_job_batch",
    "job_batches",
    "SCENARIO_SCHEMA",
    "Scenario",
    "ScenarioResult",
    "format_scenario",
    "load_scenario",
    "parse_scenario",
    "run_scenario",
    "scenario_envelope",
    "SCALE_OPTIONS",
    "ExperimentSpec",
    "Option",
    "build_scale",
    "experiment_spec",
    "list_experiments",
    "load_builtin_specs",
    "register_experiment",
    "run_experiment",
    "TraceCache",
    "clear_trace_cache",
    "install_trace",
    "resolve_smt_pairs",
    "resolve_workloads",
    "trace_cache_stats",
    "trace_for",
]
