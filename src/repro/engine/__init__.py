"""Unified simulation engine.

The engine turns the repository's evaluation into a declarative pipeline:

* :mod:`repro.engine.registry` — models addressable by string name
  (``"baseline"``, ``"ST_SKLCond"``, ...) with seed/monitor knobs,
* :mod:`repro.engine.workloads` — workload name resolution plus the shared
  memoised trace cache,
* :mod:`repro.engine.grid` — :class:`SimulationGrid` declarations expanding
  (models × workloads × scale) into deterministic :class:`Job` lists,
* :mod:`repro.engine.runner` — :class:`EngineRunner`, executing job lists
  serially or on a :class:`~concurrent.futures.ProcessPoolExecutor` with
  bit-identical results either way,
* :mod:`repro.engine.results` — normalized :class:`ResultFrame` records
  (baseline-relative OAE / IPC) with JSON export.

All experiment drivers (``repro.experiments.figure2`` .. ``tables``) and the
``python -m repro`` CLI are thin declarations on top of this package.
"""

from repro.engine.grid import ExperimentScale, Job, SimulationGrid, derive_job_seed
from repro.engine.registry import (
    ModelSpec,
    build_model,
    list_models,
    model_factory,
    register_model,
)
from repro.engine.results import JobRecord, ResultFrame
from repro.engine.runner import EngineRunner, attack_names, execute_job
from repro.engine.workloads import (
    clear_trace_cache,
    resolve_smt_pairs,
    resolve_workloads,
    trace_for,
)

__all__ = [
    "ExperimentScale",
    "Job",
    "SimulationGrid",
    "derive_job_seed",
    "ModelSpec",
    "build_model",
    "list_models",
    "model_factory",
    "register_model",
    "JobRecord",
    "ResultFrame",
    "EngineRunner",
    "attack_names",
    "execute_job",
    "clear_trace_cache",
    "resolve_smt_pairs",
    "resolve_workloads",
    "trace_for",
]
