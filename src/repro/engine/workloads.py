"""Workload registry and the shared, memoised trace cache.

Workloads are addressable by name (``"505.mcf"``), by category
(``"spec"``, ``"application"``, ``"all"``) or by the paper's curated sets
(``"gem5-single"``, ``"gem5-smt"`` for SMT pairs).  The trace cache memoises
synthetic traces per ``(workload, branch_count, seed)`` so that every job in a
grid — and every driver in a session — replays the identical trace object.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.trace.branch import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import (
    GEM5_SINGLE_WORKLOADS,
    GEM5_SMT_PAIRS,
    get_workload,
    list_workloads,
)

#: A single workload name or an SMT pair of names.
WorkloadKey = str | tuple[str, str]

#: Named workload groups resolvable in grid declarations and on the CLI.
WORKLOAD_GROUPS: dict[str, tuple[str, ...]] = {
    "gem5-single": GEM5_SINGLE_WORKLOADS,
}

_TRACE_CACHE: dict[tuple[str, int, int], Trace] = {}


def trace_for(name: str, branch_count: int, seed: int) -> Trace:
    """Generate (and memoise) the synthetic trace for one workload."""
    key = (name, branch_count, seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(name, seed=seed, branch_count=branch_count)
    return _TRACE_CACHE[key]


def clear_trace_cache() -> None:
    """Drop memoised traces (used by tests that tune generation parameters)."""
    _TRACE_CACHE.clear()


def resolve_workloads(selection: str | Iterable[str] | None = None) -> list[str]:
    """Expand a workload selection into a list of concrete workload names.

    ``None``/``"all"`` resolve to every workload; ``"spec"`` and
    ``"application"`` filter by category; group names from
    :data:`WORKLOAD_GROUPS` expand to their members; anything else must be a
    known workload name (validated, with a helpful error otherwise).
    Overlapping selections (``all spec``, a name listed twice) are deduplicated
    keeping first-occurrence order, so a grid never runs the same cell twice.
    """
    if selection is None:
        return list_workloads()
    if isinstance(selection, str):
        selection = [selection]
    names: list[str] = []
    for entry in selection:
        if entry == "all":
            names.extend(list_workloads())
        elif entry in ("spec", "application"):
            names.extend(list_workloads(entry))
        elif entry in WORKLOAD_GROUPS:
            names.extend(WORKLOAD_GROUPS[entry])
        else:
            names.append(get_workload(entry).name)
    return list(dict.fromkeys(names))


def resolve_smt_pairs(
    selection: str | Sequence[tuple[str, str] | str] | None = None,
) -> list[tuple[str, str]]:
    """Expand an SMT pair selection into ``(workload_a, workload_b)`` tuples.

    ``None``/``"gem5-smt"`` resolve to the paper's 31 Figure 5 pairs; strings
    of the form ``"a+b"`` name one explicit pair.
    """
    if selection is None or selection == "gem5-smt":
        return list(GEM5_SMT_PAIRS)
    if isinstance(selection, str):
        selection = [selection]
    pairs: list[tuple[str, str]] = []
    for entry in selection:
        if isinstance(entry, str):
            if entry == "gem5-smt":
                pairs.extend(GEM5_SMT_PAIRS)
                continue
            left, separator, right = entry.partition("+")
            if not separator:
                raise ValueError(
                    f"SMT pair {entry!r} must be written as 'workload_a+workload_b'"
                )
            entry = (left, right)
        workload_a, workload_b = entry
        pairs.append((get_workload(workload_a).name, get_workload(workload_b).name))
    return pairs


def workload_label(workload: WorkloadKey) -> str:
    """Canonical display label: the name itself, or ``a+b`` for SMT pairs."""
    if isinstance(workload, tuple):
        return "+".join(workload)
    return workload
