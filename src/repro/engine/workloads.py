"""Workload registry and the shared, bounded trace cache.

Workloads are addressable by name (``"505.mcf"``), by category
(``"spec"``, ``"application"``, ``"all"``) or by the paper's curated sets
(``"gem5-single"``, ``"gem5-smt"`` for SMT pairs).  The trace cache memoises
synthetic traces per ``(workload, branch_count, seed)`` so that every job in a
grid — and every driver in a session — replays the identical trace object.
The cache is a capped LRU: grids expand workload-major, so consecutive jobs
reuse the hot entry while million-job scenario sweeps can no longer grow
memory without bound.  Hit/miss counters are exposed for the bench report
(:func:`trace_cache_stats`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.obs import metrics as obs_metrics
from repro.trace.branch import Trace
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import (
    GEM5_SINGLE_WORKLOADS,
    GEM5_SMT_PAIRS,
    get_workload,
    list_workloads,
)

#: A single workload name or an SMT pair of names.
WorkloadKey = str | tuple[str, str]

#: Named workload groups resolvable in grid declarations and on the CLI.
WORKLOAD_GROUPS: dict[str, tuple[str, ...]] = {
    "gem5-single": GEM5_SINGLE_WORKLOADS,
}

#: Default bound of the trace cache, in traces.  Grids expand workload-major,
#: so this comfortably covers every built-in grid's distinct traces while
#: bounding unbounded sweeps.
TRACE_CACHE_CAPACITY = 64

TraceKey = tuple[str, int, int]


class TraceCache:
    """LRU-bounded memoisation of synthetic traces with hit/miss counters."""

    def __init__(self, capacity: int = TRACE_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[TraceKey, Trace] = OrderedDict()

    def get(self, key: TraceKey) -> Trace | None:
        trace = self._entries.get(key)
        if trace is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return trace

    def put(self, key: TraceKey, trace: Trace) -> None:
        entries = self._entries
        entries[key] = trace
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_TRACE_CACHE = TraceCache()


def _bridge_trace_cache() -> None:
    """Refresh the registry's trace-cache series from the LRU's counters;
    registered below so every ``/v1/metrics`` scrape reads live values."""
    stats = _TRACE_CACHE.stats()
    obs_metrics.set_counter("repro_trace_cache_hits_total", stats["hits"])
    obs_metrics.set_counter("repro_trace_cache_misses_total",
                            stats["misses"])
    obs_metrics.set_counter("repro_trace_cache_evictions_total",
                            stats["evictions"])
    obs_metrics.set_gauge("repro_trace_cache_entries", stats["size"])


obs_metrics.register_callback(_bridge_trace_cache)

#: Cache-miss resolvers consulted before falling back to synthetic
#: generation.  Shared-memory shipments register one so traces evicted from
#: the bounded cache re-materialise from the mapped arrays (cheap) instead of
#: being re-generated (expensive).
_TRACE_SOURCES: list = []


def register_trace_source(source) -> None:
    """Add a ``key -> Trace | None`` resolver tried on every cache miss."""
    if source not in _TRACE_SOURCES:
        _TRACE_SOURCES.append(source)


def trace_for(name: str, branch_count: int, seed: int) -> Trace:
    """Return (memoised) the synthetic trace for one workload.

    Cache misses first consult the registered trace sources (shared-memory
    shipments in worker processes), then the deterministic generator.
    """
    key = (name, branch_count, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        for source in _TRACE_SOURCES:
            trace = source(key)
            if trace is not None:
                break
        if trace is None:
            trace = generate_trace(name, seed=seed, branch_count=branch_count)
        _TRACE_CACHE.put(key, trace)
    return trace


def install_trace(key: TraceKey, trace: Trace) -> None:
    """Pre-seed the cache (worker processes attach shipped traces this way)."""
    _TRACE_CACHE.put(key, trace)


def trace_cache_stats() -> dict[str, int]:
    """Current size/capacity and cumulative hit/miss/eviction counters."""
    return _TRACE_CACHE.stats()


def clear_trace_cache() -> None:
    """Drop memoised traces (used by tests that tune generation parameters)."""
    _TRACE_CACHE.clear()


def resolve_workloads(selection: str | Iterable[str] | None = None) -> list[str]:
    """Expand a workload selection into a list of concrete workload names.

    ``None``/``"all"`` resolve to every workload; ``"spec"`` and
    ``"application"`` filter by category; group names from
    :data:`WORKLOAD_GROUPS` expand to their members; anything else must be a
    known workload name (validated, with a helpful error otherwise).
    Overlapping selections (``all spec``, a name listed twice) are deduplicated
    keeping first-occurrence order, so a grid never runs the same cell twice.
    """
    if selection is None:
        return list_workloads()
    if isinstance(selection, str):
        selection = [selection]
    names: list[str] = []
    for entry in selection:
        if entry == "all":
            names.extend(list_workloads())
        elif entry in ("spec", "application"):
            names.extend(list_workloads(entry))
        elif entry in WORKLOAD_GROUPS:
            names.extend(WORKLOAD_GROUPS[entry])
        else:
            names.append(get_workload(entry).name)
    return list(dict.fromkeys(names))


def resolve_smt_pairs(
    selection: str | Sequence[tuple[str, str] | str] | None = None,
) -> list[tuple[str, str]]:
    """Expand an SMT pair selection into ``(workload_a, workload_b)`` tuples.

    ``None``/``"gem5-smt"`` resolve to the paper's 31 Figure 5 pairs; strings
    of the form ``"a+b"`` name one explicit pair.
    """
    if selection is None or selection == "gem5-smt":
        return list(GEM5_SMT_PAIRS)
    if isinstance(selection, str):
        selection = [selection]
    pairs: list[tuple[str, str]] = []
    for entry in selection:
        if isinstance(entry, str):
            if entry == "gem5-smt":
                pairs.extend(GEM5_SMT_PAIRS)
                continue
            left, separator, right = entry.partition("+")
            if not separator:
                raise ValueError(
                    f"SMT pair {entry!r} must be written as 'workload_a+workload_b'"
                )
            entry = (left, right)
        workload_a, workload_b = entry
        pairs.append((get_workload(workload_a).name, get_workload(workload_b).name))
    return pairs


def workload_label(workload: WorkloadKey) -> str:
    """Canonical display label: the name itself, or ``a+b`` for SMT pairs."""
    if isinstance(workload, tuple):
        return "+".join(workload)
    return workload
