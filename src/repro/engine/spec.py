"""Declarative experiment specs: scenarios as data, addressable by name.

An :class:`ExperimentSpec` describes one experiment completely — how to build
its job list, how to turn the executed :class:`~repro.engine.results.ResultFrame`
back into a result object, how to render that result as text and as JSON, the
CLI options it accepts, its default seed, and a versioned result schema.
Specs register under the name the paper's figures use
(:func:`register_experiment`), which is what lets the ``python -m repro`` CLI,
the docs table, and scenario files all generate themselves from one source of
truth instead of one hand-written driver + argparse block per experiment.

Two execution shapes are supported:

* grid/job-list experiments declare ``build_jobs`` + ``post_process`` and run
  through :class:`~repro.engine.runner.EngineRunner` (streaming, parallel);
* irregular experiments (the bench, registry listings) declare a custom
  ``execute`` callable instead.

:func:`run_experiment` is the single entry point either way.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.grid import SCALE_PRESETS, ExperimentScale, Job
from repro.engine.results import ResultFrame
from repro.engine.runner import EngineRunner, ProgressCallback


@dataclass(frozen=True, slots=True)
class Option:
    """One CLI option / scenario parameter an experiment accepts.

    ``flag`` is the option name without leading dashes (``"workload-limit"``);
    the parameter key (and argparse dest) is the flag with dashes replaced by
    underscores.
    """

    flag: str
    type: Callable[[str], Any] | None = None
    default: Any = None
    nargs: int | str | None = None
    choices: tuple[Any, ...] | None = None
    action: str | None = None
    metavar: str | None = None
    help: str = ""

    @property
    def dest(self) -> str:
        return self.flag.replace("-", "_")


#: Shared fidelity options every scale-driven experiment accepts.
SCALE_OPTIONS: tuple[Option, ...] = (
    Option("scale", choices=tuple(sorted(SCALE_PRESETS)), default="default",
           help="fidelity preset"),
    Option("seed", type=int, default=None, help="grid seed override"),
    Option("branches", type=int, default=None,
           help="override the preset's measured branch count"),
    Option("warmup", type=int, default=None,
           help="override the preset's warm-up branch count"),
    Option("workload-limit", type=int, default=None,
           help="truncate the workload list to the first N entries"),
)


def build_scale(params: dict[str, Any]) -> ExperimentScale:
    """Build an :class:`ExperimentScale` from merged experiment parameters.

    Starts from the ``SCALE_PRESETS`` entry named by ``params["scale"]`` and
    applies the individual overrides (``branches``, ``warmup``, ``seed``,
    ``workload_limit``) where given.
    """
    preset = SCALE_PRESETS[params.get("scale") or "default"]
    branches = params.get("branches")
    warmup = params.get("warmup")
    seed = params.get("seed")
    return ExperimentScale(
        branch_count=branches if branches is not None else preset.branch_count,
        warmup_branches=warmup if warmup is not None else preset.warmup_branches,
        seed=seed if seed is not None else preset.seed,
        workload_limit=params.get("workload_limit"),
    )


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """A complete, declarative description of one experiment.

    Attributes:
        name: Registry name; also the CLI subcommand.
        description: One-line summary (CLI help, docs table).
        kind: Dominant job kind (informational; ``"meta"`` for listings).
        schema_version: Version of the serialized result, rendered into the
            JSON envelope as ``repro.<name>/v<version>``.
        options: Experiment-specific options, beyond the shared ones.
        uses_scale: Whether the experiment accepts the shared fidelity
            options (:data:`SCALE_OPTIONS`).
        takes_workers: Whether the experiment runs engine jobs (and hence
            accepts ``--workers`` / ``--progress``).
        default_seed: Seed used when the caller passes none; uniform across
            the CLI, scenario files, and :func:`run_experiment`.
        build_jobs: ``params -> list[Job]`` for grid experiments.
        post_process: ``(frame, params) -> result`` for grid experiments.
        execute: ``(params, workers, progress) -> result`` for experiments
            that do not reduce to one job list (bench, listings); mutually
            exclusive with ``build_jobs``.
        formatter: ``result -> str`` text rendering.
        serializer: ``result -> payload`` for the JSON envelope; defaults to
            ``dataclasses.asdict`` for dataclass results and identity
            otherwise.
        note: ``params -> str | None`` advisory printed to stderr before the
            run (e.g. figure6's pair-limit note).
        epilogue: ``(result, params) -> str | None`` line printed after
            emission (e.g. the bench artifact path).
    """

    name: str
    description: str
    kind: str = "trace"
    schema_version: int = 1
    options: tuple[Option, ...] = ()
    uses_scale: bool = False
    takes_workers: bool = True
    default_seed: int | None = None
    build_jobs: Callable[[dict[str, Any]], list[Job]] | None = None
    post_process: Callable[[ResultFrame, dict[str, Any]], Any] | None = None
    execute: Callable[..., Any] | None = None
    formatter: Callable[[Any], str] = str
    serializer: Callable[[Any], Any] | None = None
    note: Callable[[dict[str, Any]], str | None] | None = None
    epilogue: Callable[[Any, dict[str, Any]], str | None] | None = None

    def __post_init__(self) -> None:
        if (self.build_jobs is None) == (self.execute is None):
            raise ValueError(
                f"experiment {self.name!r} must declare exactly one of "
                "build_jobs or execute"
            )
        if self.build_jobs is not None and self.post_process is None:
            raise ValueError(
                f"experiment {self.name!r} declares build_jobs without post_process"
            )

    @property
    def schema(self) -> str:
        """Versioned schema tag of the serialized result."""
        return f"repro.{self.name}/v{self.schema_version}"

    def cli_options(self) -> tuple[Option, ...]:
        """Every option the experiment accepts (shared scale group first)."""
        return (SCALE_OPTIONS if self.uses_scale else ()) + self.options

    def merged_params(self, params: dict[str, Any] | None = None) -> dict[str, Any]:
        """Fill option defaults, apply the spec's default seed, reject unknowns."""
        known = {option.dest: option for option in self.cli_options()}
        merged = {dest: option.default for dest, option in known.items()}
        for key, value in (params or {}).items():
            if key not in known:
                raise ValueError(
                    f"experiment {self.name!r} does not accept parameter {key!r}; "
                    f"known parameters: {', '.join(sorted(known)) or '(none)'}"
                )
            merged[key] = value
        if "seed" in merged and merged["seed"] is None:
            merged["seed"] = self.default_seed
        return merged

    def serialize(self, result: Any) -> dict[str, Any]:
        """Wrap the result payload in the versioned JSON envelope."""
        if self.serializer is not None:
            payload = self.serializer(result)
        elif dataclasses.is_dataclass(result) and not isinstance(result, type):
            payload = dataclasses.asdict(result)
        else:
            payload = result
        return {"schema": self.schema, "spec": self.name, "result": payload}


_EXPERIMENTS: dict[str, ExperimentSpec] = {}

#: Modules whose import registers every built-in spec.  Loaded lazily so that
#: importing :mod:`repro.engine` alone does not pull the experiment drivers in.
_BUILTIN_SPEC_MODULES: tuple[str, ...] = ("repro.experiments", "repro.bench")


def register_experiment(spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
    """Register ``spec`` under its name; refuses silent overwrites."""
    if spec.name in _EXPERIMENTS and not replace:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    _EXPERIMENTS[spec.name] = spec
    return spec


def experiment_spec(name: str) -> ExperimentSpec:
    """Look up a registered spec by name (with a helpful error)."""
    load_builtin_specs()
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(_EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {name!r}; registered experiments: {known}"
        ) from None


def list_experiments() -> list[ExperimentSpec]:
    """All registered specs, sorted by name."""
    load_builtin_specs()
    return [_EXPERIMENTS[name] for name in sorted(_EXPERIMENTS)]


def load_builtin_specs() -> None:
    """Import every module that registers built-in experiment specs."""
    for module in _BUILTIN_SPEC_MODULES:
        importlib.import_module(module)


def run_experiment(
    spec: ExperimentSpec | str,
    params: dict[str, Any] | None = None,
    workers: int = 1,
    progress: ProgressCallback | None = None,
    store: Any | None = None,
) -> Any:
    """Run one experiment by spec (or registered name) and return its result.

    ``store`` is an optional :class:`~repro.store.base.ResultStore`; grid
    experiments then execute incrementally (cached cells merge from the
    store, fresh records write back).  Custom-``execute`` experiments manage
    their own execution and ignore it.
    """
    if isinstance(spec, str):
        spec = experiment_spec(spec)
    merged = spec.merged_params(params)
    if spec.execute is not None:
        return spec.execute(merged, workers=workers, progress=progress)
    jobs = spec.build_jobs(merged)
    frame = EngineRunner(workers=workers, store=store).run_jobs(
        jobs, progress=progress)
    return spec.post_process(frame, merged)


# ------------------------------------------------------------- meta commands
# Registry listings are specs too, so the CLI has no hand-written subcommands
# and library users can introspect everything through one registry.

def _list_models_execute(params: dict[str, Any], workers: int = 1,
                         progress: ProgressCallback | None = None,
                         ) -> dict[str, str]:
    from repro.engine.registry import build_model, list_models
    from repro.sim import vector

    # Sorted here, not just in the registry: listing output is a stable
    # interface (serve/store manifests embed it, scripts diff it).  Each
    # model carries its vector-backend coverage class (kernel / guarded /
    # fallback, see :func:`repro.sim.vector.kernel_status`) so backend
    # coverage is visible at a glance.
    listing: dict[str, str] = {}
    for name in sorted(list_models()):
        try:
            status = vector.kernel_status(build_model(name, seed=0))
        except Exception:  # a listing probe must never fail the command
            status = "unavailable"
        listing[name] = status
    return listing


def _list_workloads_execute(params: dict[str, Any], workers: int = 1,
                            progress: ProgressCallback | None = None) -> list[str]:
    from repro.trace.workloads import list_workloads

    return sorted(list_workloads(params.get("category")))


def _list_experiments_execute(params: dict[str, Any], workers: int = 1,
                              progress: ProgressCallback | None = None,
                              ) -> dict[str, str]:
    return {spec.name: spec.description for spec in list_experiments()}


def _format_names(names: list[str]) -> str:
    return "\n".join(names)


def _format_model_table(table: dict[str, str]) -> str:
    width = max(len(name) for name in table)
    return "\n".join(f"{name:{width}s}  {status}"
                     for name, status in table.items())


def _format_experiment_table(table: dict[str, str]) -> str:
    width = max(len(name) for name in table)
    return "\n".join(f"{name:{width}s}  {description}"
                     for name, description in sorted(table.items()))


register_experiment(ExperimentSpec(
    name="list-models",
    description="print the model registry with vector-backend coverage",
    kind="meta",
    schema_version=2,
    takes_workers=False,
    execute=_list_models_execute,
    formatter=_format_model_table,
))

register_experiment(ExperimentSpec(
    name="list-workloads",
    description="print the workload registry",
    kind="meta",
    takes_workers=False,
    options=(Option("category", choices=("spec", "application"), default=None),),
    execute=_list_workloads_execute,
    formatter=_format_names,
))

register_experiment(ExperimentSpec(
    name="list-experiments",
    description="print the experiment registry",
    kind="meta",
    takes_workers=False,
    execute=_list_experiments_execute,
    formatter=_format_experiment_table,
))
