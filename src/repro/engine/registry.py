"""Model registry: protection models addressable by string name.

Every complete predictor model the evaluation compares is registered here
under the name the paper's figures use, so experiments, examples, tests and
the CLI can declare grids of plain strings instead of importing factory
functions.  A factory takes ``seed`` plus model-specific keyword knobs (the
re-randomization difficulty factor ``r``, ablation mechanism switches, ...)
and returns a fresh :class:`~repro.bpu.common.BranchPredictorModel`.

Model *specs* (:class:`ModelSpec`) bundle a registry name with frozen keyword
parameters and a display label; they are hashable and picklable, which is what
lets the engine ship jobs to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.bpu.common import BranchPredictorModel
from repro.bpu.composite import make_skl_composite
from repro.bpu.perceptron import DEFAULT_PERCEPTRON
from repro.bpu.protections import (
    make_conservative,
    make_ucode_protection_1,
    make_ucode_protection_2,
    make_unprotected_baseline,
)
from repro.bpu.tage import TAGE_SC_L_8KB, TAGE_SC_L_64KB
from repro.core.monitoring import MonitorConfig
from repro.core.stbpu import (
    make_stbpu_perceptron,
    make_stbpu_skl,
    make_stbpu_tage,
    make_unprotected_perceptron,
    make_unprotected_tage,
)
from repro.engine.variants import make_stbpu_variant
from repro.security.analysis import derive_rerandomization_thresholds

ModelFactory = Callable[..., BranchPredictorModel]

_MODELS: dict[str, ModelFactory] = {}

#: Bumped on every (re-)registration; pooled runners compare it to decide
#: whether their forked workers still mirror the registry.
_REGISTRY_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of model (re-)registrations.

    A forked worker mirrors the registry as of its fork; the runner rebuilds
    its persistent pool when this counter moved so models registered between
    runs stay resolvable in workers.
    """
    return _REGISTRY_GENERATION


@dataclass(frozen=True, slots=True)
class ModelSpec:
    """A registry name plus frozen keyword parameters and a display label.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so specs are
    hashable and picklable; use :meth:`of` to build one from keywords.
    """

    name: str
    params: tuple[tuple[str, Any], ...] = ()
    label: str | None = None

    @classmethod
    def of(cls, name: str, label: str | None = None, **params: Any) -> "ModelSpec":
        return cls(name=name, params=tuple(sorted(params.items())), label=label)

    @property
    def display_label(self) -> str:
        """Explicit label, or the name with params folded in (``name[k=v]``).

        Params are part of the default label so two specs of the same registry
        model with different knobs occupy distinct result-frame cells instead
        of silently overwriting each other.
        """
        if self.label is not None:
            return self.label
        if not self.params:
            return self.name
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.name}[{rendered}]"

    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


def register_model(name: str, factory: ModelFactory, replace: bool = False) -> None:
    """Register ``factory`` under ``name``; refuses silent overwrites."""
    global _REGISTRY_GENERATION
    if name in _MODELS and not replace:
        raise ValueError(f"model {name!r} is already registered")
    _MODELS[name] = factory
    _REGISTRY_GENERATION += 1


def model_factory(name: str) -> ModelFactory:
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown model {name!r}; registered models: {known}") from None


def list_models() -> list[str]:
    """Names of all registered models, sorted."""
    return sorted(_MODELS)


def build_model(spec: ModelSpec | str, seed: int = 0) -> BranchPredictorModel:
    """Instantiate a fresh model from a spec (or bare registry name)."""
    if isinstance(spec, str):
        spec = ModelSpec(name=spec)
    return model_factory(spec.name)(seed=seed, **spec.kwargs())


# ----------------------------------------------------------------- built-ins

def _monitor(r: float, separate_direction_register: bool) -> MonitorConfig:
    return derive_rerandomization_thresholds(
        r=r, separate_direction_register=separate_direction_register
    )


def _register_builtins() -> None:
    register_model("baseline", lambda seed=0: make_unprotected_baseline())
    register_model("SKLCond", lambda seed=0: make_skl_composite(name="SKLCond"))
    register_model("ucode_protection_1", lambda seed=0: make_ucode_protection_1())
    register_model("ucode_protection_2", lambda seed=0: make_ucode_protection_2())
    register_model(
        "conservative",
        lambda seed=0, partitions=4: make_conservative(partitions=partitions),
    )
    register_model(
        "ST_SKLCond",
        lambda seed=0, r=0.05: make_stbpu_skl(
            monitor_config=_monitor(r, separate_direction_register=False), seed=seed
        ),
    )
    register_model(
        "PerceptronBP", lambda seed=0: make_unprotected_perceptron(DEFAULT_PERCEPTRON)
    )
    register_model(
        "ST_PerceptronBP",
        lambda seed=0, r=0.05: make_stbpu_perceptron(
            DEFAULT_PERCEPTRON,
            monitor_config=_monitor(r, separate_direction_register=True),
            seed=seed,
        ),
    )
    for tage_config in (TAGE_SC_L_64KB, TAGE_SC_L_8KB):
        register_model(
            tage_config.name,
            lambda seed=0, _config=tage_config: make_unprotected_tage(_config),
        )
        register_model(
            f"ST_{tage_config.name}",
            lambda seed=0, r=0.05, _config=tage_config: make_stbpu_tage(
                _config,
                monitor_config=_monitor(r, separate_direction_register=True),
                seed=seed,
            ),
        )
    register_model("stbpu_variant", make_stbpu_variant)


_register_builtins()
