"""User-authored scenario files: sweeps as data, no code required.

A scenario file (JSON or TOML) declares a sweep the paper never enumerated —
models × workloads for one job kind, with fidelity knobs and optional
baseline-normalized reporting — and ``python -m repro run <path>`` executes
it end-to-end with streamed progress.  The loader validates everything
against the engine registries before any job runs: unknown keys, kinds,
models, workloads, attacks, and malformed scale blocks all fail with the
offending value named.

Scenario schema (``repro.scenario/v1``)::

    {
      "schema": "repro.scenario/v1",        // optional, must match if present
      "name": "quick-oae-sweep",            // optional display name
      "description": "...",                 // optional
      "kind": "trace",                      // trace | cpu | smt | attack
      "models": ["baseline",                // registry names, or
                 {"name": "ST_SKLCond",     // parameterised specs
                  "label": "ST[r=0.0005]",
                  "params": {"r": 0.0005}}],
      "workloads": ["505.mcf", "spec"],     // names/groups; "a+b" for smt
      "attacks": ["spectre_v2"],            // kind="attack" only
      "scale": {"branch_count": 2000, "warmup_branches": 200, "seed": 7},
      "seed_policy": "shared",              // or "per-job"
      "params": {},                         // extra per-job parameters
      "baseline": "baseline",               // optional normalization column
      "metrics": ["oae_accuracy"]           // optional reported columns
    }
"""

from __future__ import annotations

import json
import os
import tomllib
from dataclasses import dataclass, field
from typing import Any

from repro.engine.grid import (
    ExperimentScale,
    Job,
    SimulationGrid,
    derive_job_seed,
)
from repro.engine.registry import ModelSpec, model_factory
from repro.engine.results import ResultFrame
from repro.engine.runner import (
    DEFAULT_ATTACK_PARAMS,
    EngineRunner,
    ProgressCallback,
    attack_names,
)
from repro.engine.workloads import resolve_smt_pairs, resolve_workloads

#: Versioned schema tag of scenario files and their result envelopes.
SCENARIO_SCHEMA = "repro.scenario/v1"

#: Job kinds a scenario may declare.
SCENARIO_KINDS = ("trace", "cpu", "smt", "attack")

#: Default reported metric per kind (used when the file names none).
_DEFAULT_METRICS = {
    "trace": ["oae_accuracy"],
    "cpu": ["ipc"],
    "smt": ["hmean_ipc"],
    "attack": ["success_metric", "success"],
}

_TOP_LEVEL_KEYS = frozenset({
    "schema", "name", "description", "kind", "models", "workloads",
    "attacks", "scale", "seed_policy", "params", "baseline", "metrics",
})

_SCALE_KEYS = frozenset({"branch_count", "warmup_branches", "seed", "workload_limit"})


@dataclass(slots=True)
class Scenario:
    """A validated scenario, ready to expand into engine jobs."""

    name: str
    kind: str
    models: list[ModelSpec]
    workloads: list[Any] = field(default_factory=list)
    attacks: list[str] = field(default_factory=list)
    scale: ExperimentScale = field(default_factory=ExperimentScale)
    seed_policy: str = "shared"
    params: dict[str, Any] = field(default_factory=dict)
    baseline: str | None = None
    metrics: list[str] = field(default_factory=list)
    description: str = ""

    def jobs(self) -> list[Job]:
        """Expand the scenario into deterministic engine jobs."""
        if self.kind == "attack":
            jobs: list[Job] = []
            for attack in self.attacks:
                defaults = dict(DEFAULT_ATTACK_PARAMS.get(attack, ()))
                defaults.update(self.params)
                defaults["attack"] = attack
                for spec in self.models:
                    jobs.append(Job(
                        index=len(jobs),
                        kind="attack",
                        model=spec,
                        seed=derive_job_seed(self.scale.seed, spec.display_label, attack),
                        params=tuple(sorted(defaults.items())),
                    ))
            return jobs
        grid = SimulationGrid(
            kind=self.kind,
            models=list(self.models),
            workloads=list(self.workloads),
            scale=self.scale,
            seed_policy=self.seed_policy,
            params=dict(self.params),
        )
        return grid.jobs()


@dataclass(slots=True)
class ScenarioResult:
    """The executed scenario plus its populated result frame."""

    scenario: Scenario
    frame: ResultFrame

    def metrics(self) -> list[str]:
        return self.scenario.metrics or _DEFAULT_METRICS[self.scenario.kind]

    def normalized(self) -> dict[str, dict[str, dict[str, float]]]:
        """``{metric: {workload: {model: value}}}`` against the baseline column."""
        baseline = self.scenario.baseline
        if baseline is None:
            return {}
        return {metric: self.frame.normalized(metric, baseline)
                for metric in self.metrics()}


def _fail(message: str) -> ValueError:
    return ValueError(f"invalid scenario: {message}")


def _model_spec(entry: Any) -> ModelSpec:
    if isinstance(entry, str):
        spec = ModelSpec(name=entry)
    elif isinstance(entry, dict):
        unknown = set(entry) - {"name", "label", "params"}
        if unknown:
            raise _fail(f"unknown model keys {sorted(unknown)} in {entry!r}")
        if "name" not in entry:
            raise _fail(f"model entry {entry!r} has no 'name'")
        params = entry.get("params", {})
        if not isinstance(params, dict):
            raise _fail(f"model params must be a mapping, got {params!r}")
        spec = ModelSpec.of(entry["name"], label=entry.get("label"), **params)
    else:
        raise _fail(f"model entry {entry!r} must be a name or a mapping")
    try:
        model_factory(spec.name)
    except KeyError as error:
        # Re-frame as the module's uniform validation error (the registry's
        # message already names the known models).
        raise _fail(error.args[0]) from None
    return spec


def parse_scenario(data: Any, name: str = "scenario") -> Scenario:
    """Validate a decoded scenario mapping and return a :class:`Scenario`."""
    if not isinstance(data, dict):
        raise _fail(f"top level must be a mapping, got {type(data).__name__}")
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        raise _fail(
            f"unknown top-level keys {sorted(unknown)}; "
            f"known keys: {', '.join(sorted(_TOP_LEVEL_KEYS))}"
        )
    schema = data.get("schema", SCENARIO_SCHEMA)
    if schema != SCENARIO_SCHEMA:
        raise _fail(f"unsupported schema {schema!r}; expected {SCENARIO_SCHEMA!r}")

    kind = data.get("kind")
    if kind not in SCENARIO_KINDS:
        raise _fail(f"kind must be one of {SCENARIO_KINDS}, got {kind!r}")

    seed_policy = data.get("seed_policy", "shared")
    if seed_policy not in ("shared", "per-job"):
        raise _fail(
            f"seed_policy must be 'shared' or 'per-job', got {seed_policy!r}"
        )

    models_raw = data.get("models")
    if not isinstance(models_raw, list) or not models_raw:
        raise _fail("'models' must be a non-empty list")
    models = [_model_spec(entry) for entry in models_raw]
    labels = [spec.display_label for spec in models]
    if len(set(labels)) != len(labels):
        raise _fail(f"model labels are not distinct: {labels}")

    scale_raw = data.get("scale", {})
    if not isinstance(scale_raw, dict):
        raise _fail(f"'scale' must be a mapping, got {scale_raw!r}")
    unknown = set(scale_raw) - _SCALE_KEYS
    if unknown:
        raise _fail(
            f"unknown scale keys {sorted(unknown)}; "
            f"known keys: {', '.join(sorted(_SCALE_KEYS))}"
        )
    scale = ExperimentScale(**scale_raw)

    workloads: list[Any] = []
    attacks: list[str] = []
    if kind == "attack":
        attacks_raw = data.get("attacks")
        if not isinstance(attacks_raw, list) or not attacks_raw:
            raise _fail("kind='attack' requires a non-empty 'attacks' list")
        known = set(attack_names())
        bad = sorted(set(attacks_raw) - known)
        if bad:
            raise _fail(
                f"unknown attacks {bad}; known attacks: {', '.join(sorted(known))}"
            )
        attacks = list(attacks_raw)
        if "workloads" in data:
            raise _fail("kind='attack' takes 'attacks', not 'workloads'")
    else:
        workloads_raw = data.get("workloads")
        if not isinstance(workloads_raw, list) or not workloads_raw:
            raise _fail(f"kind={kind!r} requires a non-empty 'workloads' list")
        try:
            if kind == "smt":
                workloads = resolve_smt_pairs(
                    [tuple(entry) if isinstance(entry, list) else entry
                     for entry in workloads_raw])
            else:
                workloads = resolve_workloads(workloads_raw)
        except KeyError as error:
            raise _fail(error.args[0]) from None
        if "attacks" in data:
            raise _fail(f"kind={kind!r} takes 'workloads', not 'attacks'")

    params = data.get("params", {})
    if not isinstance(params, dict):
        raise _fail(f"'params' must be a mapping, got {params!r}")

    metrics = data.get("metrics", [])
    if not isinstance(metrics, list):
        raise _fail(f"'metrics' must be a list, got {metrics!r}")

    baseline = data.get("baseline")
    if baseline is not None and baseline not in labels:
        raise _fail(
            f"baseline {baseline!r} is not one of the scenario's models: {labels}"
        )

    return Scenario(
        name=data.get("name", name),
        kind=kind,
        models=models,
        workloads=workloads,
        attacks=attacks,
        scale=scale,
        seed_policy=seed_policy,
        params=dict(params),
        baseline=baseline,
        metrics=list(metrics),
        description=data.get("description", ""),
    )


def load_scenario(path: str) -> Scenario:
    """Load and validate a ``.json`` or ``.toml`` scenario file."""
    lowered = str(path).lower()
    if lowered.endswith(".toml"):
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    elif lowered.endswith(".json"):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        raise ValueError(
            f"scenario file {path!r} must end in .json or .toml"
        )
    default_name = os.path.splitext(os.path.basename(path))[0]
    return parse_scenario(data, name=default_name)


def run_scenario(scenario: Scenario, workers: int = 1,
                 progress: ProgressCallback | None = None,
                 store: Any | None = None) -> ScenarioResult:
    """Execute the scenario's jobs and return the populated result.

    With a ``store`` (a :class:`~repro.store.base.ResultStore`), execution is
    incremental: cells already in the store merge back without running, and
    the resulting envelope is byte-identical to a cold run.
    """
    runner = EngineRunner(workers=workers, store=store)
    frame = runner.run_jobs(scenario.jobs(), progress=progress)
    return ScenarioResult(scenario=scenario, frame=frame)


def format_scenario(result: ScenarioResult) -> str:
    """Render the scenario result as an aligned text table."""
    scenario = result.scenario
    metrics = result.metrics()
    lines = [f"scenario: {scenario.name} (kind={scenario.kind}, "
             f"{len(result.frame)} jobs)"]
    label_width = max(
        [len("model / workload")]
        + [len(f"{record.model} / {record.workload}") for record in result.frame]
    ) + 2
    header = f"{'model / workload':{label_width}s}" + "".join(
        f"{metric:>20s}" for metric in metrics)
    lines.append(header)
    for record in result.frame:
        cells = "".join(
            f"{record.metrics.get(metric, float('nan')):20.4f}" for metric in metrics)
        lines.append(f"{record.model + ' / ' + record.workload:{label_width}s}{cells}")
    normalized = result.normalized()
    for metric, table in normalized.items():
        lines.append(f"normalized {metric} (baseline {scenario.baseline}):")
        for workload, row in table.items():
            cells = ", ".join(f"{model}={value:.4f}" for model, value in row.items())
            lines.append(f"  {workload}: {cells}")
    return "\n".join(lines)


def serialize_scenario(result: ScenarioResult) -> dict[str, Any]:
    """The scenario result as a JSON payload (envelope added by the CLI)."""
    payload: dict[str, Any] = {
        "name": result.scenario.name,
        "kind": result.scenario.kind,
        "metrics": result.metrics(),
        "records": result.frame.to_dict()["records"],
    }
    if result.scenario.baseline is not None:
        payload["baseline"] = result.scenario.baseline
        payload["normalized"] = result.normalized()
    return payload


def scenario_envelope(result: ScenarioResult) -> dict[str, Any]:
    """The versioned JSON envelope for an executed scenario."""
    return {
        "schema": SCENARIO_SCHEMA,
        "spec": "scenario",
        "result": serialize_scenario(result),
    }
