"""Engine runner: executes job lists serially or on a batched process pool.

:func:`execute_job` is the single entry point that knows how to run every job
kind; it lives at module top level so a :class:`~concurrent.futures.ProcessPoolExecutor`
can pickle it.  Because jobs are plain data, seeds are derived from job
identity, and the synthetic trace generator is deterministic, a parallel run
produces records bit-identical to a serial run of the same grid — the runner
only changes wall-clock time, never results.

Parallel execution is *batched*: jobs are grouped into contiguous chunks
(:func:`job_batches`) so each pool round-trip amortises dispatch and result
pickling over several jobs, one executor persists across ``run`` /
``iter_records`` calls within a runner's lifetime, and on non-``fork`` start
methods the distinct traces behind the jobs ship to workers once as
shared-memory arrays (:mod:`repro.engine.sharing`) instead of being
re-generated per job.

:meth:`EngineRunner.iter_records` is the streaming form: records are yielded
in job order as soon as they (and every earlier job) complete, and an optional
progress callback fires in completion order, so long grids report progress
instead of blocking until the whole pool drains.

With a result store attached (``EngineRunner(store=...)``), execution is
*incremental*: jobs are partitioned into cached and missing by their
content-addressed fingerprint (:mod:`repro.store.keys`), only the missing
cells are dispatched (batched as usual), fresh records are written back, and
the merged frame is byte-identical to a cold run — cached records re-enter at
the requesting job's index with ``seconds`` zeroed, exactly as serialization
would have produced them.  ``last_executed`` / ``last_cached`` expose the
split for assertions and for the CLI's cache-effectiveness report.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import weakref
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, Iterator, Sequence

from repro.engine.grid import Job, SimulationGrid
from repro.engine.registry import build_model
from repro.engine.results import JobRecord, ResultFrame
from repro.engine.workloads import trace_for
from repro.obs import metrics as obs_metrics
from repro.obs.spans import NULL_TRACER
from repro.sim.bpu_sim import TraceSimulator
from repro.sim.config import SimulationLengths
from repro.sim.cpu import CycleApproximateCPU
from repro.sim.smt import SMTSimulator
from repro.store.base import JOB_NAMESPACE, ResultStore
from repro.store.keys import CACHEABLE_KINDS, job_fingerprint

logger = logging.getLogger("repro.engine.runner")


def _protection_metrics(protection: dict[str, int]) -> dict[str, float]:
    return {key: float(value) for key, value in protection.items()}


def _run_trace_job(job: Job) -> JobRecord:
    model = build_model(job.model, seed=job.seed)
    trace = trace_for(job.workload, job.branch_count, job.trace_seed)
    simulator = TraceSimulator(warmup_branches=job.warmup_branches)
    result = simulator.run(model, trace)
    report = result.report
    metrics = {
        "oae_accuracy": report.oae_accuracy,
        "direction_accuracy": report.direction_accuracy,
        "target_accuracy": report.target_accuracy,
        "misprediction_rate": report.misprediction_rate,
        "btb_evictions": float(report.btb_evictions),
        "branches": float(result.stats.branches),
    }
    metrics.update(_protection_metrics(model.protection_stats()))
    return JobRecord(
        index=job.index, kind=job.kind, model=job.model_label,
        workload=job.workload_name, metrics=metrics,
    )


def _run_cpu_job(job: Job) -> JobRecord:
    model = build_model(job.model, seed=job.seed)
    trace = trace_for(job.workload, job.branch_count, job.trace_seed)
    lengths = SimulationLengths(
        warmup_branches=job.warmup_branches, measured_branches=job.branch_count
    )
    result = CycleApproximateCPU(lengths=lengths).run(model, trace)
    performance = result.performance
    metrics = {
        "ipc": performance.ipc,
        "direction_accuracy": performance.direction_accuracy,
        "target_accuracy": performance.target_accuracy,
        "instructions": performance.instructions,
        "cycles": performance.cycles,
    }
    metrics.update(_protection_metrics(model.protection_stats()))
    return JobRecord(
        index=job.index, kind=job.kind, model=job.model_label,
        workload=job.workload_name, metrics=metrics,
    )


def _run_smt_job(job: Job) -> JobRecord:
    workload_a, workload_b = job.workload
    model = build_model(job.model, seed=job.seed)
    trace_a = trace_for(workload_a, job.branch_count, job.trace_seed)
    trace_b = trace_for(workload_b, job.branch_count, job.trace_seed)
    lengths = SimulationLengths(
        warmup_branches=job.warmup_branches, measured_branches=job.branch_count
    )
    result = SMTSimulator(lengths=lengths).run(model, trace_a, trace_b)
    metrics = {
        "hmean_ipc": result.hmean_ipc,
        "direction_accuracy": result.combined_direction_accuracy,
        "target_accuracy": result.combined_target_accuracy,
        "ipc_thread0": result.thread_performance[0].ipc,
        "ipc_thread1": result.thread_performance[1].ipc,
        "branches": float(sum(stats.branches for stats in result.thread_stats)),
    }
    metrics.update(_protection_metrics(result.protection))
    return JobRecord(
        index=job.index, kind=job.kind, model=job.model_label,
        workload=job.workload_name, metrics=metrics,
    )


def _run_hashgen_job(job: Job) -> JobRecord:
    from repro.hashgen.constraints import summarize_cost
    from repro.hashgen.generator import RemapFunctionGenerator
    from repro.hashgen.optimization import REMAP_CONSTRAINTS, select_best

    label = job.workload
    constraints = REMAP_CONSTRAINTS[label]
    generator = RemapFunctionGenerator(constraints, seed=job.seed)
    candidates = generator.search(
        attempts=job.param("attempts", 12),
        uniformity_samples=job.param("uniformity_samples", 3_000),
        avalanche_samples=job.param("avalanche_samples", 20),
    )
    best = select_best(candidates, constraints)
    metrics: dict[str, float] = {"candidates": float(len(candidates))}
    if best is not None:
        cost = summarize_cost(best.evaluated.candidate.layers)
        metrics.update(
            critical_path_transistors=float(cost.critical_path_transistors),
            uniformity_cv=best.evaluated.uniformity.normalized_cv,
            avalanche_mean=best.evaluated.avalanche.mean_flip_fraction,
            score=best.total,
        )
    return JobRecord(
        index=job.index, kind=job.kind, model="hashgen",
        workload=label, metrics=metrics,
    )


def _attack_spectre_v2(model, job: Job):
    from repro.security.attacks import SpectreV2Injection

    return SpectreV2Injection(model, seed=job.seed).run(attempts=job.param("attempts", 150))


def _attack_spectre_rsb(model, job: Job):
    from repro.security.attacks import SpectreRSBInjection

    return SpectreRSBInjection(model, seed=job.seed).run(attempts=job.param("attempts", 150))


def _attack_trojan(model, job: Job):
    from repro.security.attacks import TransientTrojanAttack

    return TransientTrojanAttack(model, seed=job.seed).run(trials=job.param("trials", 100))


def _attack_btb_reuse(model, job: Job):
    from repro.security.attacks import BTBReuseSideChannel

    return BTBReuseSideChannel(model, seed=job.seed).run(trials=job.param("trials", 200))


def _attack_pht_reuse(model, job: Job):
    from repro.security.attacks import PHTReuseSideChannel

    return PHTReuseSideChannel(model, seed=job.seed).run(
        secret_bits=job.param("secret_bits", 128))


def _attack_btb_eviction(model, job: Job):
    from repro.security.attacks import BTBEvictionSideChannel

    return BTBEvictionSideChannel(model, seed=job.seed).run(trials=job.param("trials", 100))


def _attack_rsb_overflow(model, job: Job):
    from repro.security.attacks import RSBOverflowAttack

    return RSBOverflowAttack(model, seed=job.seed).run(trials=job.param("trials", 100))


def _attack_dos(model, job: Job):
    from repro.security.attacks import BPUDenialOfService

    return BPUDenialOfService(model, seed=job.seed).run(
        rounds=job.param("rounds", 50),
        hot_branch_count=job.param("hot_branch_count", 32),
        attacker_branches_per_round=job.param("attacker_branches_per_round", 512),
    )


#: Default attack-specific work parameters, sized for minutes-long matrices.
#: Shared by the attack-matrix driver and scenario files, keyed like
#: :data:`_ATTACKS`.
DEFAULT_ATTACK_PARAMS: dict[str, tuple[tuple[str, object], ...]] = {
    "spectre_v2": (("attempts", 150),),
    "spectre_rsb": (("attempts", 150),),
    "trojan": (("trials", 100),),
    "btb_reuse": (("trials", 150),),
    "pht_reuse": (("secret_bits", 96),),
    "btb_eviction": (("trials", 60),),
    "rsb_overflow": (("trials", 60),),
    "dos": (("rounds", 30),),
}

#: Attack scenarios runnable as ``kind="attack"`` jobs (the paper's Table I
#: vectors), keyed by the name used in the job's ``attack`` parameter.
_ATTACKS = {
    "spectre_v2": _attack_spectre_v2,
    "spectre_rsb": _attack_spectre_rsb,
    "trojan": _attack_trojan,
    "btb_reuse": _attack_btb_reuse,
    "pht_reuse": _attack_pht_reuse,
    "btb_eviction": _attack_btb_eviction,
    "rsb_overflow": _attack_rsb_overflow,
    "dos": _attack_dos,
}


def attack_names() -> list[str]:
    """Names of all attack scenarios the engine can dispatch, sorted."""
    return sorted(_ATTACKS)


def _run_attack_job(job: Job) -> JobRecord:
    attack_name = job.param("attack")
    try:
        attack = _ATTACKS[attack_name]
    except KeyError:
        known = ", ".join(attack_names())
        raise ValueError(
            f"unknown attack {attack_name!r}; known attacks: {known}"
        ) from None
    model = build_model(job.model, seed=job.seed)
    outcome = attack(model, job)
    metrics = {
        "success_metric": outcome.success_metric,
        "success": float(outcome.success),
        "attempts": float(outcome.attempts),
        "protected": float(outcome.protected),
    }
    return JobRecord(
        index=job.index, kind=job.kind, model=job.model_label,
        workload=attack_name, metrics=metrics,
    )


def _run_table_job(job: Job) -> JobRecord:
    # Imported lazily: repro.experiments itself declares grids on this engine.
    from repro.experiments import tables

    table_name = job.param("table")
    payloads = {
        "table1": tables.run_table1,
        "table2": tables.run_table2,
        "table4": tables.run_table4,
        "thresholds": tables.thresholds_payload,
    }
    if table_name not in payloads:
        raise ValueError(f"unknown table {table_name!r}")
    return JobRecord(
        index=job.index, kind=job.kind, model="tables",
        workload=table_name, payload=payloads[table_name](),
    )


_EXECUTORS = {
    "trace": _run_trace_job,
    "cpu": _run_cpu_job,
    "smt": _run_smt_job,
    "hashgen": _run_hashgen_job,
    "attack": _run_attack_job,
    "table": _run_table_job,
}


def execute_job(job: Job) -> JobRecord:
    """Execute one job in the current process and return its timed record."""
    try:
        runner = _EXECUTORS[job.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {job.kind!r}") from None
    started = time.perf_counter()  # repro-lint: disable=determinism -- wall time only; JobRecord.seconds is excluded from serialized frames
    record = runner(job)
    record.seconds = time.perf_counter() - started  # repro-lint: disable=determinism -- wall time only; JobRecord.seconds is excluded from serialized frames
    return record


#: Optional callback fired once per completed job, in completion order:
#: ``progress(done, total, record)``.
ProgressCallback = Callable[[int, int, JobRecord], None]


def execute_job_batch(jobs: Sequence[Job],
                      shipments: tuple[dict, ...] = (),
                      quiet_fallbacks: tuple[str, ...] = ()) -> list[JobRecord]:
    """Execute a contiguous batch of jobs in the current (worker) process.

    ``shipments`` are shared-memory trace descriptors; each is attached once
    per process, pre-seeding the worker-local trace cache before the first
    job replays (see :mod:`repro.engine.sharing`).  ``quiet_fallbacks`` are
    model names whose "no vector kernel" notice the parent already logged;
    pre-seeding the worker's logged-set keeps a grid's notice process-global
    (one line per model name) instead of one line per worker.
    """
    if shipments:
        from repro.engine import sharing

        for descriptor in shipments:
            sharing.attach_shipment(descriptor)
    if quiet_fallbacks:
        from repro.sim import vector

        vector.suppress_fallback_notices(quiet_fallbacks)
    return [execute_job(job) for job in jobs]


#: Probe results for model specs already probed for a vector kernel in this
#: process: the model name the parent's fallback notice covers, or ``None``
#: when the spec's model has a kernel.  Keyed by spec because probing is
#: cheap but builds a model; keeping the *result* (not a bare "seen" set)
#: lets a later run re-derive which of *its* models are kernel-less without
#: re-probing.  Failed probes are not cached, so they are retried.
_PROBED_KERNEL_SPECS: dict = {}


def _vector_fallback_suppressions(jobs: Sequence[Job]) -> tuple[str, ...]:
    """Probe each distinct model for a vector kernel in the parent process.

    Probing calls :func:`repro.sim.vector.kernel_for`, which logs the "no
    vector kernel, falling back" notice — once, here, in the parent — for
    every kernel-less model the jobs will run.  The returned snapshot of
    names is shipped to workers so they stay quiet: a 100-job grid of a
    kernel-less model logs the notice exactly once, regardless of batching,
    worker count, or start method.

    The snapshot covers exactly the kernel-less models of *these* jobs —
    never the whole process-global logged set.  Shipping every name ever
    logged would silently pre-suppress first notices in workers for
    unrelated models that still lack a kernel.
    """
    from repro.sim import fastpath

    if not fastpath.vector_enabled():
        return ()
    from repro.sim import vector

    quiet: set[str] = set()
    for job in jobs:
        if job.kind not in ("trace", "cpu", "smt") or job.model is None:
            continue
        if job.model in _PROBED_KERNEL_SPECS:
            name = _PROBED_KERNEL_SPECS[job.model]
            if name is not None:
                quiet.add(name)
            continue
        try:
            model = build_model(job.model, seed=0)
            fallback_name = (getattr(model, "name", type(model).__name__)
                             if vector.kernel_for(model) is None else None)
        except Exception:  # a probe must never take down the run
            logger.debug("vector-kernel probe failed for %r",
                         job.model, exc_info=True)
            continue
        _PROBED_KERNEL_SPECS[job.model] = fallback_name
        if fallback_name is not None:
            quiet.add(fallback_name)
    return tuple(sorted(quiet))


def job_batches(jobs: Sequence[Job], workers: int,
                parts_per_worker: int = 4) -> list[list[Job]]:
    """Split ``jobs`` into contiguous batches sized for pool submission.

    The chunk size balances dispatch overhead (bigger batches → fewer pool
    round-trips) against load balance (smaller batches → stragglers matter
    less): ``parts_per_worker`` batches per worker, at least one job each.
    """
    total = len(jobs)
    if total == 0:
        return []
    chunk = max(1, -(-total // max(1, workers * parts_per_worker)))
    return [list(jobs[start:start + chunk]) for start in range(0, total, chunk)]


def _distinct_trace_keys(jobs: Sequence[Job]) -> dict:
    """The distinct ``(workload, branch_count, seed)`` traces the jobs replay."""
    keys: dict = {}
    for job in jobs:
        if job.kind not in ("trace", "cpu", "smt") or job.workload is None:
            continue
        names = job.workload if isinstance(job.workload, tuple) else (job.workload,)
        for name in names:
            keys[(name, job.branch_count, job.trace_seed)] = None
    return keys


class EngineRunner:
    """Executes grids/job lists, serially or on a batched process pool.

    Args:
        workers: Number of worker processes; ``1`` (the default) runs
            everything inline.  Results are identical either way.
        start_method: Optional multiprocessing start method override
            (``"fork"``/``"spawn"``).  By default the platform's ``fork`` is
            preferred; passing ``"spawn"`` exercises the shared-memory trace
            shipping path that non-fork platforms use.
        store: Optional :class:`~repro.store.base.ResultStore`.  When given,
            cacheable jobs whose fingerprints resolve are merged from the
            store instead of executing, and fresh records are written back —
            incremental execution with byte-identical frames.

    One executor is created lazily and reused across ``run`` /
    ``iter_records`` calls; call :meth:`close` (or use the runner as a
    context manager) to shut it down eagerly — otherwise a finalizer does it
    when the runner is garbage collected.

    Instrumentation: after every ``run``/``run_jobs``/``iter_records``
    consumption, ``last_total``/``last_cached``/``last_executed`` describe
    that run's cached-vs-executed split, and ``total_cached``/
    ``total_executed`` accumulate across the runner's lifetime.
    """

    def __init__(self, workers: int = 1, start_method: str | None = None,
                 store: ResultStore | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.start_method = start_method
        self.store = store
        self.last_total = 0
        self.last_cached = 0
        self.last_executed = 0
        self.total_cached = 0
        self.total_executed = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_used = False
        self._pool_generation: int | None = None
        self._shipments: list = []
        self._shipped_keys: set = set()
        self._finalizer = weakref.finalize(
            self, EngineRunner._cleanup, [], [])  # replaced on first pool use

    def run(self, grid: SimulationGrid,
            progress: ProgressCallback | None = None) -> ResultFrame:
        """Expand ``grid`` and execute every job."""
        return self.run_jobs(grid.jobs(), progress=progress)

    def run_jobs(self, jobs: Sequence[Job],
                 progress: ProgressCallback | None = None,
                 abort_check: Callable[[], None] | None = None,
                 tracer=None) -> ResultFrame:
        """Execute an explicit job list (drivers mixing kinds build these)."""
        return ResultFrame(self.iter_records(jobs, progress=progress,
                                             abort_check=abort_check,
                                             tracer=tracer))

    def iter_records(self, jobs: Iterable[Job],
                     progress: ProgressCallback | None = None,
                     abort_check: Callable[[], None] | None = None,
                     tracer=None) -> Iterator[JobRecord]:
        """Stream records as jobs finish, reassembled into job order.

        Records are yielded in the order of ``jobs`` regardless of which
        worker finishes first, so consuming the iterator is deterministic and
        ``ResultFrame(iter_records(...))`` equals a blocking run.  The
        ``progress`` callback, by contrast, fires in *completion* order —
        that is its purpose: honest liveness for long grids.  Each record
        carries the wall-clock ``seconds`` its job took in the process that
        ran it (``0.0`` for store hits — they cost no simulation time).

        With a store attached, cached jobs complete instantly (their progress
        fires first), only the missing jobs are dispatched, and every fresh
        cacheable record is written back.

        ``abort_check`` is the supervisor hook (``repro.store.jobs``): called
        before dispatch and between completions, it raises to abandon the
        run (deadline exceeded, job cancelled).  In-flight pool batches
        cannot be interrupted — after an abort the caller should ``close()``
        the runner rather than reuse a pool with stale work queued.

        ``tracer`` (a :class:`repro.obs.spans.SpanTracer`) records the
        phase spans partition → dispatch → execute → merge plus one leaf
        per record; all clock reads happen inside the tracer, so this
        module stays free of timing calls.  Span structure is a function of
        the job list and the store state, never of completion order: the
        per-record leaves are added under ``merge`` in job order.
        """
        jobs = list(jobs)
        if abort_check is not None:
            abort_check()
        tracer = tracer or NULL_TRACER
        total = len(jobs)
        with tracer.span("partition") as partition_span:
            cached, missing, positions, fingerprints = self._partition(jobs)
            partition_span.attrs.update(
                jobs=total, cached=len(cached), missing=len(missing))
        obs_metrics.inc("repro_engine_jobs_cached_total", len(cached))
        obs_metrics.inc("repro_engine_jobs_executed_total", len(missing))
        self.last_total = total
        self.last_cached = len(cached)
        self.last_executed = len(missing)
        self.total_cached += len(cached)
        self.total_executed += len(missing)
        done = 0
        ready: dict[int, JobRecord] = dict(cached)
        merged: list[tuple[int, JobRecord, str]] = []
        next_position = 0
        for position in sorted(ready):
            done += 1
            merged.append((position, ready[position], "store"))
            if progress is not None:
                progress(done, total, ready[position])
        while next_position in ready:
            yield ready.pop(next_position)
            next_position += 1
        completions = self._completions(missing, positions, tracer=tracer)
        with tracer.span("execute") as execute_span:
            for position, record in completions:
                if abort_check is not None:
                    abort_check()
                done += 1
                if progress is not None:
                    progress(done, total, record)
                fingerprint = fingerprints.get(position)
                if fingerprint is not None:
                    self._write_back(fingerprint, record)
                merged.append((position, record, "executed"))
                ready[position] = record
                while next_position in ready:
                    yield ready.pop(next_position)
                    next_position += 1
            execute_span.attrs.update(jobs=len(missing))
        with tracer.span("merge") as merge_span:
            merged.sort(key=lambda item: item[0])
            for position, record, source in merged:
                tracer.add("job", seconds=record.seconds,
                           position=position, model=record.model,
                           workload=record.workload, source=source)
            merge_span.attrs.update(records=total)

    def _completions(self, jobs: Sequence[Job], positions: Sequence[int],
                     tracer=NULL_TRACER) -> Iterator[tuple[int, JobRecord]]:
        """Execute ``jobs``, returning an iterator of ``(original position,
        record)`` pairs in completion order (serial: list order; parallel:
        batch completion).  Dispatch — pool creation, trace shipping, batch
        submission — happens eagerly in this call, under the ``dispatch``
        span; the returned iterator only consumes completions."""
        total = len(jobs)
        if total == 0:
            return iter(())
        if self.workers <= 1 or total <= 1:
            tracer.add("dispatch", mode="serial", workers=1, batches=0)
            return ((position, execute_job(job))
                    for position, job in zip(positions, jobs))
        with tracer.span("dispatch") as dispatch_span:
            context = self._context()
            pool = self._ensure_pool(context)
            if context.get_start_method() == "fork":
                # Workers fork at first submit and inherit the parent's trace
                # cache as of that moment; generate this run's traces first so
                # a fresh pool inherits them all.  Runs on an *existing* pool
                # instead ship any new traces through shared memory — the
                # workers' inherited caches predate them.
                self._prewarm_traces(jobs)
                if self._pool_used:
                    shipments = self._ensure_shipments(jobs)
                else:
                    self._shipped_keys.update(_distinct_trace_keys(jobs))
                    shipments = tuple(s.descriptor for s in self._shipments)
            else:
                shipments = self._ensure_shipments(jobs)
            # Probe for kernel-less models while the parent still owns the
            # log: one fallback notice total, workers silenced via the
            # snapshot.
            quiet_fallbacks = _vector_fallback_suppressions(jobs)
            self._pool_used = True
            batches = job_batches(jobs, min(self.workers, total))
            position_batches: list[Sequence[int]] = []
            offset = 0
            for batch in batches:
                position_batches.append(positions[offset:offset + len(batch)])
                offset += len(batch)
            futures = {
                pool.submit(execute_job_batch, batch, shipments,
                            quiet_fallbacks): index
                for index, batch in enumerate(batches)
            }
            dispatch_span.attrs.update(
                mode="pool", workers=min(self.workers, total),
                batches=len(batches))

        def stream() -> Iterator[tuple[int, JobRecord]]:
            for future in as_completed(futures):
                index = futures[future]
                yield from zip(position_batches[index], future.result())

        return stream()

    # ----------------------------------------------------------- store layer

    def _partition(self, jobs: Sequence[Job]) -> tuple[
            dict[int, JobRecord], list[Job], list[int], dict[int, str]]:
        """Split jobs into store-resolved records and still-missing jobs.

        Returns ``(cached, missing, positions, fingerprints)``: records by
        original list position, the jobs to execute, their positions, and the
        fingerprints to write fresh results back under.
        """
        if self.store is None:
            return {}, list(jobs), list(range(len(jobs))), {}
        cached: dict[int, JobRecord] = {}
        missing: list[Job] = []
        positions: list[int] = []
        fingerprints: dict[int, str] = {}
        for position, job in enumerate(jobs):
            record = None
            fingerprint = (job_fingerprint(job)
                           if job.kind in CACHEABLE_KINDS else None)
            if fingerprint is not None:
                record = self._cached_record(job, fingerprint)
            if record is not None:
                cached[position] = record
                continue
            missing.append(job)
            positions.append(position)
            if fingerprint is not None:
                fingerprints[position] = fingerprint
        return cached, missing, positions, fingerprints

    def _cached_record(self, job: Job, fingerprint: str) -> JobRecord | None:
        try:
            payload = self.store.get(JOB_NAMESPACE, fingerprint)
        except OSError:
            logger.warning("store read failed for %s; recomputing",
                           fingerprint[:16], exc_info=True)
            return None
        if payload is None:
            return None
        if not self._record_matches(job, payload):
            # The stored record is readable but is not this job's result
            # (index drift, hand-edited store, fingerprint collision in a
            # foreign tool): recompute rather than return a wrong frame.
            logger.warning(
                "store record %s does not match its job (kind=%r model=%r); "
                "recomputing", fingerprint[:16], job.kind, job.model_label)
            self._reclassify_hit_as_miss()
            return None
        try:
            return JobRecord.from_dict(payload, index=job.index)
        except (KeyError, TypeError, ValueError):
            logger.warning("store record %s is malformed; recomputing",
                           fingerprint[:16], exc_info=True)
            self._reclassify_hit_as_miss()
            return None

    def _reclassify_hit_as_miss(self) -> None:
        """The get() above counted a hit, but the record failed job-level
        validation and the job will execute: keep hits == jobs actually
        served from cache."""
        self.store.counters.add(hits=-1, misses=1)

    @staticmethod
    def _record_matches(job: Job, payload) -> bool:
        if not isinstance(payload, dict):
            return False
        if payload.get("kind") != job.kind:
            return False
        if not isinstance(payload.get("metrics"), dict):
            return False
        if job.kind in ("trace", "cpu", "smt"):
            return (payload.get("model") == job.model_label
                    and payload.get("workload") == job.workload_name)
        if job.kind == "attack":
            return (payload.get("model") == job.model_label
                    and payload.get("workload") == job.param("attack"))
        return True

    def _write_back(self, fingerprint: str, record: JobRecord) -> None:
        payload = {key: value for key, value in record.to_dict().items()
                   if key != "index"}  # position is the grid's, not the result's
        try:
            self.store.put(JOB_NAMESPACE, fingerprint, payload)
        except (OSError, TypeError, ValueError):
            logger.warning("store write failed for %s; result not cached",
                           fingerprint[:16], exc_info=True)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Shut the pooled executor down and release shipped trace memory."""
        self._finalizer()
        self._pool = None
        self._pool_used = False
        self._pool_generation = None
        self._shipments = []
        self._shipped_keys = set()

    def __enter__(self) -> "EngineRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _cleanup(pools: list, shipments: list) -> None:
        for pool in pools:
            pool.shutdown(wait=True)
        for shipment in shipments:
            shipment.close()

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            return multiprocessing.get_context()

    def _ensure_pool(self, context) -> ProcessPoolExecutor:
        from repro.engine.registry import registry_generation

        generation = registry_generation()
        if self._pool is not None and self._pool_generation != generation:
            # Models were (re-)registered since the workers forked; rebuild
            # the pool so fresh forks mirror the current registry (the old
            # per-run-pool guarantee).  Spawn workers never saw post-import
            # registrations either way.
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_used = False
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
            self._pool_generation = generation
            # Re-register the finalizer with the live pool/shipment lists so
            # garbage collection tears both down.
            self._finalizer.detach()
            self._finalizer = weakref.finalize(
                self, EngineRunner._cleanup, [self._pool], self._shipments)
        return self._pool

    def _ensure_shipments(self, jobs: Sequence[Job]) -> tuple[dict, ...]:
        """Pack any not-yet-shipped distinct traces into a new shipment."""
        from repro.engine import sharing

        missing = {}
        for key in _distinct_trace_keys(jobs):
            if key not in self._shipped_keys:
                missing[key] = trace_for(*key)
        if missing:
            self._shipments.append(sharing.TraceShipment(missing))
            self._shipped_keys.update(missing)
        return tuple(shipment.descriptor for shipment in self._shipments)

    @staticmethod
    def _fork_context():
        """Prefer the fork start method when the platform offers it.

        Kept for callers that need the raw context; :class:`EngineRunner`
        itself now goes through :meth:`_context`, which honours the
        ``start_method`` override.
        """
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    @staticmethod
    def _prewarm_traces(jobs: Sequence[Job]) -> int:
        """Generate each distinct trace once in the parent before forking.

        Returns the total branch volume the jobs will replay (every job
        counts its full trace length, warm-up included), which the bench
        command reports as throughput.
        """
        branches = 0
        for job in jobs:
            if job.kind not in ("trace", "cpu", "smt") or job.workload is None:
                continue
            names = job.workload if isinstance(job.workload, tuple) else (job.workload,)
            for name in names:
                trace_for(name, job.branch_count, job.trace_seed)
                branches += job.branch_count
        return branches
