"""Declarative simulation grids and their expansion into deterministic jobs.

A :class:`SimulationGrid` names what to run — models (by registry name or
:class:`~repro.engine.registry.ModelSpec`), workloads (names, or pairs for
SMT), a :class:`ExperimentScale`, and a job kind — and :meth:`SimulationGrid.jobs`
expands it into a flat list of :class:`Job` descriptions.  Jobs are plain
frozen data (strings, numbers, tuples), so the runner can hand them to worker
processes, and their seeds are derived from job identity rather than execution
order, which is what makes parallel runs bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.registry import ModelSpec
from repro.engine.workloads import WorkloadKey, workload_label

#: Job kinds the runner knows how to execute.
JOB_KINDS = ("trace", "cpu", "smt", "hashgen", "attack", "table")


@dataclass(slots=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime; defaults suit tests and benches."""

    branch_count: int = 20_000
    warmup_branches: int = 2_000
    seed: int = 7
    workload_limit: int | None = None


#: Fidelity presets selectable with ``--scale`` on the CLI and usable directly
#: by library callers (``SCALE_PRESETS["fast"]``).
SCALE_PRESETS: dict[str, ExperimentScale] = {
    "fast": ExperimentScale(branch_count=4_000, warmup_branches=400),
    "default": ExperimentScale(),
    "full": ExperimentScale(branch_count=60_000, warmup_branches=6_000),
}


def derive_job_seed(base_seed: int, *parts: object) -> int:
    """Stable 63-bit seed derived from the grid seed and job identity.

    Uses SHA-256 over the stringified identity, so the same (grid seed, model,
    workload) triple seeds identically in every process and under any
    execution order or ``PYTHONHASHSEED``.
    """
    text = "|".join([str(base_seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


@dataclass(frozen=True, slots=True)
class Job:
    """One executable cell of a grid — picklable plain data.

    Attributes:
        index: Position in the expanded grid; results are re-ordered by it.
        kind: One of :data:`JOB_KINDS`.
        model: Model spec, or ``None`` for kinds without a model (hashgen,
            table).
        workload: Workload name, SMT pair, or ``None``.
        branch_count/warmup_branches: Trace length knobs.
        seed: Model/attack seed for this job.
        trace_seed: Seed for synthetic trace generation.  Kept separate from
            ``seed`` so per-job model seeding never changes the trace every
            model of a workload must share.
        params: Extra kind-specific parameters as a sorted key/value tuple.
    """

    index: int
    kind: str
    model: ModelSpec | None = None
    workload: WorkloadKey | None = None
    branch_count: int = 0
    warmup_branches: int = 0
    seed: int = 0
    trace_seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def model_label(self) -> str:
        return self.model.display_label if self.model is not None else ""

    @property
    def workload_name(self) -> str:
        return workload_label(self.workload) if self.workload is not None else ""

    def param(self, key: str, default: Any = None) -> Any:
        for name, value in self.params:
            if name == key:
                return value
        return default


def as_spec(model: ModelSpec | str) -> ModelSpec:
    return model if isinstance(model, ModelSpec) else ModelSpec(name=model)


@dataclass(slots=True)
class SimulationGrid:
    """A declarative (models × workloads × scale) experiment.

    Attributes:
        kind: Job kind every cell runs (``"trace"``, ``"cpu"`` or ``"smt"``).
        models: Registry names or specs; instantiated fresh per job.
        workloads: Workload names, or ``(a, b)`` pairs when ``kind="smt"``.
        scale: Fidelity knobs; ``scale.workload_limit`` truncates
            ``workloads`` at expansion time.
        seed_policy: ``"shared"`` gives every job the grid seed (the paper's
            drivers compare models under one seed); ``"per-job"`` derives a
            distinct deterministic seed per (model, workload) cell.
        params: Extra parameters copied onto every job.
    """

    kind: str = "trace"
    models: Sequence[ModelSpec | str] = ()
    workloads: Sequence[WorkloadKey] = ()
    scale: ExperimentScale = field(default_factory=ExperimentScale)
    seed_policy: str = "shared"
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}")
        if self.seed_policy not in ("shared", "per-job"):
            raise ValueError(f"unknown seed policy {self.seed_policy!r}")

    def effective_workloads(self) -> list[WorkloadKey]:
        # Deduplicate (first occurrence wins) so overlapping selections cannot
        # expand into duplicate grid cells.
        workloads = list(dict.fromkeys(self.workloads))
        if self.scale.workload_limit is not None:
            workloads = workloads[: self.scale.workload_limit]
        return workloads

    def jobs(self, start_index: int = 0) -> list[Job]:
        """Expand the grid into jobs (workload-major, matching driver loops)."""
        shared_params = tuple(sorted(self.params.items()))
        jobs: list[Job] = []
        index = start_index
        for workload in self.effective_workloads():
            for model in self.models:
                spec = as_spec(model)
                if self.seed_policy == "shared":
                    seed = self.scale.seed
                else:
                    seed = derive_job_seed(
                        self.scale.seed, spec.display_label, workload_label(workload)
                    )
                jobs.append(
                    Job(
                        index=index,
                        kind=self.kind,
                        model=spec,
                        workload=workload,
                        branch_count=self.scale.branch_count,
                        warmup_branches=self.scale.warmup_branches,
                        seed=seed,
                        trace_seed=self.scale.seed,
                        params=shared_params,
                    )
                )
                index += 1
        return jobs
