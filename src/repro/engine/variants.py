"""Ablation variants of the STBPU design, registered as ``"stbpu_variant"``.

The full design combines keyed remapping (ψ), stored-target encryption (ϕ)
and event-triggered ST re-randomization.  This factory builds an STBPU with
any subset of the three mechanisms disabled, which is what the ablation
experiment sweeps.
"""

from __future__ import annotations

from repro.bpu.common import StructureSizes
from repro.bpu.composite import CompositeBPU
from repro.bpu.mapping import BaselineMappingProvider, IdentityTargetCodec
from repro.bpu.pht import SKLConditionalPredictor
from repro.core.encryption import XorTargetCodec
from repro.core.monitoring import MonitorConfig
from repro.core.remapping import STMappingProvider
from repro.core.secret_token import TokenGenerator
from repro.core.stbpu import STBPU

#: Effectively-disabled re-randomization (counters never reach zero in our runs).
_NO_RERANDOMIZATION = MonitorConfig(
    misprediction_threshold=1 << 30,
    eviction_threshold=1 << 30,
    direction_misprediction_threshold=None,
)


def variant_name(remapping: bool, encryption: bool, rerandomization: bool) -> str:
    parts = [
        "remap" if remapping else "no-remap",
        "enc" if encryption else "no-enc",
        "rerand" if rerandomization else "no-rerand",
    ]
    return "STBPU[" + ",".join(parts) + "]"


def make_stbpu_variant(
    seed: int = 0,
    remapping: bool = True,
    encryption: bool = True,
    rerandomization: bool = True,
) -> STBPU:
    """Build an STBPU with individual mechanisms enabled or disabled."""
    sizes = StructureSizes()
    generator = TokenGenerator(seed)
    token = generator.next_token()
    mapping = STMappingProvider(token, sizes) if remapping else BaselineMappingProvider(sizes)
    codec = XorTargetCodec(token) if encryption else IdentityTargetCodec()
    direction = SKLConditionalPredictor(sizes, mapping)
    inner = CompositeBPU(direction, sizes=sizes, mapping=mapping, codec=codec,
                         name="ablation-inner")
    monitor = (MonitorConfig(41_500, 26_500, None) if rerandomization
               else _NO_RERANDOMIZATION)

    # STBPU expects token-aware mapping/codec; wrap pass-throughs when disabled.
    class _StaticMapping(STMappingProvider):
        """Keyed-provider facade over the baseline mapping (remapping disabled)."""

        def __init__(self):
            super().__init__(token, sizes)
            self._base = BaselineMappingProvider(sizes)

        def set_token(self, new_token):  # re-randomization has nothing to re-key
            super().set_token(new_token)

        def btb_mode1(self, ip):
            return self._base.btb_mode1(ip)

        def btb_mode2(self, ip, bhb):
            return self._base.btb_mode2(ip, bhb)

        def pht_index_1level(self, ip):
            return self._base.pht_index_1level(ip)

        def pht_index_2level(self, ip, ghr):
            return self._base.pht_index_2level(ip, ghr)

        def tage_index(self, ip, folded_history, table, index_bits):
            return self._base.tage_index(ip, folded_history, table, index_bits)

        def tage_tag(self, ip, folded_history, table, tag_bits):
            return self._base.tage_tag(ip, folded_history, table, tag_bits)

        def perceptron_index(self, ip, table_size):
            return self._base.perceptron_index(ip, table_size)

        def vector_maps(self):
            # Every scalar method above delegates to the baseline provider,
            # so the baseline's vector maps are this facade's exact mirror.
            return self._base.vector_maps()

    class _StaticCodec(XorTargetCodec):
        """ϕ-codec facade that stores targets verbatim (encryption disabled)."""

        token_dependent = False

        def encode(self, target):
            return target & 0xFFFF_FFFF

        def decode(self, stored):
            return stored & 0xFFFF_FFFF

        def vector_encode(self, targets):
            import numpy as np

            return targets & np.uint64(0xFFFF_FFFF)

    if not remapping:
        mapping_for_stbpu = _StaticMapping()
        direction.mapping = mapping_for_stbpu
        inner.mapping = mapping_for_stbpu
        inner.btb.mapping = mapping_for_stbpu
    else:
        mapping_for_stbpu = mapping

    if not encryption:
        codec_for_stbpu = _StaticCodec(token)
        inner.codec = codec_for_stbpu
        inner.btb.codec = codec_for_stbpu
        inner.rsb.codec = codec_for_stbpu
    else:
        codec_for_stbpu = codec

    return STBPU(inner, mapping_for_stbpu, codec_for_stbpu,
                 token_generator=generator, monitor_config=monitor,
                 name=variant_name(remapping, encryption, rerandomization))
