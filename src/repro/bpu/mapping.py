"""Address-mapping providers and stored-target codecs.

The baseline BPU locates entries with deterministic compression functions of
the (truncated) branch address — the functions labelled 1–5 in Figure 1 of the
paper.  STBPU replaces them with keyed remappings ``R1..R4, Rt, Rp`` and
encrypts stored targets.  To keep the prediction logic untouched (the paper's
central design property), every predictor structure asks a
:class:`MappingProvider` for its index/tag/offset bits and a
:class:`TargetCodec` to encode/decode stored targets, and the STBPU layer
swaps in keyed implementations of both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.bpu.common import StructureSizes, fold_bits
from repro.trace.branch import STORED_TARGET_BITS, STORED_TARGET_MASK

#: Number of low virtual-address bits the *baseline* hardware actually uses
#: (the paper notes only 30 of the 48 bits are utilised, enabling
#: same-address-space collisions).
BASELINE_ADDRESS_BITS = 32


@dataclass(frozen=True, slots=True)
class BTBLookupKey:
    """Index / tag / offset triple used to locate a BTB entry."""

    index: int
    tag: int
    offset: int

    @property
    def match_field(self) -> tuple[int, int]:
        """The (tag, offset) pair compared after the set has been selected."""
        return (self.tag, self.offset)


class MappingProvider(abc.ABC):
    """Computes the structure-addressing bits for every BPU lookup."""

    def __init__(self, sizes: StructureSizes | None = None):
        self.sizes = sizes if sizes is not None else StructureSizes()

    @abc.abstractmethod
    def btb_mode1(self, ip: int) -> BTBLookupKey:
        """BTB addressing mode 1: index/tag/offset from the branch ip only."""

    @abc.abstractmethod
    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        """BTB addressing mode 2: ip plus branch-history buffer (indirect branches)."""

    @abc.abstractmethod
    def pht_index_1level(self, ip: int) -> int:
        """PHT addressing mode i: simple per-address index."""

    @abc.abstractmethod
    def pht_index_2level(self, ip: int, ghr: int) -> int:
        """PHT addressing mode ii: gshare-style address ⊕ global-history index."""

    @abc.abstractmethod
    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        """Index into TAGE tagged table ``table`` (geometric history lengths)."""

    @abc.abstractmethod
    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        """Partial tag for TAGE tagged table ``table``."""

    @abc.abstractmethod
    def perceptron_index(self, ip: int, table_size: int) -> int:
        """Row selection for the perceptron weight table."""


class TargetCodec(abc.ABC):
    """Encodes targets before they are stored in the BTB/RSB and decodes them
    on the way out (function 5 in Figure 1)."""

    @abc.abstractmethod
    def encode(self, target: int) -> int:
        """Map a 32-bit target slice to the value actually stored."""

    @abc.abstractmethod
    def decode(self, stored: int) -> int:
        """Map a stored 32-bit value back to a target slice."""

    def extend(self, stored: int, ip: int) -> int:
        """Rebuild a 48-bit predicted target from a stored entry and the branch ip.

        The baseline combines the 16 upper bits of the branch instruction
        pointer with the 32 decoded low bits (paper Section II-A).
        """
        high = ip >> STORED_TARGET_BITS
        return (high << STORED_TARGET_BITS) | (self.decode(stored) & STORED_TARGET_MASK)


class BaselineMappingProvider(MappingProvider):
    """Deterministic XOR-folding maps modelling the unprotected Skylake BPU.

    Only :data:`BASELINE_ADDRESS_BITS` low bits of the virtual address feed
    the functions, reproducing the truncation that makes same-address-space
    collisions possible.
    """

    def _truncate(self, ip: int) -> int:
        return ip & ((1 << BASELINE_ADDRESS_BITS) - 1)

    def btb_mode1(self, ip: int) -> BTBLookupKey:
        sizes = self.sizes
        ip = self._truncate(ip)
        offset = ip & ((1 << sizes.btb_offset_bits) - 1)
        index = (ip >> sizes.btb_offset_bits) & (sizes.btb_sets - 1)
        tag_source = ip >> (sizes.btb_offset_bits + sizes.btb_index_bits)
        tag = fold_bits(tag_source, BASELINE_ADDRESS_BITS, sizes.btb_tag_bits)
        return BTBLookupKey(index=index, tag=tag, offset=offset)

    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        sizes = self.sizes
        base = self.btb_mode1(ip)
        history_tag = fold_bits(bhb, sizes.bhb_bits, sizes.btb_tag_bits)
        history_index = fold_bits(bhb, sizes.bhb_bits, sizes.btb_index_bits)
        return BTBLookupKey(
            index=(base.index ^ history_index) & (sizes.btb_sets - 1),
            tag=(base.tag ^ history_tag) & ((1 << sizes.btb_tag_bits) - 1),
            offset=base.offset,
        )

    def pht_index_1level(self, ip: int) -> int:
        sizes = self.sizes
        return fold_bits(self._truncate(ip) >> 1, BASELINE_ADDRESS_BITS, sizes.pht_index_bits)

    def pht_index_2level(self, ip: int, ghr: int) -> int:
        sizes = self.sizes
        base = self.pht_index_1level(ip)
        history = fold_bits(ghr, sizes.ghr_bits, sizes.pht_index_bits)
        return (base ^ history) & (sizes.pht_entries - 1)

    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        ip = self._truncate(ip)
        mixed = ip ^ (ip >> index_bits) ^ folded_history ^ (table * 0x9E5)
        return mixed & ((1 << index_bits) - 1)

    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        ip = self._truncate(ip)
        mixed = ip ^ (folded_history << 1) ^ (table * 0x1F3)
        return fold_bits(mixed, BASELINE_ADDRESS_BITS, tag_bits)

    def perceptron_index(self, ip: int, table_size: int) -> int:
        return fold_bits(self._truncate(ip) >> 2, BASELINE_ADDRESS_BITS,
                         (table_size - 1).bit_length()) % table_size


class FullAddressMappingProvider(BaselineMappingProvider):
    """Mapping provider for the paper's *conservative* protection model.

    The conservative model stores full, untruncated 48-bit addresses so that
    no two distinct branches can alias inside a structure.  We model this by
    feeding all 48 bits into the index/tag functions and disabling tag
    folding; its capacity cost is modelled separately in
    :mod:`repro.bpu.protections`.
    """

    def _truncate(self, ip: int) -> int:
        return ip


class IdentityTargetCodec(TargetCodec):
    """Baseline stored-target handling: the 32 low target bits are stored verbatim."""

    def encode(self, target: int) -> int:
        return target & STORED_TARGET_MASK

    def decode(self, stored: int) -> int:
        return stored & STORED_TARGET_MASK
