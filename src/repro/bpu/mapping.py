"""Address-mapping providers and stored-target codecs.

The baseline BPU locates entries with deterministic compression functions of
the (truncated) branch address — the functions labelled 1–5 in Figure 1 of the
paper.  STBPU replaces them with keyed remappings ``R1..R4, Rt, Rp`` and
encrypts stored targets.  To keep the prediction logic untouched (the paper's
central design property), every predictor structure asks a
:class:`MappingProvider` for its index/tag/offset bits and a
:class:`TargetCodec` to encode/decode stored targets, and the STBPU layer
swaps in keyed implementations of both.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.bpu.common import StructureSizes, fold_bits
from repro.trace.branch import STORED_TARGET_BITS, STORED_TARGET_MASK

#: Number of low virtual-address bits the *baseline* hardware actually uses
#: (the paper notes only 30 of the 48 bits are utilised, enabling
#: same-address-space collisions).
BASELINE_ADDRESS_BITS = 32


@dataclass(frozen=True, slots=True)
class BTBLookupKey:
    """Index / tag / offset triple used to locate a BTB entry."""

    index: int
    tag: int
    offset: int

    @property
    def match_field(self) -> tuple[int, int]:
        """The (tag, offset) pair compared after the set has been selected."""
        return (self.tag, self.offset)


class MappingProvider(abc.ABC):
    """Computes the structure-addressing bits for every BPU lookup."""

    __slots__ = ("sizes",)

    def __init__(self, sizes: StructureSizes | None = None):
        self.sizes = sizes if sizes is not None else StructureSizes()

    @abc.abstractmethod
    def btb_mode1(self, ip: int) -> BTBLookupKey:
        """BTB addressing mode 1: index/tag/offset from the branch ip only."""

    @abc.abstractmethod
    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        """BTB addressing mode 2: ip plus branch-history buffer (indirect branches)."""

    @abc.abstractmethod
    def pht_index_1level(self, ip: int) -> int:
        """PHT addressing mode i: simple per-address index."""

    @abc.abstractmethod
    def pht_index_2level(self, ip: int, ghr: int) -> int:
        """PHT addressing mode ii: gshare-style address ⊕ global-history index."""

    @abc.abstractmethod
    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        """Index into TAGE tagged table ``table`` (geometric history lengths)."""

    @abc.abstractmethod
    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        """Partial tag for TAGE tagged table ``table``."""

    @abc.abstractmethod
    def perceptron_index(self, ip: int, table_size: int) -> int:
        """Row selection for the perceptron weight table."""

    def vector_maps(self) -> "object | None":
        """Array-at-a-time view of this provider for the vector replay backend.

        Returns an object exposing ``pht1(ips, contexts)``,
        ``pht2(ips, ghrs, contexts)``, ``btb1(ips, contexts)`` and
        ``btb2(ips, bhbs, contexts)`` — NumPy equivalents of the scalar
        methods — plus a ``token_dependent`` flag, or ``None`` when no exact
        vectorisation exists (the simulators then fall back to the scalar
        replay loop).  Implementations gate on their *exact* class so that
        subclasses overriding scalar behaviour never inherit a mismatched
        vector view.
        """
        return None


class TargetCodec(abc.ABC):
    """Encodes targets before they are stored in the BTB/RSB and decodes them
    on the way out (function 5 in Figure 1)."""

    __slots__ = ()

    #: Whether encode/decode depend on a live secret token (the vector backend
    #: then refreshes its encoded-target arrays on every token change).
    token_dependent = False

    @abc.abstractmethod
    def encode(self, target: int) -> int:
        """Map a 32-bit target slice to the value actually stored."""

    @abc.abstractmethod
    def decode(self, stored: int) -> int:
        """Map a stored 32-bit value back to a target slice."""

    def extend(self, stored: int, ip: int) -> int:
        """Rebuild a 48-bit predicted target from a stored entry and the branch ip.

        The baseline combines the 16 upper bits of the branch instruction
        pointer with the 32 decoded low bits (paper Section II-A).
        """
        high = ip >> STORED_TARGET_BITS
        return (high << STORED_TARGET_BITS) | (self.decode(stored) & STORED_TARGET_MASK)

    def vector_encode(self, targets: "object") -> "object | None":
        """Array form of :meth:`encode` for the vector replay backend.

        ``targets`` is a ``uint64`` ndarray of (full) resolved targets; the
        result is the ndarray of values :meth:`encode` would store for each.
        Returns ``None`` when no exact vectorisation exists, in which case the
        simulators fall back to the scalar replay loop.  Implementations gate
        on their exact class (see :meth:`MappingProvider.vector_maps`); the
        vector backend additionally relies on :meth:`encode`/:meth:`decode`
        being inverse bijections on the stored-target domain, which holds for
        both built-in codecs.
        """
        return None


class BaselineMappingProvider(MappingProvider):
    """Deterministic XOR-folding maps modelling the unprotected Skylake BPU.

    Only :data:`BASELINE_ADDRESS_BITS` low bits of the virtual address feed
    the functions, reproducing the truncation that makes same-address-space
    collisions possible.

    The address-only maps (BTB mode 1 and the 1-level PHT index) are pure
    functions of the branch address, and hot branches repeat millions of
    times per replay, so both are memoised per instance.  The masks/shifts
    are precomputed once instead of being re-derived from the sizes on every
    lookup.
    """

    __slots__ = ("_btb_offset_mask", "_btb_index_mask", "_btb_tag_mask",
                 "_btb_tag_shift", "_pht_index_mask", "_pht_fold_mask",
                 "_ghr_two_chunk_fold", "_mode1_cache", "_pht1_cache")

    #: Entry bound for the per-instance memoisation of address-only maps.
    _CACHE_LIMIT = 1 << 18

    def __init__(self, sizes: StructureSizes | None = None):
        super().__init__(sizes)
        sizes = self.sizes
        self._btb_offset_mask = (1 << sizes.btb_offset_bits) - 1
        self._btb_index_mask = sizes.btb_sets - 1
        self._btb_tag_mask = (1 << sizes.btb_tag_bits) - 1
        self._btb_tag_shift = sizes.btb_offset_bits + sizes.btb_index_bits
        self._pht_index_mask = sizes.pht_entries - 1
        # The GHR fold reduces ghr_bits down to pht_index_bits; when at most
        # two chunks are involved (the Skylake dimensions: 18 -> 14 bits) the
        # fold collapses to one shift+xor, inlined in pht_index_2level.  The
        # chunk mask is the fold's output width — distinct from
        # _pht_index_mask, which only coincides with it when pht_entries is a
        # power of two.
        self._pht_fold_mask = (1 << sizes.pht_index_bits) - 1
        self._ghr_two_chunk_fold = sizes.ghr_bits <= 2 * sizes.pht_index_bits
        self._mode1_cache: dict[int, BTBLookupKey] = {}
        self._pht1_cache: dict[int, int] = {}

    def _truncate(self, ip: int) -> int:
        return ip & ((1 << BASELINE_ADDRESS_BITS) - 1)

    def btb_mode1(self, ip: int) -> BTBLookupKey:
        cached = self._mode1_cache.get(ip)
        if cached is not None:
            return cached
        sizes = self.sizes
        truncated = self._truncate(ip)
        offset = truncated & self._btb_offset_mask
        index = (truncated >> sizes.btb_offset_bits) & self._btb_index_mask
        tag_source = truncated >> self._btb_tag_shift
        tag = fold_bits(tag_source, BASELINE_ADDRESS_BITS, sizes.btb_tag_bits)
        key = BTBLookupKey(index=index, tag=tag, offset=offset)
        if len(self._mode1_cache) >= self._CACHE_LIMIT:
            self._mode1_cache.clear()
        self._mode1_cache[ip] = key
        return key

    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        sizes = self.sizes
        base = self.btb_mode1(ip)
        history_tag = fold_bits(bhb, sizes.bhb_bits, sizes.btb_tag_bits)
        history_index = fold_bits(bhb, sizes.bhb_bits, sizes.btb_index_bits)
        return BTBLookupKey(
            index=(base.index ^ history_index) & self._btb_index_mask,
            tag=(base.tag ^ history_tag) & self._btb_tag_mask,
            offset=base.offset,
        )

    def pht_index_1level(self, ip: int) -> int:
        cached = self._pht1_cache.get(ip)
        if cached is not None:
            return cached
        index = fold_bits(
            self._truncate(ip) >> 1, BASELINE_ADDRESS_BITS, self.sizes.pht_index_bits
        )
        if len(self._pht1_cache) >= self._CACHE_LIMIT:
            self._pht1_cache.clear()
        self._pht1_cache[ip] = index
        return index

    def pht_index_2level(self, ip: int, ghr: int) -> int:
        base = self._pht1_cache.get(ip)
        if base is None:
            base = self.pht_index_1level(ip)
        if self._ghr_two_chunk_fold:
            ghr &= (1 << self.sizes.ghr_bits) - 1
            history = (ghr & self._pht_fold_mask) ^ (ghr >> self.sizes.pht_index_bits)
        else:
            history = fold_bits(ghr, self.sizes.ghr_bits, self.sizes.pht_index_bits)
        return (base ^ history) & self._pht_index_mask

    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        ip = self._truncate(ip)
        mixed = ip ^ (ip >> index_bits) ^ folded_history ^ (table * 0x9E5)
        return mixed & ((1 << index_bits) - 1)

    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        ip = self._truncate(ip)
        mixed = ip ^ (folded_history << 1) ^ (table * 0x1F3)
        return fold_bits(mixed, BASELINE_ADDRESS_BITS, tag_bits)

    def perceptron_index(self, ip: int, table_size: int) -> int:
        return fold_bits(self._truncate(ip) >> 2, BASELINE_ADDRESS_BITS,
                         (table_size - 1).bit_length()) % table_size

    def vector_maps(self):
        if type(self) is not BaselineMappingProvider:
            return None
        return _BaselineVectorMaps(self, truncate_bits=BASELINE_ADDRESS_BITS)


def fold_bits_array(values: "object", input_bits: int, output_bits: int) -> "object":
    """Vector form of :func:`~repro.bpu.common.fold_bits` over a uint64 ndarray."""
    values = values & np.uint64((1 << input_bits) - 1)
    mask = np.uint64((1 << output_bits) - 1)
    folded = values & mask
    shifted = values >> np.uint64(output_bits)
    shift = np.uint64(output_bits)
    remaining = input_bits - output_bits
    while remaining > 0:
        folded = folded ^ (shifted & mask)
        shifted = shifted >> shift
        remaining -= output_bits
    return folded


class _BaselineVectorMaps:
    """NumPy mirror of :class:`BaselineMappingProvider` (and the full-address
    variant, which differs only in the truncation mask)."""

    __slots__ = ("provider", "sizes", "_truncate_mask")

    token_dependent = False

    def __init__(self, provider: "BaselineMappingProvider", truncate_bits: int):
        self.provider = provider
        self.sizes = provider.sizes
        self._truncate_mask = (1 << truncate_bits) - 1

    def _truncate(self, ips):
        return ips & np.uint64(self._truncate_mask)

    def pht1(self, ips, contexts=None):
        return fold_bits_array(
            self._truncate(ips) >> np.uint64(1),
            BASELINE_ADDRESS_BITS, self.sizes.pht_index_bits,
        )

    def pht2(self, ips, ghrs, contexts=None):
        provider = self.provider
        sizes = self.sizes
        base = self.pht1(ips)
        if provider._ghr_two_chunk_fold:
            ghrs = ghrs & np.uint64((1 << sizes.ghr_bits) - 1)
            history = (ghrs & np.uint64(provider._pht_fold_mask)) ^ (
                ghrs >> np.uint64(sizes.pht_index_bits))
        else:
            history = fold_bits_array(ghrs, sizes.ghr_bits, sizes.pht_index_bits)
        return (base ^ history) & np.uint64(provider._pht_index_mask)

    def btb1(self, ips, contexts=None):
        sizes = self.sizes
        truncated = self._truncate(ips)
        offset = truncated & np.uint64(self.provider._btb_offset_mask)
        index = (truncated >> np.uint64(sizes.btb_offset_bits)) & np.uint64(
            self.provider._btb_index_mask)
        tag = fold_bits_array(
            truncated >> np.uint64(self.provider._btb_tag_shift),
            BASELINE_ADDRESS_BITS, sizes.btb_tag_bits,
        )
        return index, (tag << np.uint64(sizes.btb_offset_bits)) | offset

    def btb2(self, ips, bhbs, contexts=None):
        sizes = self.sizes
        index, key = self.btb1(ips)
        offset_bits = np.uint64(sizes.btb_offset_bits)
        offset = key & np.uint64(self.provider._btb_offset_mask)
        tag = key >> offset_bits
        history_tag = fold_bits_array(bhbs, sizes.bhb_bits, sizes.btb_tag_bits)
        history_index = fold_bits_array(bhbs, sizes.bhb_bits, sizes.btb_index_bits)
        index = (index ^ history_index) & np.uint64(self.provider._btb_index_mask)
        tag = (tag ^ history_tag) & np.uint64(self.provider._btb_tag_mask)
        return index, (tag << offset_bits) | offset

    def tage_indices(self, ips, folded, table, index_bits, contexts=None):
        truncated = self._truncate(ips)
        mixed = (truncated ^ (truncated >> np.uint64(index_bits))
                 ^ folded
                 ^ np.asarray(table, dtype=np.uint64) * np.uint64(0x9E5))
        return mixed & np.uint64((1 << index_bits) - 1)

    def tage_tags(self, ips, folded, table, tag_bits, contexts=None):
        # The scalar tage_tag folds from BASELINE_ADDRESS_BITS even for the
        # full-address provider (only the truncation differs), mirrored here.
        mixed = (self._truncate(ips) ^ (folded << np.uint64(1))
                 ^ np.asarray(table, dtype=np.uint64) * np.uint64(0x1F3))
        return fold_bits_array(mixed, BASELINE_ADDRESS_BITS, tag_bits)

    def perceptron_rows(self, ips, table_size, contexts=None):
        folded = fold_bits_array(self._truncate(ips) >> np.uint64(2),
                                 BASELINE_ADDRESS_BITS,
                                 (table_size - 1).bit_length())
        return folded % np.uint64(table_size)


class FullAddressMappingProvider(BaselineMappingProvider):
    """Mapping provider for the paper's *conservative* protection model.

    The conservative model stores full, untruncated 48-bit addresses so that
    no two distinct branches can alias inside a structure.  We model this by
    feeding all 48 bits into the index/tag functions and disabling tag
    folding; its capacity cost is modelled separately in
    :mod:`repro.bpu.protections`.
    """

    __slots__ = ()

    def _truncate(self, ip: int) -> int:
        return ip

    def vector_maps(self):
        from repro.trace.branch import VIRTUAL_ADDRESS_BITS

        if type(self) is not FullAddressMappingProvider:
            return None
        return _BaselineVectorMaps(self, truncate_bits=VIRTUAL_ADDRESS_BITS)


class IdentityTargetCodec(TargetCodec):
    """Baseline stored-target handling: the 32 low target bits are stored verbatim."""

    __slots__ = ()

    def encode(self, target: int) -> int:
        return target & STORED_TARGET_MASK

    def decode(self, stored: int) -> int:
        return stored & STORED_TARGET_MASK

    def extend(self, stored: int, ip: int) -> int:
        # Identity decode inlined: stored values were masked on encode, so the
        # per-hit decode round-trip of the base implementation is skipped.
        return ((ip >> STORED_TARGET_BITS) << STORED_TARGET_BITS) | (
            stored & STORED_TARGET_MASK
        )

    def vector_encode(self, targets):
        if type(self) is not IdentityTargetCodec:
            return None
        return targets & np.uint64(STORED_TARGET_MASK)
