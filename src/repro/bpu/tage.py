"""TAGE-SC-L conditional direction predictor.

The paper demonstrates that STBPU composes with advanced predictors by
protecting TAGE-SC-L (8KB and 64KB configurations, Seznec's championship
predictor) and the Perceptron predictor.  This module implements a faithful
functional TAGE-SC-L:

* a bimodal base predictor,
* several partially tagged tables indexed with geometrically increasing
  global-history lengths (the TAGE core),
* a loop predictor (the "L") that captures constant-trip-count loops, and
* a small statistical corrector (the "SC") that can override the TAGE
  prediction when history-biased counters disagree confidently.

All index and tag computations are delegated to the installed
:class:`~repro.bpu.mapping.MappingProvider`, which is how the STBPU keyed
remapping ``Rt`` is applied without touching the prediction algorithm.

The vector backend replays this predictor through a guarded span stepper
(:class:`repro.sim.vector._TAGEStepper`) that precomputes per-span fold
registers, table indices/tags and tagged-entry hit bits with array kernels,
repairing the speculative hit bits when an allocation lands in a table
mid-span.  The stepper (and the closed-form fold in
:func:`repro.sim.vector._fold_values`, which must match
:class:`_IncrementalFold`) mirrors the update rules below exactly — any
semantic change here must be made there too, and is pinned by the
fast/vector state-parity suite (``tests/sim/test_vector_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.history import FoldedHistory, HistoryState
from repro.bpu.mapping import BaselineMappingProvider, MappingProvider


@dataclass(frozen=True, slots=True)
class TAGEConfig:
    """Size/shape parameters of one TAGE-SC-L instance."""

    name: str
    bimodal_entries: int
    tagged_table_entries: tuple[int, ...]
    tag_bits: tuple[int, ...]
    history_lengths: tuple[int, ...]
    counter_bits: int = 3
    useful_bits: int = 2
    use_loop_predictor: bool = True
    use_statistical_corrector: bool = True
    loop_entries: int = 64
    sc_table_entries: int = 1024
    sc_history_lengths: tuple[int, ...] = (3, 7, 15)
    useful_reset_period: int = 256 * 1024

    def __post_init__(self) -> None:
        lengths = (len(self.tagged_table_entries), len(self.tag_bits), len(self.history_lengths))
        if len(set(lengths)) != 1:
            raise ValueError("tagged table parameter tuples must have equal lengths")

    @property
    def table_count(self) -> int:
        return len(self.tagged_table_entries)


#: 8KB TAGE-SC-L configuration (paper: ``TAGE_SC_L_8KB``).
TAGE_SC_L_8KB = TAGEConfig(
    name="TAGE_SC_L_8KB",
    bimodal_entries=1 << 12,
    tagged_table_entries=(512, 512, 512, 512, 512, 512),
    tag_bits=(7, 7, 8, 8, 9, 9),
    history_lengths=(4, 9, 19, 40, 85, 180),
    loop_entries=32,
    sc_table_entries=512,
)

#: 64KB TAGE-SC-L configuration (paper: ``TAGE_SC_L_64KB``).
TAGE_SC_L_64KB = TAGEConfig(
    name="TAGE_SC_L_64KB",
    bimodal_entries=1 << 14,
    tagged_table_entries=(1024,) * 12,
    tag_bits=(8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13),
    history_lengths=(4, 7, 13, 23, 41, 73, 129, 229, 407, 640, 768, 1024),
    loop_entries=64,
    sc_table_entries=1024,
)


@dataclass(slots=True)
class _TaggedEntry:
    valid: bool = False
    tag: int = 0
    counter: int = 0  # signed prediction counter, range [-4, 3] for 3 bits
    useful: int = 0


class _IncrementalFold:
    """Circularly folded history register maintained incrementally.

    This is the standard TAGE implementation trick: instead of re-hashing the
    whole (possibly 1000-bit) global history on every prediction, each table
    keeps a ``folded_bits``-wide register updated in O(1) when one outcome
    enters the history and one leaves it.
    """

    __slots__ = ("history_length", "folded_bits", "value")

    def __init__(self, history_length: int, folded_bits: int):
        self.history_length = history_length
        self.folded_bits = max(1, folded_bits)
        self.value = 0

    def update(self, new_bit: int, old_bit: int) -> None:
        mask = (1 << self.folded_bits) - 1
        value = (self.value << 1) | new_bit
        value ^= old_bit << (self.history_length % self.folded_bits)
        value ^= value >> self.folded_bits
        self.value = value & mask

    def reset(self) -> None:
        self.value = 0


@dataclass(slots=True)
class _LoopEntry:
    tag: int = 0
    past_iterations: int = 0
    current_iterations: int = 0
    confidence: int = 0
    valid: bool = False


@dataclass(slots=True)
class TAGEPrediction:
    """Prediction state threaded from :meth:`TAGEPredictor.predict` to ``update``."""

    taken: bool
    provider_table: int | None
    provider_index: int
    alt_taken: bool
    alt_table: int | None
    alt_index: int
    bimodal_index: int
    tagged_indices: tuple[int, ...]
    tagged_tags: tuple[int, ...]
    tage_taken: bool
    loop_hit: bool = False
    loop_taken: bool = False
    loop_index: int = 0
    sc_sum: int = 0
    sc_used: bool = False
    sc_indices: tuple[int, ...] = ()


class TAGEPredictor:
    """Functional TAGE-SC-L direction predictor."""

    __slots__ = (
        "config", "name", "sizes", "mapping", "_bimodal", "_tables",
        "_index_folds", "_tag_folds", "_table_index_bits", "_max_history",
        "_ghist", "_use_alt_on_na", "_loop_table", "_sc_tables", "_sc_folds",
        "_sc_threshold", "_access_count",
    )

    def __init__(
        self,
        config: TAGEConfig = TAGE_SC_L_64KB,
        mapping: MappingProvider | None = None,
        sizes: StructureSizes | None = None,
    ):
        self.config = config
        self.name = config.name
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        self._bimodal = [0] * config.bimodal_entries  # 2-bit counters stored as 0..3
        self._tables: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(entries)] for entries in config.tagged_table_entries
        ]
        self._index_folds = [
            _IncrementalFold(h, (entries - 1).bit_length())
            for h, entries in zip(config.history_lengths, config.tagged_table_entries)
        ]
        self._tag_folds = [
            _IncrementalFold(h, bits)
            for h, bits in zip(config.history_lengths, config.tag_bits)
        ]
        self._table_index_bits = tuple(
            (entries - 1).bit_length() for entries in config.tagged_table_entries
        )
        self._max_history = max(config.history_lengths)
        #: Private global-history bit list (newest at the end), bounded in length.
        self._ghist: list[int] = []
        self._use_alt_on_na = 8  # 4-bit counter, midpoint
        self._loop_table = [_LoopEntry() for _ in range(config.loop_entries)]
        self._sc_tables = [
            [0] * config.sc_table_entries for _ in config.sc_history_lengths
        ]
        self._sc_folds = tuple(
            FoldedHistory(length, 10) for length in config.sc_history_lengths
        )
        self._sc_threshold = 6
        self._access_count = 0

    # ----------------------------------------------------------------- helpers

    def _bimodal_index(self, ip: int) -> int:
        return self.mapping.pht_index_1level(ip) % self.config.bimodal_entries

    def _counter_limits(self) -> tuple[int, int]:
        bits = self.config.counter_bits
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1

    def _compute_indices(self, ip: int, history: HistoryState) -> tuple[tuple[int, ...], tuple[int, ...]]:
        del history  # TAGE keeps its own folded history registers.
        mapping = self.mapping
        tage_index = mapping.tage_index
        tage_tag = mapping.tage_tag
        entries_per_table = self.config.tagged_table_entries
        tag_bits = self.config.tag_bits
        index_bits = self._table_index_bits
        index_folds = self._index_folds
        tag_folds = self._tag_folds
        indices = []
        tags = []
        for table, entries in enumerate(entries_per_table):
            indices.append(
                tage_index(ip, index_folds[table].value, table, index_bits[table]) % entries
            )
            tags.append(tage_tag(ip, tag_folds[table].value, table, tag_bits[table]))
        return tuple(indices), tuple(tags)

    def _push_history(self, taken: bool) -> None:
        """Advance the private global history and every folded register by one bit."""
        new_bit = int(taken)
        history = self._ghist
        history.append(new_bit)
        length = len(history)
        for index_fold, tag_fold in zip(self._index_folds, self._tag_folds):
            depth = index_fold.history_length
            old_bit = history[length - 1 - depth] if length > depth else 0
            index_fold.update(new_bit, old_bit)
            tag_fold.update(new_bit, old_bit)
        if length > self._max_history + 64:
            del history[: length - self._max_history]

    # ----------------------------------------------------------------- predict

    def predict(self, ip: int, history: HistoryState) -> TAGEPrediction:
        self._access_count += 1
        config = self.config
        bimodal_index = self._bimodal_index(ip)
        bimodal_taken = self._bimodal[bimodal_index] >= 2
        indices, tags = self._compute_indices(ip, history)

        provider_table: int | None = None
        alt_table: int | None = None
        for table in range(config.table_count - 1, -1, -1):
            entry = self._tables[table][indices[table]]
            if entry.valid and entry.tag == tags[table]:
                if provider_table is None:
                    provider_table = table
                elif alt_table is None:
                    alt_table = table
                    break

        if provider_table is not None:
            provider_entry = self._tables[provider_table][indices[provider_table]]
            provider_taken = provider_entry.counter >= 0
            if alt_table is not None:
                alt_entry = self._tables[alt_table][indices[alt_table]]
                alt_taken = alt_entry.counter >= 0
                alt_index = indices[alt_table]
            else:
                alt_taken = bimodal_taken
                alt_index = bimodal_index
            # Newly allocated, weak entries are less trustworthy than the alternate.
            weak = provider_entry.counter in (-1, 0) and provider_entry.useful == 0
            if weak and self._use_alt_on_na >= 8:
                tage_taken = alt_taken
            else:
                tage_taken = provider_taken
            provider_index = indices[provider_table]
        else:
            tage_taken = bimodal_taken
            alt_taken = bimodal_taken
            alt_index = bimodal_index
            provider_index = bimodal_index

        prediction = TAGEPrediction(
            taken=tage_taken,
            provider_table=provider_table,
            provider_index=provider_index,
            alt_taken=alt_taken,
            alt_table=alt_table,
            alt_index=alt_index,
            bimodal_index=bimodal_index,
            tagged_indices=indices,
            tagged_tags=tags,
            tage_taken=tage_taken,
        )

        if config.use_loop_predictor:
            self._apply_loop_predictor(ip, prediction)
        if config.use_statistical_corrector:
            self._apply_statistical_corrector(ip, history, prediction)
        return prediction

    def _loop_index(self, ip: int) -> int:
        return (ip >> 2) % self.config.loop_entries

    def _apply_loop_predictor(self, ip: int, prediction: TAGEPrediction) -> None:
        index = self._loop_index(ip)
        entry = self._loop_table[index]
        prediction.loop_index = index
        tag = (ip >> 8) & 0x3FF
        if entry.valid and entry.tag == tag and entry.confidence >= 3:
            prediction.loop_hit = True
            prediction.loop_taken = entry.current_iterations + 1 < entry.past_iterations
            prediction.taken = prediction.loop_taken

    def _sc_index(self, ip: int, history: HistoryState, component: int) -> int:
        folded = self._sc_folds[component].fold(history.outcomes)
        mixed = (ip >> 2) ^ (folded * 3) ^ (component * 0x61)
        return mixed % self.config.sc_table_entries

    def _apply_statistical_corrector(
        self, ip: int, history: HistoryState, prediction: TAGEPrediction
    ) -> None:
        indices = tuple(
            self._sc_index(ip, history, component)
            for component in range(len(self.config.sc_history_lengths))
        )
        prediction.sc_indices = indices
        total = sum(
            table[index] for table, index in zip(self._sc_tables, indices)
        )
        bias = 1 if prediction.taken else -1
        total += 2 * bias
        prediction.sc_sum = total
        if abs(total) >= self._sc_threshold and (total >= 0) != prediction.taken:
            prediction.sc_used = True
            prediction.taken = total >= 0

    # ------------------------------------------------------------------ update

    def update(self, prediction: TAGEPrediction, taken: bool, ip: int = 0) -> None:
        config = self.config
        low, high = self._counter_limits()

        # Loop predictor update.
        if config.use_loop_predictor:
            self._update_loop_predictor(ip, prediction, taken)

        # Statistical corrector update (trained when it participated or was close).
        if config.use_statistical_corrector and prediction.sc_indices:
            if prediction.sc_used or abs(prediction.sc_sum) < self._sc_threshold * 2:
                direction = 1 if taken else -1
                for table, index in zip(self._sc_tables, prediction.sc_indices):
                    table[index] = max(-31, min(31, table[index] + direction))

        # use_alt_on_na bookkeeping.
        if prediction.provider_table is not None:
            provider_entry = self._tables[prediction.provider_table][prediction.provider_index]
            weak = provider_entry.counter in (-1, 0) and provider_entry.useful == 0
            if weak and prediction.tage_taken != prediction.alt_taken:
                if prediction.alt_taken == taken:
                    self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
                else:
                    self._use_alt_on_na = max(0, self._use_alt_on_na - 1)

        # Provider counter update.
        if prediction.provider_table is not None:
            entry = self._tables[prediction.provider_table][prediction.provider_index]
            entry.counter = self._update_signed(entry.counter, taken, low, high)
            if prediction.tage_taken != prediction.alt_taken:
                if prediction.tage_taken == taken:
                    entry.useful = min((1 << config.useful_bits) - 1, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)
        else:
            value = self._bimodal[prediction.bimodal_index]
            self._bimodal[prediction.bimodal_index] = (
                min(3, value + 1) if taken else max(0, value - 1)
            )

        # Allocation of a new entry on a TAGE misprediction.
        if prediction.tage_taken != taken:
            self._allocate(prediction, taken)

        # Periodic graceful reset of useful counters.
        if self._access_count % config.useful_reset_period == 0:
            for table in self._tables:
                for entry in table:
                    entry.useful >>= 1

        # Advance the private speculative history by this branch's outcome.
        self._push_history(taken)

    @staticmethod
    def _update_signed(counter: int, taken: bool, low: int, high: int) -> int:
        return min(high, counter + 1) if taken else max(low, counter - 1)

    def _allocate(self, prediction: TAGEPrediction, taken: bool) -> None:
        start = (prediction.provider_table + 1) if prediction.provider_table is not None else 0
        for table in range(start, self.config.table_count):
            entry = self._tables[table][prediction.tagged_indices[table]]
            if not entry.valid or entry.useful == 0:
                entry.valid = True
                entry.tag = prediction.tagged_tags[table]
                entry.counter = 0 if taken else -1
                entry.useful = 0
                return
        # No free entry: decay usefulness along the allocation path.
        for table in range(start, self.config.table_count):
            entry = self._tables[table][prediction.tagged_indices[table]]
            entry.useful = max(0, entry.useful - 1)

    def _update_loop_predictor(self, ip: int, prediction: TAGEPrediction, taken: bool) -> None:
        entry = self._loop_table[prediction.loop_index]
        tag = (ip >> 8) & 0x3FF
        if entry.valid and entry.tag == tag:
            if taken:
                entry.current_iterations += 1
            else:
                if entry.current_iterations == entry.past_iterations:
                    entry.confidence = min(7, entry.confidence + 1)
                else:
                    entry.past_iterations = entry.current_iterations
                    entry.confidence = 0
                entry.current_iterations = 0
        elif not taken:
            # A loop exit on an unknown branch seeds a new loop entry.
            if not entry.valid or entry.confidence == 0:
                entry.valid = True
                entry.tag = tag
                entry.past_iterations = entry.current_iterations = 0
                entry.confidence = 0

    # ------------------------------------------------------------------- admin

    def flush(self) -> None:
        for index in range(len(self._bimodal)):
            self._bimodal[index] = 1
        for table in self._tables:
            for entry in table:
                entry.valid = False
                entry.tag = 0
                entry.counter = 0
                entry.useful = 0
        for entry in self._loop_table:
            entry.valid = False
            entry.confidence = 0
            entry.current_iterations = 0
            entry.past_iterations = 0
        for table in self._sc_tables:
            for index in range(len(table)):
                table[index] = 0
        for index_fold, tag_fold in zip(self._index_folds, self._tag_folds):
            index_fold.reset()
            tag_fold.reset()
        self._ghist.clear()
        self._use_alt_on_na = 8
