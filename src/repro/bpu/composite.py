"""Composite BPU model: direction predictor + BTB + RSB + history registers.

This is the full front-end predictor the simulators drive.  A direction
component (SKLCond hybrid, TAGE-SC-L, or Perceptron) predicts conditional
branches; the BTB predicts targets (mode 1 for direct/conditional branches,
mode 2 with the BHB for indirect branches); the RSB predicts returns, falling
back to the indirect path on underflow.  The composite also performs all the
training/update traffic and reports the micro-events (mispredictions, BTB
evictions, RSB underflows) that both the evaluation metrics and the STBPU
monitoring hardware consume.
"""

from __future__ import annotations

from typing import Protocol

from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.common import (
    AccessResult,
    BranchPredictorModel,
    Prediction,
    StructureSizes,
)
from repro.bpu.history import HistoryState
from repro.bpu.mapping import (
    BaselineMappingProvider,
    IdentityTargetCodec,
    MappingProvider,
    TargetCodec,
)
from repro.bpu.pht import SKLConditionalPredictor
from repro.bpu.rsb import ReturnStackBuffer
from repro.trace.branch import BranchRecord, BranchType, PrivilegeMode


class DirectionComponent(Protocol):
    """Minimal interface a conditional direction predictor must provide."""

    name: str

    def predict(self, ip: int, history: HistoryState) -> object: ...

    def update(self, prediction: object, taken: bool, ip: int = 0) -> None: ...

    def flush(self) -> None: ...


class CompositeBPU(BranchPredictorModel):
    """A complete, unprotected branch prediction unit.

    Args:
        direction: Conditional direction component (SKLCond, TAGE, Perceptron).
        sizes: Structure dimensions.
        mapping: Address-mapping provider shared by the BTB and the direction
            component's own mapping (callers usually construct both with the
            same provider).
        codec: Stored-target codec shared by BTB and RSB.
        name: Model label used in experiment output.
        btb_capacity_scale: Fractional BTB capacity, used by the conservative
            protection model.
    """

    def __init__(
        self,
        direction: DirectionComponent,
        sizes: StructureSizes | None = None,
        mapping: MappingProvider | None = None,
        codec: TargetCodec | None = None,
        name: str | None = None,
        btb_capacity_scale: float = 1.0,
    ):
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        self.codec = codec if codec is not None else IdentityTargetCodec()
        self.direction = direction
        self.btb = BranchTargetBuffer(
            self.sizes, self.mapping, self.codec, capacity_scale=btb_capacity_scale
        )
        self.rsb = ReturnStackBuffer(self.sizes.rsb_entries, self.codec)
        self.history = HistoryState()
        self.history.ghr.bits = self.sizes.ghr_bits
        self.history.bhb.bits = self.sizes.bhb_bits
        self.name = name if name is not None else f"composite-{direction.name}"

    # ------------------------------------------------------------------ access

    def access(self, branch: BranchRecord) -> AccessResult:
        prediction, direction_state, rsb_underflow = self._predict(branch)
        result = self._resolve(branch, prediction, rsb_underflow)
        self._train(branch, prediction, direction_state)
        return result

    def _predict(self, branch: BranchRecord) -> tuple[Prediction, object | None, bool]:
        branch_type = branch.branch_type
        rsb_underflow = False
        direction_state: object | None = None

        if branch_type.is_conditional:
            direction_state = self.direction.predict(branch.ip, self.history)
            predicted_taken = direction_state.taken
            if predicted_taken:
                lookup = self.btb.lookup(branch.ip)
                if lookup.hit:
                    return (
                        Prediction(True, lookup.predicted_target, "btb-mode1"),
                        direction_state,
                        False,
                    )
                return Prediction(True, None, "static"), direction_state, False
            return Prediction(False, branch.fall_through, "static"), direction_state, False

        if branch_type in (BranchType.DIRECT_JUMP, BranchType.DIRECT_CALL):
            lookup = self.btb.lookup(branch.ip)
            if lookup.hit:
                return Prediction(True, lookup.predicted_target, "btb-mode1"), None, False
            return Prediction(True, None, "static"), None, False

        if branch_type in (BranchType.INDIRECT_JUMP, BranchType.INDIRECT_CALL):
            lookup = self.btb.lookup(branch.ip, self.history.bhb.snapshot())
            if lookup.hit:
                return Prediction(True, lookup.predicted_target, "btb-mode2"), None, False
            fallback = self.btb.lookup(branch.ip)
            if fallback.hit:
                return Prediction(True, fallback.predicted_target, "btb-mode1"), None, False
            return Prediction(True, None, "static"), None, False

        # Returns: RSB first, indirect predictor (BTB mode 2) on underflow.
        pop = self.rsb.pop(branch.ip)
        if not pop.underflow:
            return Prediction(True, pop.predicted_target, "rsb"), None, False
        rsb_underflow = True
        lookup = self.btb.lookup(branch.ip, self.history.bhb.snapshot())
        if lookup.hit:
            return Prediction(True, lookup.predicted_target, "btb-mode2"), None, rsb_underflow
        return Prediction(True, None, "static"), None, rsb_underflow

    def _resolve(
        self, branch: BranchRecord, prediction: Prediction, rsb_underflow: bool
    ) -> AccessResult:
        if branch.branch_type.is_conditional:
            direction_correct = prediction.taken == branch.taken
        else:
            direction_correct = True

        if branch.taken:
            target_correct = prediction.target is not None and prediction.target == branch.target
        else:
            # A not-taken branch needs no target prediction; fall-through is implied.
            target_correct = True

        effective_correct = direction_correct and target_correct
        return AccessResult(
            prediction=prediction,
            direction_correct=direction_correct,
            target_correct=target_correct,
            effective_correct=effective_correct,
            btb_hit=prediction.source.startswith("btb"),
            btb_eviction=False,  # filled in by _train
            rsb_underflow=rsb_underflow,
            mispredicted=not effective_correct,
        )

    def _train(
        self, branch: BranchRecord, prediction: Prediction, direction_state: object | None
    ) -> None:
        del prediction
        branch_type = branch.branch_type

        if branch_type.is_conditional and direction_state is not None:
            self.direction.update(direction_state, branch.taken, ip=branch.ip)
            self.history.record_conditional(branch.taken)

        if branch.taken:
            self._last_update = self._update_btb(branch)
            if branch_type.is_direct:
                # Taken direct branches/calls feed the BHB (paper Section II-A).
                self.history.record_taken_branch(branch.ip, branch.target)
        else:
            self._last_update = None

        if branch_type.is_call:
            self.rsb.push(branch.fall_through)

    def _update_btb(self, branch: BranchRecord):
        if branch.branch_type.is_indirect and not branch.branch_type.is_return:
            return self.btb.update(branch.ip, branch.target, self.history.bhb.snapshot())
        if branch.branch_type.is_return:
            # Returns are only installed via the indirect path (RSB is primary).
            return self.btb.update(branch.ip, branch.target, self.history.bhb.snapshot())
        return self.btb.update(branch.ip, branch.target)

    def access_with_events(self, branch: BranchRecord) -> AccessResult:
        """Like :meth:`access` but folds the BTB-eviction event into the result."""
        before = self.btb.eviction_count
        result = self.access(branch)
        result.btb_eviction = self.btb.eviction_count > before
        result.mispredicted = not result.effective_correct
        return result

    # ------------------------------------------------------------------- admin

    def reset(self) -> None:
        self.direction.flush()
        self.btb.flush()
        self.rsb.flush()
        self.history.clear()

    def flush_predictor_state(self) -> int:
        """Flush everything (IBPB-style); returns number of BTB entries dropped."""
        dropped = self.btb.flush()
        self.rsb.flush()
        self.direction.flush()
        self.history.clear()
        return dropped


def make_skl_composite(
    sizes: StructureSizes | None = None,
    mapping: MappingProvider | None = None,
    codec: TargetCodec | None = None,
    name: str = "SKL-baseline",
    btb_capacity_scale: float = 1.0,
) -> CompositeBPU:
    """Build the baseline Skylake-style composite predictor."""
    sizes = sizes if sizes is not None else StructureSizes()
    mapping = mapping if mapping is not None else BaselineMappingProvider(sizes)
    direction = SKLConditionalPredictor(sizes, mapping)
    return CompositeBPU(
        direction,
        sizes=sizes,
        mapping=mapping,
        codec=codec,
        name=name,
        btb_capacity_scale=btb_capacity_scale,
    )
