"""Composite BPU model: direction predictor + BTB + RSB + history registers.

This is the full front-end predictor the simulators drive.  A direction
component (SKLCond hybrid, TAGE-SC-L, or Perceptron) predicts conditional
branches; the BTB predicts targets (mode 1 for direct/conditional branches,
mode 2 with the BHB for indirect branches); the RSB predicts returns, falling
back to the indirect path on underflow.  The composite also performs all the
training/update traffic and reports the micro-events (mispredictions, BTB
evictions, RSB underflows) that both the evaluation metrics and the STBPU
monitoring hardware consume.
"""

from __future__ import annotations

from typing import Protocol

from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.common import (
    AccessResult,
    BranchPredictorModel,
    Prediction,
    StructureSizes,
)
from repro.bpu.history import HistoryState
from repro.bpu.mapping import (
    BaselineMappingProvider,
    IdentityTargetCodec,
    MappingProvider,
    TargetCodec,
)
from repro.bpu.pht import SKLConditionalPredictor
from repro.bpu.rsb import ReturnStackBuffer
from repro.trace.branch import (
    VIRTUAL_ADDRESS_MASK,
    BranchRecord,
    BranchType,
)


class DirectionComponent(Protocol):
    """Minimal interface a conditional direction predictor must provide."""

    name: str

    def predict(self, ip: int, history: HistoryState) -> object: ...

    def update(self, prediction: object, taken: bool, ip: int = 0) -> None: ...

    def flush(self) -> None: ...


class CompositeBPU(BranchPredictorModel):
    """A complete, unprotected branch prediction unit.

    Args:
        direction: Conditional direction component (SKLCond, TAGE, Perceptron).
        sizes: Structure dimensions.
        mapping: Address-mapping provider shared by the BTB and the direction
            component's own mapping (callers usually construct both with the
            same provider).
        codec: Stored-target codec shared by BTB and RSB.
        name: Model label used in experiment output.
        btb_capacity_scale: Fractional BTB capacity, used by the conservative
            protection model.
    """

    __slots__ = ("sizes", "mapping", "codec", "direction", "btb", "rsb", "history", "name")

    def __init__(
        self,
        direction: DirectionComponent,
        sizes: StructureSizes | None = None,
        mapping: MappingProvider | None = None,
        codec: TargetCodec | None = None,
        name: str | None = None,
        btb_capacity_scale: float = 1.0,
    ):
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        self.codec = codec if codec is not None else IdentityTargetCodec()
        self.direction = direction
        self.btb = BranchTargetBuffer(
            self.sizes, self.mapping, self.codec, capacity_scale=btb_capacity_scale
        )
        self.rsb = ReturnStackBuffer(self.sizes.rsb_entries, self.codec)
        self.history = HistoryState()
        self.history.ghr.bits = self.sizes.ghr_bits
        self.history.bhb.bits = self.sizes.bhb_bits
        self.name = name if name is not None else f"composite-{direction.name}"

    # ------------------------------------------------------------------ access

    def access(self, branch: BranchRecord) -> AccessResult:
        """Predict-resolve-train without the structure-level event channel.

        Equivalent to :meth:`access_with_events` with the BTB-eviction signal
        suppressed, which is all the difference ever was between the two entry
        points.
        """
        result = self.access_with_events(branch)
        result.btb_eviction = False
        return result

    def access_with_events(self, branch: BranchRecord) -> AccessResult:
        """One predict-then-update access with micro-events folded in.

        This is the replay hot path (called once per branch record for every
        model in a grid), so predict / resolve / train are a single body over
        locally bound structures rather than three dispatched helpers, and
        branch categories are tested with ``is`` on the enum members instead
        of through the :class:`~repro.trace.branch.BranchType` properties.
        """
        btb = self.btb
        history = self.history
        ip = branch.ip
        taken = branch.taken
        branch_type = branch.branch_type
        is_conditional = branch_type is BranchType.CONDITIONAL
        rsb_underflow = False
        direction_state = None
        evictions_before = btb.eviction_count

        # ------------------------------------------------------------ predict
        btb_hit = False
        if is_conditional:
            direction_state = self.direction.predict(ip, history)
            if direction_state.taken:
                lookup = btb.lookup(ip)
                if lookup.hit:
                    btb_hit = True
                    prediction = Prediction(True, lookup.predicted_target, "btb-mode1")
                else:
                    prediction = Prediction(True, None, "static")
            else:
                prediction = Prediction(False, (ip + 4) & VIRTUAL_ADDRESS_MASK, "static")
        elif branch_type is BranchType.DIRECT_JUMP or branch_type is BranchType.DIRECT_CALL:
            lookup = btb.lookup(ip)
            if lookup.hit:
                btb_hit = True
                prediction = Prediction(True, lookup.predicted_target, "btb-mode1")
            else:
                prediction = Prediction(True, None, "static")
        elif branch_type is BranchType.INDIRECT_JUMP or branch_type is BranchType.INDIRECT_CALL:
            lookup = btb.lookup(ip, history.bhb.value)
            if lookup.hit:
                btb_hit = True
                prediction = Prediction(True, lookup.predicted_target, "btb-mode2")
            else:
                fallback = btb.lookup(ip)
                if fallback.hit:
                    btb_hit = True
                    prediction = Prediction(True, fallback.predicted_target, "btb-mode1")
                else:
                    prediction = Prediction(True, None, "static")
        else:
            # Returns: RSB first, indirect predictor (BTB mode 2) on underflow.
            pop = self.rsb.pop(ip)
            if not pop.underflow:
                prediction = Prediction(True, pop.predicted_target, "rsb")
            else:
                rsb_underflow = True
                lookup = btb.lookup(ip, history.bhb.value)
                if lookup.hit:
                    btb_hit = True
                    prediction = Prediction(True, lookup.predicted_target, "btb-mode2")
                else:
                    prediction = Prediction(True, None, "static")

        # ------------------------------------------------------------ resolve
        direction_correct = prediction.taken == taken if is_conditional else True
        if taken:
            predicted_target = prediction.target
            target_correct = predicted_target is not None and predicted_target == branch.target
        else:
            # A not-taken branch needs no target prediction; fall-through is implied.
            target_correct = True
        effective_correct = direction_correct and target_correct

        # -------------------------------------------------------------- train
        if direction_state is not None:
            self.direction.update(direction_state, taken, ip=ip)
            history.record_conditional(taken)

        if taken:
            self._update_btb(branch, branch_type)
            if (
                is_conditional
                or branch_type is BranchType.DIRECT_JUMP
                or branch_type is BranchType.DIRECT_CALL
            ):
                # Taken direct branches/calls feed the BHB (paper Section II-A).
                history.record_taken_branch(ip, branch.target)

        if branch_type is BranchType.DIRECT_CALL or branch_type is BranchType.INDIRECT_CALL:
            self.rsb.push((ip + 4) & VIRTUAL_ADDRESS_MASK)

        # Positional construction (field order of AccessResult): prediction,
        # direction_correct, target_correct, effective_correct, btb_hit,
        # btb_eviction, rsb_underflow, mispredicted.
        return AccessResult(
            prediction,
            direction_correct,
            target_correct,
            effective_correct,
            btb_hit,
            btb.eviction_count > evictions_before,
            rsb_underflow,
            not effective_correct,
        )

    def _update_btb(self, branch: BranchRecord, branch_type: BranchType | None = None):
        branch_type = branch_type if branch_type is not None else branch.branch_type
        if branch_type in (
            BranchType.INDIRECT_JUMP,
            BranchType.INDIRECT_CALL,
            BranchType.RETURN,
        ):
            # Indirect branches and returns install via addressing mode 2
            # (returns only through this path — the RSB is their primary).
            return self.btb.update(branch.ip, branch.target, self.history.bhb.value)
        return self.btb.update(branch.ip, branch.target)

    # ------------------------------------------------------------------- admin

    def vector_kernel(self):
        """Array-kernel replay engine for this composite, or ``None``.

        Since the TAGE/Perceptron span steppers every shipped direction
        component is covered: SKL composites replay fully in array kernels,
        TAGE and Perceptron composites through guarded per-span
        specialization.  ``None`` (scalar fallback, logged once per model
        name) only remains for unrecognized structure variants — see
        :func:`repro.sim.vector.kernel_status`.
        """
        from repro.sim import vector

        return vector.composite_kernel(self)

    def reset(self) -> None:
        self.direction.flush()
        self.btb.flush()
        self.rsb.flush()
        self.history.clear()

    def flush_predictor_state(self) -> int:
        """Flush everything (IBPB-style); returns number of BTB entries dropped."""
        dropped = self.btb.flush()
        self.rsb.flush()
        self.direction.flush()
        self.history.clear()
        return dropped


def make_skl_composite(
    sizes: StructureSizes | None = None,
    mapping: MappingProvider | None = None,
    codec: TargetCodec | None = None,
    name: str = "SKL-baseline",
    btb_capacity_scale: float = 1.0,
) -> CompositeBPU:
    """Build the baseline Skylake-style composite predictor."""
    sizes = sizes if sizes is not None else StructureSizes()
    mapping = mapping if mapping is not None else BaselineMappingProvider(sizes)
    direction = SKLConditionalPredictor(sizes, mapping)
    return CompositeBPU(
        direction,
        sizes=sizes,
        mapping=mapping,
        codec=codec,
        name=name,
        btb_capacity_scale=btb_capacity_scale,
    )
