"""Common types shared by all branch-predictor models.

The predictor models are *functional*: they consume a stream of
:class:`~repro.trace.branch.BranchRecord` objects and for each one report
what the hardware would have predicted and which micro-events (BTB hit,
eviction, RSB underflow, misprediction) the access generated.  All protection
schemes — microcode flushing, the conservative model, and STBPU — observe the
same interface, which is what lets the evaluation treat them uniformly.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field

from repro.trace.branch import BranchRecord, BranchType, PrivilegeMode


@dataclass(slots=True)
class Prediction:
    """What the front end predicted for one branch before resolution.

    Attributes:
        taken: Predicted direction (always ``True`` for unconditional branches).
        target: Predicted 48-bit target, or ``None`` when no target prediction
            was available (BTB miss and empty RSB), in which case the front end
            falls back to the static next-sequential-instruction prediction.
        source: Short label of the structure that produced the target
            (``"btb-mode1"``, ``"btb-mode2"``, ``"rsb"``, ``"static"``); useful
            in tests and attack code.
    """

    taken: bool
    target: int | None
    source: str = "static"


@dataclass(slots=True)
class AccessResult:
    """Micro-architectural outcome of one predict-then-update access.

    ``effective_correct`` implements the paper's OAE accounting: the branch
    counts as correctly predicted only if every prediction it required
    (direction and, for taken branches, target) was correct.
    """

    prediction: Prediction
    direction_correct: bool
    target_correct: bool
    effective_correct: bool
    btb_hit: bool = False
    btb_eviction: bool = False
    rsb_underflow: bool = False
    mispredicted: bool = False


@dataclass(slots=True)
class PredictorStats:
    """Running counters accumulated over a simulation.

    The counters mirror the hardware events STBPU's monitoring MSRs observe
    (mispredictions and BTB evictions) plus the accuracy numerators and
    denominators needed for the paper's figures.
    """

    branches: int = 0
    conditional_branches: int = 0
    direction_predictions: int = 0
    direction_correct: int = 0
    target_predictions: int = 0
    target_correct: int = 0
    effective_correct: int = 0
    mispredictions: int = 0
    btb_evictions: int = 0
    btb_hits: int = 0
    rsb_underflows: int = 0
    st_rerandomizations: int = 0
    flushes: int = 0

    def record(self, result: AccessResult, branch: BranchRecord) -> None:
        """Fold one access result into the running counters."""
        self.record_outcome(
            result, branch.branch_type is BranchType.CONDITIONAL, branch.taken
        )

    def record_outcome(
        self, result: AccessResult, is_conditional: bool, taken: bool
    ) -> None:
        """:meth:`record` with the branch fields already decoded.

        The columnar replay loops pre-decode conditional/taken flags once per
        trace; this entry point lets them skip the per-branch attribute
        chasing.
        """
        self.branches += 1
        if is_conditional:
            self.conditional_branches += 1
            self.direction_predictions += 1
            if result.direction_correct:
                self.direction_correct += 1
        if taken:
            self.target_predictions += 1
            if result.target_correct:
                self.target_correct += 1
        if result.effective_correct:
            self.effective_correct += 1
        if result.mispredicted:
            self.mispredictions += 1
        if result.btb_eviction:
            self.btb_evictions += 1
        if result.btb_hit:
            self.btb_hits += 1
        if result.rsb_underflow:
            self.rsb_underflows += 1

    @property
    def oae_accuracy(self) -> float:
        """Overall Accuracy Effective: fully-correct branches over all branches."""
        return self.effective_correct / self.branches if self.branches else 0.0

    @property
    def direction_accuracy(self) -> float:
        if not self.direction_predictions:
            return 0.0
        return self.direction_correct / self.direction_predictions

    @property
    def target_accuracy(self) -> float:
        if not self.target_predictions:
            return 0.0
        return self.target_correct / self.target_predictions

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    def merged_with(self, other: "PredictorStats") -> "PredictorStats":
        """Return a new stats object summing this one with ``other``.

        The counter list is derived from the dataclass fields so that newly
        added counters are merged automatically instead of being dropped.
        """
        merged = PredictorStats()
        for stats_field in dataclasses.fields(PredictorStats):
            name = stats_field.name
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged


class BranchPredictorModel(abc.ABC):
    """Interface every complete predictor model (protected or not) implements.

    Models are *stateful*: every :meth:`access` trains internal structures, so
    replaying a second trace through the same instance observes state left by
    the first.  Callers that need a cold predictor own the lifecycle — either
    build a fresh model or call :meth:`reset` before the replay (the
    simulators' ``compare`` helpers do this for every model they are handed).
    """

    # Empty slots keep the base layout slim so concrete models can opt into
    # ``__slots__`` on their hot per-access attributes; subclasses that do not
    # declare slots still get a normal ``__dict__``.
    __slots__ = ()

    #: Human-readable model name used as a legend label in experiments.
    name: str = "predictor"

    @abc.abstractmethod
    def access(self, branch: BranchRecord) -> AccessResult:
        """Predict the branch, resolve it, update state, and report the outcome."""

    def access_with_events(self, branch: BranchRecord) -> AccessResult:
        """Like :meth:`access` but with structure-level events folded in.

        Simulators call this uniformly.  Models that can observe extra
        micro-events during an access (e.g. BTB evictions) override it;
        wrapper models whose :meth:`access` already delegates to an inner
        event-aware predictor inherit this default, which simply forwards.
        """
        return self.access(branch)

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the model to its power-on state."""

    def vector_kernel(self) -> "object | None":
        """An array-at-a-time replay kernel for :mod:`repro.sim.vector`.

        Returns ``None`` (the default) when the model has no exact vector
        form; the simulators then fall back to the columnar fast path with a
        logged notice.  Implementations gate on their exact class so
        behavioural subclasses never inherit a mismatched kernel.
        """
        return None

    def protection_stats(self) -> dict[str, int]:
        """Counters of the protection mechanism this model implements.

        The uniform protocol the simulators aggregate from — no ``isinstance``
        dispatch on concrete classes.  Known keys today are
        ``"rerandomizations"`` (STBPU) and ``"flushes"`` (microcode-style
        flushing); protection schemes are free to report additional counters
        and unprotected models report none.
        """
        return {}

    def on_context_switch(self, context_id: int) -> None:
        """Hook invoked when the OS switches the running software context."""

    def on_mode_switch(self, mode: PrivilegeMode, context_id: int) -> None:
        """Hook invoked on privilege transitions (syscall entry/exit)."""

    def on_interrupt(self, context_id: int) -> None:
        """Hook invoked on asynchronous interrupts."""


@dataclass(slots=True)
class StructureSizes:
    """Capacity parameters of the baseline Skylake-style BPU (Section II-A)."""

    btb_sets: int = 512
    btb_ways: int = 8
    btb_tag_bits: int = 8
    btb_offset_bits: int = 5
    pht_entries: int = 1 << 14
    pht_counter_bits: int = 2
    ghr_bits: int = 18
    bhb_bits: int = 58
    rsb_entries: int = 16

    @property
    def btb_entries(self) -> int:
        return self.btb_sets * self.btb_ways

    @property
    def btb_index_bits(self) -> int:
        return (self.btb_sets - 1).bit_length()

    @property
    def pht_index_bits(self) -> int:
        return (self.pht_entries - 1).bit_length()


def fold_bits(value: int, input_bits: int, output_bits: int) -> int:
    """XOR-fold ``input_bits`` of ``value`` down to ``output_bits``.

    This is the compression idiom the reverse-engineering literature ascribes
    to the baseline BPU hash functions: the address is split into
    ``output_bits``-wide chunks which are XORed together.
    """
    if output_bits <= 0:
        raise ValueError("output_bits must be positive")
    value &= (1 << input_bits) - 1
    mask = (1 << output_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= output_bits
    return folded
