"""Return stack buffer (RSB).

A fixed-size (16-entry) hardware stack of return addresses (paper
Section II-A).  Calls push the address of the instruction following the call;
returns pop.  Only 32 target bits are stored, and like the BTB they flow
through the installed :class:`~repro.bpu.mapping.TargetCodec`, so STBPU's XOR
encryption applies here too.  When the RSB underflows, return prediction falls
back to the indirect predictor (handled by the composite model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.mapping import IdentityTargetCodec, TargetCodec


@dataclass(slots=True)
class RSBPopResult:
    """Outcome of popping the RSB for a return instruction."""

    underflow: bool
    predicted_target: int | None


class ReturnStackBuffer:
    """Bounded hardware return-address stack.

    The RSB is modelled as a circular stack: pushing beyond capacity
    overwrites the oldest entry (so deep call chains lose outer frames), and
    popping an empty stack reports an underflow.
    """

    __slots__ = ("capacity", "codec", "_stack", "overflow_count",
                 "underflow_count")

    def __init__(self, entries: int = 16, codec: TargetCodec | None = None):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.capacity = entries
        self.codec = codec if codec is not None else IdentityTargetCodec()
        self._stack: list[int] = []
        self.overflow_count = 0
        self.underflow_count = 0

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, return_address: int) -> None:
        """Push the return address of a call (stored encoded)."""
        if len(self._stack) >= self.capacity:
            # Oldest entry is overwritten, mirroring a circular hardware stack.
            self._stack.pop(0)
            self.overflow_count += 1
        self._stack.append(self.codec.encode(return_address))

    def pop(self, return_ip: int) -> RSBPopResult:
        """Pop a predicted return target for the return instruction at ``return_ip``."""
        if not self._stack:
            self.underflow_count += 1
            return RSBPopResult(underflow=True, predicted_target=None)
        stored = self._stack.pop()
        predicted = self.codec.extend(stored, return_ip)
        return RSBPopResult(underflow=False, predicted_target=predicted)

    def peek(self) -> int | None:
        """Return the top stored (encoded) value without popping, for tests."""
        return self._stack[-1] if self._stack else None

    def flush(self) -> int:
        dropped = len(self._stack)
        self._stack.clear()
        return dropped
