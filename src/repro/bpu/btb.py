"""Branch target buffer (BTB).

An 8-way, 4096-entry set-associative cache of branch targets (paper
Section II-A).  Each entry stores a compressed tag, an offset, and the 32
least-significant bits of the target (optionally encrypted by the installed
:class:`~repro.bpu.mapping.TargetCodec`).  Two addressing modes are
supported: mode 1 keys on the branch address only, mode 2 additionally mixes
in the branch history buffer and is used for indirect branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.mapping import (
    BTBLookupKey,
    BaselineMappingProvider,
    IdentityTargetCodec,
    MappingProvider,
    TargetCodec,
)


@dataclass(slots=True)
class BTBEntry:
    """One way of a BTB set."""

    valid: bool = False
    tag: int = 0
    offset: int = 0
    stored_target: int = 0
    lru_stamp: int = 0


@dataclass(slots=True)
class BTBLookupResult:
    """Outcome of a BTB probe."""

    hit: bool
    predicted_target: int | None
    key: BTBLookupKey


@dataclass(slots=True)
class BTBUpdateResult:
    """Outcome of installing/refreshing an entry."""

    evicted_valid_entry: bool
    replaced_same_branch: bool


class BranchTargetBuffer:
    """Set-associative target cache with LRU replacement.

    Args:
        sizes: Structure dimensions; defaults to the Skylake baseline
            (512 sets x 8 ways).
        mapping: Address-mapping provider (baseline or STBPU-keyed).
        codec: Stored-target codec (identity or XOR encryption).
        capacity_scale: Fractional capacity multiplier used by the
            *conservative* protection model, which stores full 48-bit
            addresses and therefore fits fewer entries in the same hardware
            budget.  A value of 0.5 halves the number of sets.
    """

    __slots__ = ("sizes", "mapping", "codec", "_set_count", "_ways", "_sets",
                 "_access_clock", "eviction_count")

    def __init__(
        self,
        sizes: StructureSizes | None = None,
        mapping: MappingProvider | None = None,
        codec: TargetCodec | None = None,
        capacity_scale: float = 1.0,
    ):
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        self.codec = codec if codec is not None else IdentityTargetCodec()
        if not 0.0 < capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in (0, 1]")
        self._set_count = max(1, int(self.sizes.btb_sets * capacity_scale))
        self._ways = self.sizes.btb_ways
        self._sets: list[list[BTBEntry]] = [
            [BTBEntry() for _ in range(self._ways)] for _ in range(self._set_count)
        ]
        self._access_clock = 0
        self.eviction_count = 0

    # ------------------------------------------------------------------ admin

    @property
    def set_count(self) -> int:
        return self._set_count

    @property
    def way_count(self) -> int:
        return self._ways

    @property
    def entry_count(self) -> int:
        return self._set_count * self._ways

    def flush(self) -> int:
        """Invalidate every entry; returns the number of valid entries dropped."""
        dropped = 0
        for entries in self._sets:
            for entry in entries:
                if entry.valid:
                    dropped += 1
                entry.valid = False
        return dropped

    def valid_entry_count(self) -> int:
        return sum(1 for entries in self._sets for entry in entries if entry.valid)

    def occupied_sets(self) -> int:
        return sum(1 for entries in self._sets if any(e.valid for e in entries))

    # ---------------------------------------------------------------- lookups

    def _key(self, ip: int, bhb: int | None) -> BTBLookupKey:
        if bhb is None:
            key = self.mapping.btb_mode1(ip)
        else:
            key = self.mapping.btb_mode2(ip, bhb)
        # The mapping provider may have been built for the nominal set count;
        # clamp the index into this instance's (possibly reduced) set array.
        # Full-capacity instances (the common case) reuse the provider's key
        # object — the mode-1 keys are memoised, so this avoids re-allocating
        # an identical key per probe.
        if key.index >= self._set_count:
            key = BTBLookupKey(index=key.index % self._set_count, tag=key.tag,
                               offset=key.offset)
        return key

    def lookup(self, ip: int, bhb: int | None = None) -> BTBLookupResult:
        """Probe the BTB.  ``bhb`` selects addressing mode 2 when provided."""
        clock = self._access_clock + 1
        self._access_clock = clock
        key = self._key(ip, bhb)
        tag = key.tag
        offset = key.offset
        for entry in self._sets[key.index]:
            if entry.valid and entry.tag == tag and entry.offset == offset:
                entry.lru_stamp = clock
                predicted = self.codec.extend(entry.stored_target, ip)
                return BTBLookupResult(hit=True, predicted_target=predicted, key=key)
        return BTBLookupResult(hit=False, predicted_target=None, key=key)

    def update(self, ip: int, target: int, bhb: int | None = None) -> BTBUpdateResult:
        """Install or refresh the entry for ``ip`` with resolved ``target``."""
        clock = self._access_clock + 1
        self._access_clock = clock
        key = self._key(ip, bhb)
        entries = self._sets[key.index]
        tag = key.tag
        offset = key.offset

        # One pass finds both a same-branch entry and the LRU victim (the
        # first entry with the smallest (valid, lru_stamp) rank, matching the
        # previous min()-based selection).
        victim = None
        victim_valid = True
        victim_stamp = 0
        for entry in entries:
            if entry.valid and entry.tag == tag and entry.offset == offset:
                entry.stored_target = self.codec.encode(target)
                entry.lru_stamp = clock
                return BTBUpdateResult(evicted_valid_entry=False, replaced_same_branch=True)
            entry_valid = entry.valid
            if victim is None or (entry_valid, entry.lru_stamp) < (victim_valid, victim_stamp):
                victim = entry
                victim_valid = entry_valid
                victim_stamp = entry.lru_stamp

        evicted = victim.valid
        if evicted:
            self.eviction_count += 1
        victim.valid = True
        victim.tag = tag
        victim.offset = offset
        victim.stored_target = self.codec.encode(target)
        victim.lru_stamp = clock
        return BTBUpdateResult(evicted_valid_entry=evicted, replaced_same_branch=False)

    def contains(self, ip: int, bhb: int | None = None) -> bool:
        """Non-destructive membership test (does not touch LRU state)."""
        key = self._key(ip, bhb)
        return any(
            entry.valid and entry.tag == key.tag and entry.offset == key.offset
            for entry in self._sets[key.index]
        )
