"""Microcode-style and structural BPU protection baselines.

The paper compares STBPU against:

* **µcode protection 1** — IBPB + IBRS + STIBP: the BPU is flushed on context
  switches (IBPB) *and* on privilege-mode switches (IBRS), and SMT threads are
  logically segmented (STIBP).
* **µcode protection 2** — IBPB + IBRS without STIBP: flushes on context
  switches and kernel entries only.
* **conservative** — a structural redesign that stores full 48-bit addresses
  (preventing all aliasing) and partitions the structures per software
  context; preventing collisions this way costs BTB capacity (fewer entries in
  the same hardware budget) and forfeits cross-process history sharing.

All three are modelled as wrappers/configurations of the same
:class:`~repro.bpu.composite.CompositeBPU` used for the unprotected baseline,
so the only differences measured are the protection policies themselves.
"""

from __future__ import annotations

from repro.bpu.common import AccessResult, BranchPredictorModel, StructureSizes
from repro.bpu.composite import CompositeBPU, make_skl_composite
from repro.bpu.mapping import BTBLookupKey, FullAddressMappingProvider, MappingProvider
from repro.bpu.pht import SKLConditionalPredictor
from repro.trace.branch import BranchRecord, PrivilegeMode


class FlushingProtectedBPU(BranchPredictorModel):
    """IBPB/IBRS/STIBP-style protection: flush shared state on OS events.

    Args:
        inner: The protected composite predictor.
        flush_on_context_switch: Model IBPB (flush on every context switch).
        flush_on_mode_switch: Model IBRS (flush when entering the kernel so
            lower-privilege state cannot steer higher-privilege speculation).
        stibp: Model STIBP by segmenting predictions between hardware
            threads.  In the single-core trace simulation this adds a flush
            whenever execution migrates between *sibling-thread* contexts;
            the SMT simulator partitions structures by thread instead.
    """

    __slots__ = ("inner", "name", "flush_on_context_switch",
                 "flush_on_mode_switch", "stibp", "flush_count",
                 "_current_context")

    def __init__(
        self,
        inner: CompositeBPU,
        name: str,
        flush_on_context_switch: bool = True,
        flush_on_mode_switch: bool = True,
        stibp: bool = False,
    ):
        self.inner = inner
        self.name = name
        self.flush_on_context_switch = flush_on_context_switch
        self.flush_on_mode_switch = flush_on_mode_switch
        self.stibp = stibp
        self.flush_count = 0
        self._current_context: int | None = None

    def access(self, branch: BranchRecord) -> AccessResult:
        return self.inner.access_with_events(branch)

    def access_with_events(self, branch: BranchRecord) -> AccessResult:
        # Identical to access(); overridden to skip the base-class indirection
        # on the per-branch hot path.
        return self.inner.access_with_events(branch)

    def protection_stats(self) -> dict[str, int]:
        return {"flushes": self.flush_count}

    def vector_kernel(self):
        from repro.sim import vector

        return vector.flushing_kernel(self)

    def reset(self) -> None:
        self.inner.reset()
        self.flush_count = 0
        self._current_context = None

    def on_context_switch(self, context_id: int) -> None:
        if self._current_context is not None and context_id != self._current_context:
            if self.flush_on_context_switch:
                self.inner.flush_predictor_state()
                self.flush_count += 1
        self._current_context = context_id

    def on_mode_switch(self, mode: PrivilegeMode, context_id: int) -> None:
        del context_id
        if mode is PrivilegeMode.KERNEL and self.flush_on_mode_switch:
            self.inner.flush_predictor_state()
            self.flush_count += 1

    def on_interrupt(self, context_id: int) -> None:
        # Interrupt delivery enters the kernel; IBRS-style protection flushes.
        if self.flush_on_mode_switch:
            self.inner.flush_predictor_state()
            self.flush_count += 1
        del context_id


class _PartitionedMappingProvider(MappingProvider):
    """Wraps a mapping provider and segregates structures per software context.

    The conservative model isolates contexts by dedicating a slice of each
    structure to each context: the context identifier is mixed into every
    index so two contexts can never address the same entry (modelling a
    physically partitioned or way-partitioned structure).
    """

    __slots__ = ("base", "partitions", "current_context")

    def __init__(self, base: MappingProvider, partitions: int = 4):
        super().__init__(base.sizes)
        self.base = base
        self.partitions = max(1, partitions)
        self.current_context = 0

    def _slot(self) -> int:
        return self.current_context % self.partitions

    def _partition_index(self, index: int, table_entries: int) -> int:
        slice_size = max(1, table_entries // self.partitions)
        return (self._slot() * slice_size + (index % slice_size)) % table_entries

    def btb_mode1(self, ip: int) -> BTBLookupKey:
        key = self.base.btb_mode1(ip)
        return BTBLookupKey(
            index=self._partition_index(key.index, self.sizes.btb_sets),
            tag=key.tag,
            offset=key.offset,
        )

    def btb_mode2(self, ip: int, bhb: int) -> BTBLookupKey:
        key = self.base.btb_mode2(ip, bhb)
        return BTBLookupKey(
            index=self._partition_index(key.index, self.sizes.btb_sets),
            tag=key.tag,
            offset=key.offset,
        )

    def pht_index_1level(self, ip: int) -> int:
        return self._partition_index(self.base.pht_index_1level(ip), self.sizes.pht_entries)

    def pht_index_2level(self, ip: int, ghr: int) -> int:
        return self._partition_index(self.base.pht_index_2level(ip, ghr), self.sizes.pht_entries)

    def tage_index(self, ip: int, folded_history: int, table: int, index_bits: int) -> int:
        index = self.base.tage_index(ip, folded_history, table, index_bits)
        return self._partition_index(index, 1 << index_bits)

    def tage_tag(self, ip: int, folded_history: int, table: int, tag_bits: int) -> int:
        return self.base.tage_tag(ip, folded_history, table, tag_bits)

    def perceptron_index(self, ip: int, table_size: int) -> int:
        return self._partition_index(self.base.perceptron_index(ip, table_size), table_size)

    def vector_maps(self):
        if type(self) is not _PartitionedMappingProvider:
            return None
        base_maps = self.base.vector_maps()
        if base_maps is None:
            return None
        return _PartitionedVectorMaps(self, base_maps)


class _PartitionedVectorMaps:
    """NumPy mirror of :class:`_PartitionedMappingProvider`.

    Unlike the scalar provider — which reads ``current_context`` mutated
    before every access — the vector view receives the per-branch context
    array explicitly, which is exactly the value each access would have
    installed.
    """

    __slots__ = ("provider", "base")

    token_dependent = False

    def __init__(self, provider: _PartitionedMappingProvider, base_maps):
        self.provider = provider
        self.base = base_maps

    def _partition(self, indices, contexts, table_entries: int):
        import numpy as np

        partitions = self.provider.partitions
        slice_size = max(1, table_entries // partitions)
        slots = (contexts % partitions).astype(np.uint64)
        return (slots * np.uint64(slice_size)
                + (indices % np.uint64(slice_size))) % np.uint64(table_entries)

    def pht1(self, ips, contexts=None):
        return self._partition(self.base.pht1(ips), contexts,
                               self.provider.sizes.pht_entries)

    def pht2(self, ips, ghrs, contexts=None):
        return self._partition(self.base.pht2(ips, ghrs), contexts,
                               self.provider.sizes.pht_entries)

    def btb1(self, ips, contexts=None):
        index, key = self.base.btb1(ips)
        return self._partition(index, contexts, self.provider.sizes.btb_sets), key

    def btb2(self, ips, bhbs, contexts=None):
        index, key = self.base.btb2(ips, bhbs)
        return self._partition(index, contexts, self.provider.sizes.btb_sets), key


class ConservativeBPU(BranchPredictorModel):
    """Structural collision-free baseline: full addresses + per-context partitioning.

    Storing untagged 48-bit addresses roughly doubles the per-entry cost, so
    under an unchanged hardware budget the BTB holds half as many entries
    (``btb_capacity_scale=0.5``).  Contexts are partitioned so no cross-process
    collisions are possible; the partition count adapts to how many contexts
    have been observed.
    """

    __slots__ = ("sizes", "_mapping", "inner", "name")

    def __init__(self, sizes: StructureSizes | None = None, partitions: int = 4):
        self.sizes = sizes if sizes is not None else StructureSizes()
        base_mapping = FullAddressMappingProvider(self.sizes)
        self._mapping = _PartitionedMappingProvider(base_mapping, partitions)
        direction = SKLConditionalPredictor(self.sizes, self._mapping)
        self.inner = CompositeBPU(
            direction,
            sizes=self.sizes,
            mapping=self._mapping,
            name="conservative",
            btb_capacity_scale=0.5,
        )
        self.name = "conservative"

    def access(self, branch: BranchRecord) -> AccessResult:
        self._mapping.current_context = branch.context_id
        return self.inner.access_with_events(branch)

    access_with_events = access

    def reset(self) -> None:
        self.inner.reset()

    def on_context_switch(self, context_id: int) -> None:
        self._mapping.current_context = context_id

    def vector_kernel(self):
        from repro.sim import vector

        return vector.conservative_kernel(self)


def make_unprotected_baseline(sizes: StructureSizes | None = None) -> CompositeBPU:
    """The unprotected Skylake-style baseline used for normalization."""
    return make_skl_composite(sizes, name="baseline")


def make_ucode_protection_1(sizes: StructureSizes | None = None) -> FlushingProtectedBPU:
    """µcode protection 1: IBPB + IBRS + STIBP.

    IBPB flushes on context switches, IBRS on kernel entries, and STIBP
    logically segments the BPU between the two hardware threads of a core —
    modelled as halving the effective BTB capacity available to each thread.
    """
    inner = make_skl_composite(sizes, name="ucode1-inner", btb_capacity_scale=0.5)
    return FlushingProtectedBPU(
        inner,
        name="ucode_protection_1",
        flush_on_context_switch=True,
        flush_on_mode_switch=True,
        stibp=True,
    )


def make_ucode_protection_2(sizes: StructureSizes | None = None) -> FlushingProtectedBPU:
    """µcode protection 2: IBPB + IBRS without STIBP (full capacity, same flushes)."""
    inner = make_skl_composite(sizes, name="ucode2-inner")
    return FlushingProtectedBPU(
        inner,
        name="ucode_protection_2",
        flush_on_context_switch=True,
        flush_on_mode_switch=True,
        stibp=False,
    )


def make_conservative(sizes: StructureSizes | None = None, partitions: int = 4) -> ConservativeBPU:
    """The conservative full-address, partitioned baseline."""
    return ConservativeBPU(sizes, partitions)
